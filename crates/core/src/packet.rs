//! SwitchML wire format.
//!
//! Each packet carries the fields of Algorithm 3/4 — worker id `wid`,
//! single-bit pool version `ver`, slot index `idx`, element offset
//! `off` — plus a vector of `k` elements. The same packet layout is
//! used for worker→switch *updates* and switch→worker *results*
//! (the switch "rewrit\[es\] the packet's vector with the aggregated
//! value", §3.3); a flag bit distinguishes direction so hierarchical
//! switches (§6) can tell a child's update from a parent's result.
//!
//! Elements are encoded either as 32-bit fixed-point integers
//! (big-endian, the `htonl`/`ntohl` of Appendix B) or as 16-bit IEEE
//! floats when the switch-side f16 pipeline is in use (§3.7). A CRC-32
//! trailer detects in-flight corruption.
//!
//! ## Wire-size accounting
//!
//! The paper's packets are `b = 180` bytes at `k = 32`: 128 bytes of
//! vector data plus 52 bytes of Ethernet/IP/UDP/SwitchML headers
//! (28.9% overhead, §5.5). Our software header (28 bytes including the
//! CRC) is richer than the P4 one, so simulations charge
//! [`SIM_FRAME_OVERHEAD`] bytes of L2/L3 framing on top of
//! [`Packet::encode`] to keep the total at exactly 180 bytes — the
//! quantity that governs all goodput arithmetic in the evaluation.

use crate::checksum::{crc32, Crc32};
use crate::error::{Error, Result};
use crate::quant::f16;
use bytes::{Buf, Bytes};

/// Worker identifier (rank) within a job.
pub type WorkerId = u16;
/// Aggregator slot index within the pool.
pub type SlotIndex = u32;
/// Element offset into the (virtually contiguous) tensor stream.
pub type ElemOffset = u64;

/// Elements per packet in the paper's deployment ("In our deployment,
/// k is 32", §3.3).
pub const DEFAULT_K: usize = 32;

/// Elements an MTU-sized packet would carry ("MTU-sized packets would
/// carry 366 elements (1516-byte packets, including all headers)",
/// §5.5).
pub const MTU_K: usize = 366;

/// Largest element count a packet may declare. Bounds scratch-buffer
/// growth on the receive path; generously above [`MTU_K`].
pub const MAX_K: usize = 1024;

/// Fixed per-packet header+framing budget used for wire-size math, so
/// that `wire_bytes(DEFAULT_K) == 180` as in the paper.
pub const HEADER_OVERHEAD_BYTES: usize = 52;

/// Framing bytes charged by the simulator on top of the encoded packet
/// (see module docs: 28-byte software header + 24 = the paper's 52).
pub const SIM_FRAME_OVERHEAD: usize = HEADER_OVERHEAD_BYTES - HEADER_LEN;

/// Serialized header length (including the CRC-32 trailer field).
pub const HEADER_LEN: usize = 28;

const MAGIC: u16 = 0x534D; // "SM"
const PROTO_VERSION: u8 = 1;

const FLAG_VER: u8 = 0b0000_0001;
const FLAG_RESULT: u8 = 0b0000_0010;
const FLAG_F16: u8 = 0b0000_0100;
const FLAG_RETX: u8 = 0b0000_1000;

/// Total on-the-wire bytes of a SwitchML packet carrying `k` 32-bit
/// elements, per the paper's accounting.
pub fn wire_bytes(k: usize) -> usize {
    HEADER_OVERHEAD_BYTES + 4 * k
}

/// On-the-wire bytes when elements travel as 16-bit floats.
pub fn wire_bytes_f16(k: usize) -> usize {
    HEADER_OVERHEAD_BYTES + 2 * k
}

/// The two alternating aggregation pools of Algorithm 3 ("a single bit
/// is enough to distinguish the two active phases for any slot").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PoolVersion {
    #[default]
    V0,
    V1,
}

impl PoolVersion {
    /// The other pool.
    pub fn flip(self) -> Self {
        match self {
            PoolVersion::V0 => PoolVersion::V1,
            PoolVersion::V1 => PoolVersion::V0,
        }
    }

    /// 0 or 1, for indexing `pool[2, s]`-style state.
    pub fn index(self) -> usize {
        match self {
            PoolVersion::V0 => 0,
            PoolVersion::V1 => 1,
        }
    }

    pub fn from_bit(bit: bool) -> Self {
        if bit {
            PoolVersion::V1
        } else {
            PoolVersion::V0
        }
    }
}

/// Update (worker → switch) or result (switch → worker).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    Update,
    Result,
}

/// Element payload. The aggregation domain is always `i32`; 16-bit
/// float payloads are converted at the switch (§3.7).
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// 32-bit fixed-point integers (host-converted, §3.7 option 2).
    I32(Vec<i32>),
    /// IEEE binary16 bit patterns (switch-converted, §3.7 option 1).
    F16(Vec<u16>),
}

impl Payload {
    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            Payload::I32(v) => v.len(),
            Payload::F16(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Encoded payload size in bytes.
    pub fn byte_len(&self) -> usize {
        match self {
            Payload::I32(v) => 4 * v.len(),
            Payload::F16(v) => 2 * v.len(),
        }
    }

    /// Convert to the switch's integer aggregation domain. For f16 the
    /// switch rounds each value to the nearest integer — the lookup-
    /// table conversion the paper verified with the chip vendor.
    pub fn to_i32(&self) -> Vec<i32> {
        match self {
            Payload::I32(v) => v.clone(),
            Payload::F16(v) => v.iter().map(|&bits| f16_bits_to_i32(bits)).collect(),
        }
    }

    /// Re-encode an aggregated integer vector in this payload's format
    /// (the switch "converts fixed-point values back into equivalent
    /// floating-point values" when generating responses).
    pub fn from_i32_as(template: &Payload, values: &[i32]) -> Payload {
        match template {
            Payload::I32(_) => Payload::I32(values.to_vec()),
            Payload::F16(_) => {
                Payload::F16(values.iter().map(|&v| f16::f32_to_f16(v as f32)).collect())
            }
        }
    }

    /// Borrow the elements as `i32`s without converting or copying.
    /// `None` for f16 payloads, whose aggregation-domain values only
    /// exist after conversion.
    pub fn as_i32(&self) -> Option<&[i32]> {
        match self {
            Payload::I32(v) => Some(v),
            Payload::F16(_) => None,
        }
    }
}

/// Round an f16 bit pattern into the switch's integer domain:
/// saturating round-to-nearest, NaN → 0 (the lookup-table conversion
/// the paper verified with the chip vendor, §3.7).
#[inline]
pub fn f16_bits_to_i32(bits: u16) -> i32 {
    let x = f16::f16_to_f32(bits);
    if x.is_nan() {
        0
    } else {
        x.round().clamp(i32::MIN as f32, i32::MAX as f32) as i32
    }
}

/// Read-only access to a packet's element vector in the switch's `i32`
/// aggregation domain, without materializing an intermediate `Vec`.
/// Implemented by the owned [`Payload`] (simulator paths) and the
/// borrowed [`PacketView`] (wire hot path), so the switch cores run
/// identical logic over both.
pub trait WireElems {
    /// Number of elements carried.
    fn n_elems(&self) -> usize;
    /// Are the wire elements 16-bit floats (switch-converted, §3.7)?
    fn is_f16(&self) -> bool;
    /// Overwrite `dst` with the elements (first contribution of a
    /// phase — Algorithm 3 line 10's implicit slot release).
    fn overwrite_into(&self, dst: &mut [i32]);
    /// Fold the elements into `acc` with the switch's ALU mode.
    fn add_into(&self, acc: &mut [i32], wrapping: bool);
    /// Copy into a reusable `Vec`, reusing its capacity.
    fn to_i32_into(&self, dst: &mut Vec<i32>) {
        dst.clear();
        dst.resize(self.n_elems(), 0);
        self.overwrite_into(dst);
    }
}

impl WireElems for Payload {
    fn n_elems(&self) -> usize {
        self.len()
    }

    fn is_f16(&self) -> bool {
        matches!(self, Payload::F16(_))
    }

    fn overwrite_into(&self, dst: &mut [i32]) {
        match self {
            Payload::I32(v) => dst.copy_from_slice(v),
            Payload::F16(v) => {
                for (d, &bits) in dst.iter_mut().zip(v) {
                    *d = f16_bits_to_i32(bits);
                }
            }
        }
    }

    fn add_into(&self, acc: &mut [i32], wrapping: bool) {
        match self {
            Payload::I32(v) => {
                if wrapping {
                    crate::quant::wrapping_add_into(acc, v);
                } else {
                    crate::quant::saturating_add_into(acc, v);
                }
            }
            Payload::F16(v) => {
                for (a, &bits) in acc.iter_mut().zip(v) {
                    let x = f16_bits_to_i32(bits);
                    *a = if wrapping {
                        a.wrapping_add(x)
                    } else {
                        a.saturating_add(x)
                    };
                }
            }
        }
    }
}

/// A SwitchML protocol packet (update or result).
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    pub kind: PacketKind,
    /// Sender's worker id. For results this echoes the slot's
    /// completing update (workers ignore it); for unicast
    /// retransmitted results it addresses the requesting worker.
    pub wid: WorkerId,
    /// Single-bit pool version (Algorithm 3's `ver`).
    pub ver: PoolVersion,
    /// Aggregator slot (Algorithm 1's `idx`).
    pub idx: SlotIndex,
    /// Element offset this vector starts at (Algorithm 2's `off`).
    pub off: ElemOffset,
    /// Job id, for multi-tenant pools (§6 "Multi-job (tenancy)").
    pub job: u8,
    /// Job generation (epoch fence, §5.4). Bumped by the control plane
    /// on every reconfiguration; switch ingress and worker engines
    /// drop packets whose epoch differs from their own, so a packet
    /// from before a crash-and-resume can never alias into a reused
    /// slot — this discharges §3.5's bounded-packet-lifetime
    /// assumption across reconfigurations. Wraps mod 256, which is
    /// safe because fencing only needs to distinguish generations
    /// whose packets can still be in flight.
    pub epoch: u8,
    /// Diagnostic flag: this packet is a retransmission. Carried on
    /// the wire so traces can separate first transmissions from
    /// retransmissions (Figure 6's "resent" series) but ignored by the
    /// protocol logic.
    pub retransmission: bool,
    pub payload: Payload,
}

impl Packet {
    /// A fresh update packet with an i32 payload.
    pub fn update(
        wid: WorkerId,
        ver: PoolVersion,
        idx: SlotIndex,
        off: ElemOffset,
        v: Vec<i32>,
    ) -> Self {
        Packet {
            kind: PacketKind::Update,
            wid,
            ver,
            idx,
            off,
            job: 0,
            epoch: 0,
            retransmission: false,
            payload: Payload::I32(v),
        }
    }

    /// Number of elements carried.
    pub fn k(&self) -> usize {
        self.payload.len()
    }

    /// Total wire size the simulator should charge for this packet.
    pub fn sim_wire_bytes(&self) -> usize {
        HEADER_LEN + self.payload.byte_len() + SIM_FRAME_OVERHEAD
    }

    /// Serialize to bytes (header + payload, CRC-32 filled in).
    pub fn encode(&self) -> Bytes {
        let mut buf = Vec::with_capacity(HEADER_LEN + self.payload.byte_len());
        self.encode_into(&mut buf);
        Bytes::from(buf)
    }

    /// Serialize into a caller-owned scratch buffer, reusing its
    /// capacity. `out` is cleared first; after the call it holds the
    /// complete packet bytes. This is the allocation-free counterpart
    /// of [`Packet::encode`] for steady-state send loops.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut flags = 0u8;
        if self.ver == PoolVersion::V1 {
            flags |= FLAG_VER;
        }
        if self.kind == PacketKind::Result {
            flags |= FLAG_RESULT;
        }
        if matches!(self.payload, Payload::F16(_)) {
            flags |= FLAG_F16;
        }
        if self.retransmission {
            flags |= FLAG_RETX;
        }
        put_header(
            out,
            flags,
            self.job,
            self.epoch,
            self.wid,
            self.idx,
            self.off,
            self.payload.len(),
        );
        match &self.payload {
            Payload::I32(v) => crate::simd::be_store_extend(v, out),
            Payload::F16(v) => {
                for &x in v {
                    out.extend_from_slice(&x.to_be_bytes());
                }
            }
        }
        finish_crc(out);
    }

    /// Parse a packet, verifying magic, version, length and CRC.
    pub fn decode(mut data: &[u8]) -> Result<Packet> {
        if data.len() < HEADER_LEN {
            return Err(Error::Malformed("short header"));
        }
        let full = data;
        let magic = data.get_u16();
        if magic != MAGIC {
            return Err(Error::Malformed("bad magic"));
        }
        let version = data.get_u8();
        if version != PROTO_VERSION {
            return Err(Error::Malformed("unsupported protocol version"));
        }
        let flags = data.get_u8();
        let job = data.get_u8();
        let epoch = data.get_u8();
        let wid = data.get_u16();
        let idx = data.get_u32();
        let off = data.get_u64();
        let count = data.get_u16() as usize;
        let _reserved2 = data.get_u16();
        let checksum = data.get_u32();

        let elem_bytes = if flags & FLAG_F16 != 0 { 2 } else { 4 };
        if data.len() != count * elem_bytes {
            return Err(Error::Malformed("payload length mismatch"));
        }

        let mut crc = Crc32::new();
        crc.update(&full[..HEADER_LEN - 4]);
        crc.update(&[0, 0, 0, 0]);
        crc.update(&full[HEADER_LEN..]);
        let actual = crc.finalize();
        if actual != checksum {
            return Err(Error::BadChecksum {
                expected: checksum,
                actual,
            });
        }

        let payload = if flags & FLAG_F16 != 0 {
            let mut v = Vec::with_capacity(count);
            for _ in 0..count {
                v.push(data.get_u16());
            }
            Payload::F16(v)
        } else {
            let mut v = Vec::with_capacity(count);
            for _ in 0..count {
                v.push(data.get_i32());
            }
            Payload::I32(v)
        };

        Ok(Packet {
            kind: if flags & FLAG_RESULT != 0 {
                PacketKind::Result
            } else {
                PacketKind::Update
            },
            wid,
            ver: PoolVersion::from_bit(flags & FLAG_VER != 0),
            idx,
            off,
            job,
            epoch,
            retransmission: flags & FLAG_RETX != 0,
            payload,
        })
    }

    /// Peek the packet kind from encoded bytes without a full decode —
    /// used by composite nodes (colocated worker + PS shard) to route
    /// an arriving packet to the right half.
    pub fn peek_kind(data: &[u8]) -> Option<PacketKind> {
        if data.len() < 4 || u16::from_be_bytes([data[0], data[1]]) != MAGIC {
            return None;
        }
        Some(if data[3] & FLAG_RESULT != 0 {
            PacketKind::Result
        } else {
            PacketKind::Update
        })
    }

    /// Quick integrity check of already-decoded bytes (used by tests
    /// and fuzz-ish property tests).
    pub fn verify_bytes(data: &[u8]) -> bool {
        data.len() >= HEADER_LEN && {
            let stored = u32::from_be_bytes([
                data[HEADER_LEN - 4],
                data[HEADER_LEN - 3],
                data[HEADER_LEN - 2],
                data[HEADER_LEN - 1],
            ]);
            let mut crc = Crc32::new();
            crc.update(&data[..HEADER_LEN - 4]);
            crc.update(&[0, 0, 0, 0]);
            crc.update(&data[HEADER_LEN..]);
            crc.finalize() == stored && crc32(&[]) == 0 // second term is trivially true
        }
    }
}

/// Clear `out` and write the 28-byte header with a zeroed checksum
/// field (filled in by [`finish_crc`] once the payload follows).
#[allow(clippy::too_many_arguments)]
fn put_header(
    out: &mut Vec<u8>,
    flags: u8,
    job: u8,
    epoch: u8,
    wid: WorkerId,
    idx: SlotIndex,
    off: ElemOffset,
    count: usize,
) {
    out.clear();
    out.extend_from_slice(&MAGIC.to_be_bytes());
    out.push(PROTO_VERSION);
    out.push(flags);
    out.push(job);
    out.push(epoch);
    out.extend_from_slice(&wid.to_be_bytes());
    out.extend_from_slice(&idx.to_be_bytes());
    out.extend_from_slice(&off.to_be_bytes());
    out.extend_from_slice(&(count as u16).to_be_bytes());
    out.extend_from_slice(&[0, 0]); // reserved
    out.extend_from_slice(&[0, 0, 0, 0]); // checksum placeholder
}

/// Compute the CRC over the complete packet in `out` (checksum field
/// treated as zero) and patch it into the header.
fn finish_crc(out: &mut [u8]) {
    let mut crc = Crc32::new();
    crc.update(&out[..HEADER_LEN - 4]);
    crc.update(&[0, 0, 0, 0]);
    crc.update(&out[HEADER_LEN..]);
    let sum = crc.finalize();
    out[HEADER_LEN - 4..HEADER_LEN].copy_from_slice(&sum.to_be_bytes());
}

/// Header fields of a switch-generated result packet. Bundled so the
/// switch can serialize a response straight from its slot registers
/// via [`encode_result_into`] without building a [`Packet`].
#[derive(Debug, Clone, Copy)]
pub struct ResultMeta {
    pub wid: WorkerId,
    pub ver: PoolVersion,
    pub idx: SlotIndex,
    pub off: ElemOffset,
    pub job: u8,
    /// Job generation (epoch fence); echoed from the completing update.
    pub epoch: u8,
    pub retransmission: bool,
    /// Encode elements as 16-bit floats (the switch "converts
    /// fixed-point values back into equivalent floating-point values",
    /// §3.7) instead of 32-bit integers.
    pub f16: bool,
}

/// Encode a result packet directly from aggregated slot registers into
/// a reusable scratch buffer — the switch's zero-allocation egress
/// path ("rewriting the packet's vector with the aggregated value",
/// §3.3). Bit-identical to `Packet { kind: Result, .. }.encode()`.
pub fn encode_result_into(meta: ResultMeta, values: &[i32], out: &mut Vec<u8>) {
    let mut flags = FLAG_RESULT;
    if meta.ver == PoolVersion::V1 {
        flags |= FLAG_VER;
    }
    if meta.f16 {
        flags |= FLAG_F16;
    }
    if meta.retransmission {
        flags |= FLAG_RETX;
    }
    put_header(
        out,
        flags,
        meta.job,
        meta.epoch,
        meta.wid,
        meta.idx,
        meta.off,
        values.len(),
    );
    if meta.f16 {
        for &v in values {
            out.extend_from_slice(&f16::f32_to_f16(v as f32).to_be_bytes());
        }
    } else {
        crate::simd::be_store_extend(values, out);
    }
    finish_crc(out);
}

/// Encode an update packet directly from quantized values into a
/// reusable scratch buffer — the worker's zero-allocation egress path
/// (Fixed32 wire format, job 0). Bit-identical to
/// `Packet::update(..)` with the given epoch and retransmission flag,
/// encoded.
#[allow(clippy::too_many_arguments)]
pub fn encode_update_into(
    wid: WorkerId,
    ver: PoolVersion,
    idx: SlotIndex,
    off: ElemOffset,
    epoch: u8,
    retransmission: bool,
    values: &[i32],
    out: &mut Vec<u8>,
) {
    let mut flags = 0u8;
    if ver == PoolVersion::V1 {
        flags |= FLAG_VER;
    }
    if retransmission {
        flags |= FLAG_RETX;
    }
    put_header(out, flags, 0, epoch, wid, idx, off, values.len());
    crate::simd::be_store_extend(values, out);
    finish_crc(out);
}

/// A validated, borrowed view of an encoded packet. [`parse`] performs
/// the same magic/version/length/CRC checks as [`Packet::decode`] but
/// keeps the element vector in place in the receive buffer, so the
/// switch can fold wire values straight into its slot registers with
/// zero per-packet allocation (the software equivalent of the P4
/// pipeline reading header fields in place).
///
/// [`parse`]: PacketView::parse
#[derive(Debug, Clone, Copy)]
pub struct PacketView<'a> {
    data: &'a [u8],
    flags: u8,
    count: usize,
}

impl<'a> PacketView<'a> {
    /// Validate `data` and borrow it as a packet view.
    pub fn parse(data: &'a [u8]) -> Result<PacketView<'a>> {
        if data.len() < HEADER_LEN {
            return Err(Error::Malformed("short header"));
        }
        if u16::from_be_bytes([data[0], data[1]]) != MAGIC {
            return Err(Error::Malformed("bad magic"));
        }
        if data[2] != PROTO_VERSION {
            return Err(Error::Malformed("unsupported protocol version"));
        }
        let flags = data[3];
        let count = u16::from_be_bytes([data[20], data[21]]) as usize;
        let elem_bytes = if flags & FLAG_F16 != 0 { 2 } else { 4 };
        if data.len() - HEADER_LEN != count * elem_bytes {
            return Err(Error::Malformed("payload length mismatch"));
        }
        let checksum = u32::from_be_bytes([data[24], data[25], data[26], data[27]]);
        let mut crc = Crc32::new();
        crc.update(&data[..HEADER_LEN - 4]);
        crc.update(&[0, 0, 0, 0]);
        crc.update(&data[HEADER_LEN..]);
        let actual = crc.finalize();
        if actual != checksum {
            return Err(Error::BadChecksum {
                expected: checksum,
                actual,
            });
        }
        Ok(PacketView { data, flags, count })
    }

    pub fn kind(&self) -> PacketKind {
        if self.flags & FLAG_RESULT != 0 {
            PacketKind::Result
        } else {
            PacketKind::Update
        }
    }

    pub fn wid(&self) -> WorkerId {
        u16::from_be_bytes([self.data[6], self.data[7]])
    }

    pub fn ver(&self) -> PoolVersion {
        PoolVersion::from_bit(self.flags & FLAG_VER != 0)
    }

    pub fn idx(&self) -> SlotIndex {
        u32::from_be_bytes([self.data[8], self.data[9], self.data[10], self.data[11]])
    }

    pub fn off(&self) -> ElemOffset {
        u64::from_be_bytes([
            self.data[12],
            self.data[13],
            self.data[14],
            self.data[15],
            self.data[16],
            self.data[17],
            self.data[18],
            self.data[19],
        ])
    }

    pub fn job(&self) -> u8 {
        self.data[4]
    }

    /// Job generation (epoch fence, §5.4).
    pub fn epoch(&self) -> u8 {
        self.data[5]
    }

    pub fn retransmission(&self) -> bool {
        self.flags & FLAG_RETX != 0
    }

    /// Number of elements carried.
    pub fn k(&self) -> usize {
        self.count
    }

    /// The raw payload bytes (big-endian elements), borrowed.
    pub fn payload_bytes(&self) -> &'a [u8] {
        &self.data[HEADER_LEN..]
    }

    /// Materialize an owned [`Packet`] — for paths that must keep the
    /// packet beyond the life of the receive buffer. Allocates.
    pub fn to_packet(&self) -> Packet {
        let bytes = self.payload_bytes();
        let payload = if self.is_f16() {
            Payload::F16(
                bytes
                    .chunks_exact(2)
                    .map(|c| u16::from_be_bytes([c[0], c[1]]))
                    .collect(),
            )
        } else {
            Payload::I32(
                bytes
                    .chunks_exact(4)
                    .map(|c| i32::from_be_bytes([c[0], c[1], c[2], c[3]]))
                    .collect(),
            )
        };
        Packet {
            kind: self.kind(),
            wid: self.wid(),
            ver: self.ver(),
            idx: self.idx(),
            off: self.off(),
            job: self.job(),
            epoch: self.epoch(),
            retransmission: self.retransmission(),
            payload,
        }
    }
}

impl WireElems for PacketView<'_> {
    fn n_elems(&self) -> usize {
        self.count
    }

    fn is_f16(&self) -> bool {
        self.flags & FLAG_F16 != 0
    }

    fn overwrite_into(&self, dst: &mut [i32]) {
        let bytes = self.payload_bytes();
        if self.is_f16() {
            for (d, c) in dst.iter_mut().zip(bytes.chunks_exact(2)) {
                *d = f16_bits_to_i32(u16::from_be_bytes([c[0], c[1]]));
            }
        } else {
            // Vectorized ntohl straight out of the receive buffer.
            crate::simd::be_load(bytes, dst);
        }
    }

    fn add_into(&self, acc: &mut [i32], wrapping: bool) {
        let bytes = self.payload_bytes();
        if self.is_f16() {
            for (a, c) in acc.iter_mut().zip(bytes.chunks_exact(2)) {
                let x = f16_bits_to_i32(u16::from_be_bytes([c[0], c[1]]));
                *a = if wrapping {
                    a.wrapping_add(x)
                } else {
                    a.saturating_add(x)
                };
            }
        } else if wrapping {
            // Wide i32 adds straight into slot registers — the switch's
            // per-packet aggregation loop.
            crate::simd::be_wrapping_add(bytes, acc);
        } else {
            crate::simd::be_saturating_add(bytes, acc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Packet {
        Packet {
            kind: PacketKind::Update,
            wid: 3,
            ver: PoolVersion::V1,
            idx: 17,
            off: 123_456,
            job: 2,
            epoch: 5,
            retransmission: true,
            payload: Payload::I32((0..32).map(|i| i * 1000 - 16000).collect()),
        }
    }

    #[test]
    fn roundtrip_i32() {
        let p = sample();
        let bytes = p.encode();
        assert_eq!(bytes.len(), HEADER_LEN + 128);
        let q = Packet::decode(&bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn roundtrip_f16() {
        let p = Packet {
            kind: PacketKind::Result,
            wid: 0,
            ver: PoolVersion::V0,
            idx: 0,
            off: 64,
            job: 0,
            epoch: 0,
            retransmission: false,
            payload: Payload::F16((0..32).map(|i| f16::f32_to_f16(i as f32 * 0.5)).collect()),
        };
        let q = Packet::decode(&p.encode()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn wire_size_matches_paper() {
        // k = 32 → 180 bytes (§3.4); MTU k = 366 → 1516 bytes (§5.5).
        assert_eq!(wire_bytes(DEFAULT_K), 180);
        assert_eq!(wire_bytes(MTU_K), 1516);
        assert_eq!(sample().sim_wire_bytes(), 180);
    }

    #[test]
    fn corruption_detected() {
        let bytes = sample().encode().to_vec();
        for pos in [0, 3, 10, HEADER_LEN - 4, HEADER_LEN, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            match Packet::decode(&bad) {
                Err(Error::BadChecksum { .. }) | Err(Error::Malformed(_)) => {}
                other => panic!("corruption at {pos} not detected: {other:?}"),
            }
        }
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample().encode();
        assert!(Packet::decode(&bytes[..10]).is_err());
        assert!(Packet::decode(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn pool_version_flip() {
        assert_eq!(PoolVersion::V0.flip(), PoolVersion::V1);
        assert_eq!(PoolVersion::V1.flip(), PoolVersion::V0);
        assert_eq!(PoolVersion::V0.index(), 0);
        assert_eq!(PoolVersion::V1.index(), 1);
    }

    #[test]
    fn f16_payload_converts_to_i32_by_rounding() {
        let p = Payload::F16(vec![
            f16::f32_to_f16(2.4),
            f16::f32_to_f16(-7.6),
            f16::f32_to_f16(0.0),
        ]);
        assert_eq!(p.to_i32(), vec![2, -8, 0]);
    }

    #[test]
    fn encode_into_matches_encode() {
        let mut scratch = Vec::new();
        for p in [
            sample(),
            Packet {
                kind: PacketKind::Result,
                payload: Payload::F16(vec![f16::f32_to_f16(1.5), f16::f32_to_f16(-2.0)]),
                ..sample()
            },
        ] {
            p.encode_into(&mut scratch);
            assert_eq!(&scratch[..], &p.encode()[..]);
        }
    }

    #[test]
    fn view_agrees_with_decode() {
        for p in [
            sample(),
            Packet {
                kind: PacketKind::Result,
                retransmission: false,
                payload: Payload::F16(vec![f16::f32_to_f16(2.5); 32]),
                ..sample()
            },
        ] {
            let bytes = p.encode();
            let v = PacketView::parse(&bytes).unwrap();
            assert_eq!(v.kind(), p.kind);
            assert_eq!(v.wid(), p.wid);
            assert_eq!(v.ver(), p.ver);
            assert_eq!(v.idx(), p.idx);
            assert_eq!(v.off(), p.off);
            assert_eq!(v.job(), p.job);
            assert_eq!(v.epoch(), p.epoch);
            assert_eq!(v.retransmission(), p.retransmission);
            assert_eq!(v.k(), p.k());
            assert_eq!(v.to_packet(), p);

            // Element access matches the owned conversion.
            let want = p.payload.to_i32();
            let mut got = vec![0i32; v.n_elems()];
            v.overwrite_into(&mut got);
            assert_eq!(got, want);

            let mut acc = vec![5i32; v.n_elems()];
            v.add_into(&mut acc, false);
            let expect: Vec<i32> = want.iter().map(|&x| x.saturating_add(5)).collect();
            assert_eq!(acc, expect);
        }
    }

    #[test]
    fn view_rejects_corruption() {
        let bytes = sample().encode().to_vec();
        for pos in [0, 3, 10, HEADER_LEN - 4, HEADER_LEN, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            assert!(PacketView::parse(&bad).is_err(), "corruption at {pos}");
        }
        assert!(PacketView::parse(&bytes[..10]).is_err());
        assert!(PacketView::parse(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn encode_result_into_matches_packet_encode() {
        let values: Vec<i32> = (0..32).map(|i| i * 7 - 100).collect();
        let mut scratch = Vec::new();
        for f16_mode in [false, true] {
            let meta = ResultMeta {
                wid: 4,
                ver: PoolVersion::V1,
                idx: 9,
                off: 4096,
                job: 1,
                epoch: 3,
                retransmission: true,
                f16: f16_mode,
            };
            encode_result_into(meta, &values, &mut scratch);
            let reference = Packet {
                kind: PacketKind::Result,
                wid: 4,
                ver: PoolVersion::V1,
                idx: 9,
                off: 4096,
                job: 1,
                epoch: 3,
                retransmission: true,
                payload: {
                    let template = if f16_mode {
                        Payload::F16(vec![])
                    } else {
                        Payload::I32(vec![])
                    };
                    Payload::from_i32_as(&template, &values)
                },
            };
            assert_eq!(&scratch[..], &reference.encode()[..]);
        }
    }

    #[test]
    fn encode_update_into_matches_packet_encode() {
        let values: Vec<i32> = (0..32).map(|i| i * 3 - 50).collect();
        let mut scratch = Vec::new();
        for retx in [false, true] {
            encode_update_into(7, PoolVersion::V1, 3, 256, 2, retx, &values, &mut scratch);
            let mut reference = Packet::update(7, PoolVersion::V1, 3, 256, values.clone());
            reference.epoch = 2;
            reference.retransmission = retx;
            assert_eq!(&scratch[..], &reference.encode()[..]);
        }
    }

    #[test]
    fn epoch_zero_is_byte_identical_to_the_pre_epoch_format() {
        // The epoch lives in what used to be a reserved zero byte, so
        // epoch-0 packets must encode exactly as before the field
        // existed (wire compatibility with recorded traces).
        let mut p = sample();
        p.epoch = 0;
        let bytes = p.encode();
        assert_eq!(bytes[5], 0);
        let q = Packet::decode(&bytes).unwrap();
        assert_eq!(q.epoch, 0);
    }

    #[test]
    fn payload_wire_elems_matches_to_i32() {
        let p16 = Payload::F16(vec![
            f16::f32_to_f16(2.5),
            f16::f32_to_f16(-3.5),
            f16::f32_to_f16(f32::NAN),
            f16::f32_to_f16(f32::INFINITY),
        ]);
        let want = p16.to_i32();
        let mut got = Vec::new();
        p16.to_i32_into(&mut got);
        assert_eq!(got, want);
        let mut acc = vec![1i32; 4];
        p16.add_into(&mut acc, false);
        let expect: Vec<i32> = want.iter().map(|&x| x.saturating_add(1)).collect();
        assert_eq!(acc, expect);
    }

    #[test]
    fn from_i32_preserves_format() {
        let t16 = Payload::F16(vec![0]);
        match Payload::from_i32_as(&t16, &[5, -3]) {
            Payload::F16(v) => {
                assert_eq!(f16::f16_to_f32(v[0]), 5.0);
                assert_eq!(f16::f16_to_f32(v[1]), -3.0);
            }
            _ => panic!("format changed"),
        }
        let t32 = Payload::I32(vec![]);
        assert_eq!(Payload::from_i32_as(&t32, &[9]), Payload::I32(vec![9]));
    }
}
