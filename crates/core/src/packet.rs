//! SwitchML wire format.
//!
//! Each packet carries the fields of Algorithm 3/4 — worker id `wid`,
//! single-bit pool version `ver`, slot index `idx`, element offset
//! `off` — plus a vector of `k` elements. The same packet layout is
//! used for worker→switch *updates* and switch→worker *results*
//! (the switch "rewrit\[es\] the packet's vector with the aggregated
//! value", §3.3); a flag bit distinguishes direction so hierarchical
//! switches (§6) can tell a child's update from a parent's result.
//!
//! Elements are encoded either as 32-bit fixed-point integers
//! (big-endian, the `htonl`/`ntohl` of Appendix B) or as 16-bit IEEE
//! floats when the switch-side f16 pipeline is in use (§3.7). A CRC-32
//! trailer detects in-flight corruption.
//!
//! ## Wire-size accounting
//!
//! The paper's packets are `b = 180` bytes at `k = 32`: 128 bytes of
//! vector data plus 52 bytes of Ethernet/IP/UDP/SwitchML headers
//! (28.9% overhead, §5.5). Our software header (28 bytes including the
//! CRC) is richer than the P4 one, so simulations charge
//! [`SIM_FRAME_OVERHEAD`] bytes of L2/L3 framing on top of
//! [`Packet::encode`] to keep the total at exactly 180 bytes — the
//! quantity that governs all goodput arithmetic in the evaluation.

use crate::checksum::{crc32, Crc32};
use crate::error::{Error, Result};
use crate::quant::f16;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Worker identifier (rank) within a job.
pub type WorkerId = u16;
/// Aggregator slot index within the pool.
pub type SlotIndex = u32;
/// Element offset into the (virtually contiguous) tensor stream.
pub type ElemOffset = u64;

/// Elements per packet in the paper's deployment ("In our deployment,
/// k is 32", §3.3).
pub const DEFAULT_K: usize = 32;

/// Elements an MTU-sized packet would carry ("MTU-sized packets would
/// carry 366 elements (1516-byte packets, including all headers)",
/// §5.5).
pub const MTU_K: usize = 366;

/// Fixed per-packet header+framing budget used for wire-size math, so
/// that `wire_bytes(DEFAULT_K) == 180` as in the paper.
pub const HEADER_OVERHEAD_BYTES: usize = 52;

/// Framing bytes charged by the simulator on top of the encoded packet
/// (see module docs: 28-byte software header + 24 = the paper's 52).
pub const SIM_FRAME_OVERHEAD: usize = HEADER_OVERHEAD_BYTES - HEADER_LEN;

/// Serialized header length (including the CRC-32 trailer field).
pub const HEADER_LEN: usize = 28;

const MAGIC: u16 = 0x534D; // "SM"
const PROTO_VERSION: u8 = 1;

const FLAG_VER: u8 = 0b0000_0001;
const FLAG_RESULT: u8 = 0b0000_0010;
const FLAG_F16: u8 = 0b0000_0100;
const FLAG_RETX: u8 = 0b0000_1000;

/// Total on-the-wire bytes of a SwitchML packet carrying `k` 32-bit
/// elements, per the paper's accounting.
pub fn wire_bytes(k: usize) -> usize {
    HEADER_OVERHEAD_BYTES + 4 * k
}

/// On-the-wire bytes when elements travel as 16-bit floats.
pub fn wire_bytes_f16(k: usize) -> usize {
    HEADER_OVERHEAD_BYTES + 2 * k
}

/// The two alternating aggregation pools of Algorithm 3 ("a single bit
/// is enough to distinguish the two active phases for any slot").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PoolVersion {
    #[default]
    V0,
    V1,
}

impl PoolVersion {
    /// The other pool.
    pub fn flip(self) -> Self {
        match self {
            PoolVersion::V0 => PoolVersion::V1,
            PoolVersion::V1 => PoolVersion::V0,
        }
    }

    /// 0 or 1, for indexing `pool[2, s]`-style state.
    pub fn index(self) -> usize {
        match self {
            PoolVersion::V0 => 0,
            PoolVersion::V1 => 1,
        }
    }

    pub fn from_bit(bit: bool) -> Self {
        if bit {
            PoolVersion::V1
        } else {
            PoolVersion::V0
        }
    }
}

/// Update (worker → switch) or result (switch → worker).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    Update,
    Result,
}

/// Element payload. The aggregation domain is always `i32`; 16-bit
/// float payloads are converted at the switch (§3.7).
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// 32-bit fixed-point integers (host-converted, §3.7 option 2).
    I32(Vec<i32>),
    /// IEEE binary16 bit patterns (switch-converted, §3.7 option 1).
    F16(Vec<u16>),
}

impl Payload {
    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            Payload::I32(v) => v.len(),
            Payload::F16(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Encoded payload size in bytes.
    pub fn byte_len(&self) -> usize {
        match self {
            Payload::I32(v) => 4 * v.len(),
            Payload::F16(v) => 2 * v.len(),
        }
    }

    /// Convert to the switch's integer aggregation domain. For f16 the
    /// switch rounds each value to the nearest integer — the lookup-
    /// table conversion the paper verified with the chip vendor.
    pub fn to_i32(&self) -> Vec<i32> {
        match self {
            Payload::I32(v) => v.clone(),
            Payload::F16(v) => v
                .iter()
                .map(|&bits| {
                    let x = f16::f16_to_f32(bits);
                    // Saturating round-to-nearest; NaN becomes 0.
                    if x.is_nan() {
                        0
                    } else {
                        x.round().clamp(i32::MIN as f32, i32::MAX as f32) as i32
                    }
                })
                .collect(),
        }
    }

    /// Re-encode an aggregated integer vector in this payload's format
    /// (the switch "converts fixed-point values back into equivalent
    /// floating-point values" when generating responses).
    pub fn from_i32_as(template: &Payload, values: &[i32]) -> Payload {
        match template {
            Payload::I32(_) => Payload::I32(values.to_vec()),
            Payload::F16(_) => {
                Payload::F16(values.iter().map(|&v| f16::f32_to_f16(v as f32)).collect())
            }
        }
    }
}

/// A SwitchML protocol packet (update or result).
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    pub kind: PacketKind,
    /// Sender's worker id. For results this echoes the slot's
    /// completing update (workers ignore it); for unicast
    /// retransmitted results it addresses the requesting worker.
    pub wid: WorkerId,
    /// Single-bit pool version (Algorithm 3's `ver`).
    pub ver: PoolVersion,
    /// Aggregator slot (Algorithm 1's `idx`).
    pub idx: SlotIndex,
    /// Element offset this vector starts at (Algorithm 2's `off`).
    pub off: ElemOffset,
    /// Job id, for multi-tenant pools (§6 "Multi-job (tenancy)").
    pub job: u8,
    /// Diagnostic flag: this packet is a retransmission. Carried on
    /// the wire so traces can separate first transmissions from
    /// retransmissions (Figure 6's "resent" series) but ignored by the
    /// protocol logic.
    pub retransmission: bool,
    pub payload: Payload,
}

impl Packet {
    /// A fresh update packet with an i32 payload.
    pub fn update(
        wid: WorkerId,
        ver: PoolVersion,
        idx: SlotIndex,
        off: ElemOffset,
        v: Vec<i32>,
    ) -> Self {
        Packet {
            kind: PacketKind::Update,
            wid,
            ver,
            idx,
            off,
            job: 0,
            retransmission: false,
            payload: Payload::I32(v),
        }
    }

    /// Number of elements carried.
    pub fn k(&self) -> usize {
        self.payload.len()
    }

    /// Total wire size the simulator should charge for this packet.
    pub fn sim_wire_bytes(&self) -> usize {
        HEADER_LEN + self.payload.byte_len() + SIM_FRAME_OVERHEAD
    }

    /// Serialize to bytes (header + payload, CRC-32 filled in).
    pub fn encode(&self) -> Bytes {
        let mut flags = 0u8;
        if self.ver == PoolVersion::V1 {
            flags |= FLAG_VER;
        }
        if self.kind == PacketKind::Result {
            flags |= FLAG_RESULT;
        }
        if matches!(self.payload, Payload::F16(_)) {
            flags |= FLAG_F16;
        }
        if self.retransmission {
            flags |= FLAG_RETX;
        }

        let mut buf = BytesMut::with_capacity(HEADER_LEN + self.payload.byte_len());
        buf.put_u16(MAGIC);
        buf.put_u8(PROTO_VERSION);
        buf.put_u8(flags);
        buf.put_u8(self.job);
        buf.put_u8(0); // reserved
        buf.put_u16(self.wid);
        buf.put_u32(self.idx);
        buf.put_u64(self.off);
        buf.put_u16(self.payload.len() as u16);
        buf.put_u16(0); // reserved
        buf.put_u32(0); // checksum placeholder
        match &self.payload {
            Payload::I32(v) => {
                for &x in v {
                    buf.put_i32(x);
                }
            }
            Payload::F16(v) => {
                for &x in v {
                    buf.put_u16(x);
                }
            }
        }
        // CRC over the whole packet with the checksum field zeroed.
        let mut crc = Crc32::new();
        crc.update(&buf[..HEADER_LEN - 4]);
        crc.update(&[0, 0, 0, 0]);
        crc.update(&buf[HEADER_LEN..]);
        let sum = crc.finalize();
        buf[HEADER_LEN - 4..HEADER_LEN].copy_from_slice(&sum.to_be_bytes());
        buf.freeze()
    }

    /// Parse a packet, verifying magic, version, length and CRC.
    pub fn decode(mut data: &[u8]) -> Result<Packet> {
        if data.len() < HEADER_LEN {
            return Err(Error::Malformed("short header"));
        }
        let full = data;
        let magic = data.get_u16();
        if magic != MAGIC {
            return Err(Error::Malformed("bad magic"));
        }
        let version = data.get_u8();
        if version != PROTO_VERSION {
            return Err(Error::Malformed("unsupported protocol version"));
        }
        let flags = data.get_u8();
        let job = data.get_u8();
        let _reserved = data.get_u8();
        let wid = data.get_u16();
        let idx = data.get_u32();
        let off = data.get_u64();
        let count = data.get_u16() as usize;
        let _reserved2 = data.get_u16();
        let checksum = data.get_u32();

        let elem_bytes = if flags & FLAG_F16 != 0 { 2 } else { 4 };
        if data.len() != count * elem_bytes {
            return Err(Error::Malformed("payload length mismatch"));
        }

        let mut crc = Crc32::new();
        crc.update(&full[..HEADER_LEN - 4]);
        crc.update(&[0, 0, 0, 0]);
        crc.update(&full[HEADER_LEN..]);
        let actual = crc.finalize();
        if actual != checksum {
            return Err(Error::BadChecksum {
                expected: checksum,
                actual,
            });
        }

        let payload = if flags & FLAG_F16 != 0 {
            let mut v = Vec::with_capacity(count);
            for _ in 0..count {
                v.push(data.get_u16());
            }
            Payload::F16(v)
        } else {
            let mut v = Vec::with_capacity(count);
            for _ in 0..count {
                v.push(data.get_i32());
            }
            Payload::I32(v)
        };

        Ok(Packet {
            kind: if flags & FLAG_RESULT != 0 {
                PacketKind::Result
            } else {
                PacketKind::Update
            },
            wid,
            ver: PoolVersion::from_bit(flags & FLAG_VER != 0),
            idx,
            off,
            job,
            retransmission: flags & FLAG_RETX != 0,
            payload,
        })
    }

    /// Peek the packet kind from encoded bytes without a full decode —
    /// used by composite nodes (colocated worker + PS shard) to route
    /// an arriving packet to the right half.
    pub fn peek_kind(data: &[u8]) -> Option<PacketKind> {
        if data.len() < 4 || u16::from_be_bytes([data[0], data[1]]) != MAGIC {
            return None;
        }
        Some(if data[3] & FLAG_RESULT != 0 {
            PacketKind::Result
        } else {
            PacketKind::Update
        })
    }

    /// Quick integrity check of already-decoded bytes (used by tests
    /// and fuzz-ish property tests).
    pub fn verify_bytes(data: &[u8]) -> bool {
        data.len() >= HEADER_LEN && {
            let stored = u32::from_be_bytes([
                data[HEADER_LEN - 4],
                data[HEADER_LEN - 3],
                data[HEADER_LEN - 2],
                data[HEADER_LEN - 1],
            ]);
            let mut crc = Crc32::new();
            crc.update(&data[..HEADER_LEN - 4]);
            crc.update(&[0, 0, 0, 0]);
            crc.update(&data[HEADER_LEN..]);
            crc.finalize() == stored && crc32(&[]) == 0 // second term is trivially true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Packet {
        Packet {
            kind: PacketKind::Update,
            wid: 3,
            ver: PoolVersion::V1,
            idx: 17,
            off: 123_456,
            job: 2,
            retransmission: true,
            payload: Payload::I32((0..32).map(|i| i * 1000 - 16000).collect()),
        }
    }

    #[test]
    fn roundtrip_i32() {
        let p = sample();
        let bytes = p.encode();
        assert_eq!(bytes.len(), HEADER_LEN + 128);
        let q = Packet::decode(&bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn roundtrip_f16() {
        let p = Packet {
            kind: PacketKind::Result,
            wid: 0,
            ver: PoolVersion::V0,
            idx: 0,
            off: 64,
            job: 0,
            retransmission: false,
            payload: Payload::F16((0..32).map(|i| f16::f32_to_f16(i as f32 * 0.5)).collect()),
        };
        let q = Packet::decode(&p.encode()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn wire_size_matches_paper() {
        // k = 32 → 180 bytes (§3.4); MTU k = 366 → 1516 bytes (§5.5).
        assert_eq!(wire_bytes(DEFAULT_K), 180);
        assert_eq!(wire_bytes(MTU_K), 1516);
        assert_eq!(sample().sim_wire_bytes(), 180);
    }

    #[test]
    fn corruption_detected() {
        let bytes = sample().encode().to_vec();
        for pos in [0, 3, 10, HEADER_LEN - 4, HEADER_LEN, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            match Packet::decode(&bad) {
                Err(Error::BadChecksum { .. }) | Err(Error::Malformed(_)) => {}
                other => panic!("corruption at {pos} not detected: {other:?}"),
            }
        }
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample().encode();
        assert!(Packet::decode(&bytes[..10]).is_err());
        assert!(Packet::decode(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn pool_version_flip() {
        assert_eq!(PoolVersion::V0.flip(), PoolVersion::V1);
        assert_eq!(PoolVersion::V1.flip(), PoolVersion::V0);
        assert_eq!(PoolVersion::V0.index(), 0);
        assert_eq!(PoolVersion::V1.index(), 1);
    }

    #[test]
    fn f16_payload_converts_to_i32_by_rounding() {
        let p = Payload::F16(vec![
            f16::f32_to_f16(2.4),
            f16::f32_to_f16(-7.6),
            f16::f32_to_f16(0.0),
        ]);
        assert_eq!(p.to_i32(), vec![2, -8, 0]);
    }

    #[test]
    fn from_i32_preserves_format() {
        let t16 = Payload::F16(vec![0]);
        match Payload::from_i32_as(&t16, &[5, -3]) {
            Payload::F16(v) => {
                assert_eq!(f16::f16_to_f32(v[0]), 5.0);
                assert_eq!(f16::f16_to_f32(v[1]), -3.0);
            }
            _ => panic!("format changed"),
        }
        let t32 = Payload::I32(vec![]);
        assert_eq!(Payload::from_i32_as(&t32, &[9]), Payload::I32(vec![9]));
    }
}
