//! Protocol invariant oracles (§3.5, Appendix A).
//!
//! One executable definition of "the switch behaved correctly",
//! shared by every substrate that hosts a switch state machine: the
//! netsim switch node, the threaded single-core and sharded runners
//! (as `debug_assertions`-only checks on their hot paths), and the
//! `switchml-check` model checker (as a hard oracle on every explored
//! schedule).
//!
//! The oracle is a *reference model*: an independent re-execution of
//! Algorithm 3 (or Algorithm 1 for [`BasicOracle`]) fed the same
//! packet stream. After each packet it checks
//!
//! * **action correctness** — the switch dropped / multicast / unicast
//!   exactly when the reference model says it should;
//! * **no double-add** — the slot value equals the reference sum,
//!   computed with the very same [`WireElems`] arithmetic, so any
//!   duplicate folded in twice diverges bit-exactly;
//! * **bitmap ⊆ contributors** — the `seen` bitmap equals the
//!   reference contributor set (Algorithm 3's per-(version, slot)
//!   bookkeeping);
//! * **counter discipline** — `count == popcount(seen) mod n`, the
//!   §3.5 relation that makes completion detection and shadow-copy
//!   retention work;
//! * **phase-offset discipline** — all contributions of a phase carry
//!   one element offset (pool-version phase discipline).
//!
//! The comparisons read the implementation through narrow read-only
//! views ([`ReliableStateView`]) so the checker can also point the
//! same oracle at deliberately broken switch implementations
//! (mutation testing).

use crate::bitmap::WorkerBitmap;
use crate::config::Protocol;
use crate::error::Result;
use crate::packet::{ElemOffset, Payload, PoolVersion, SlotIndex, WireElems, WorkerId};
use crate::switch::basic::BasicSwitch;
use crate::switch::reliable::{CellView, ReliableSwitch};
use crate::switch::{SwitchAction, WireAction};
use std::fmt;

/// A violated protocol invariant: which oracle fired and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleViolation {
    /// Short stable identifier of the invariant (used by trace files).
    pub oracle: &'static str,
    /// Human-readable diagnosis.
    pub message: String,
}

impl fmt::Display for OracleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.message)
    }
}

fn violation(oracle: &'static str, message: String) -> OracleViolation {
    OracleViolation { oracle, message }
}

/// The shape of the switch's response to one packet, abstracted over
/// the owned ([`SwitchAction`]) and zero-copy ([`WireAction`]) paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObservedAction {
    Drop,
    Multicast,
    Unicast(WorkerId),
}

impl ObservedAction {
    pub fn of_switch(a: &SwitchAction) -> Self {
        match a {
            SwitchAction::Drop => ObservedAction::Drop,
            SwitchAction::Multicast(_) => ObservedAction::Multicast,
            SwitchAction::Unicast(w, _) => ObservedAction::Unicast(*w),
        }
    }

    pub fn of_wire(a: &WireAction) -> Self {
        match a {
            WireAction::Drop => ObservedAction::Drop,
            WireAction::Multicast => ObservedAction::Multicast,
            WireAction::Unicast(w) => ObservedAction::Unicast(*w),
        }
    }
}

/// Read-only access to a reliable switch's per-(version, slot) cells.
/// [`ReliableSwitch`] implements it; so do the model checker's mutant
/// switches, which is what lets one oracle judge both.
pub trait ReliableStateView {
    fn cell_view(&self, ver: PoolVersion, idx: usize) -> CellView<'_>;
}

impl ReliableStateView for ReliableSwitch {
    fn cell_view(&self, ver: PoolVersion, idx: usize) -> CellView<'_> {
        self.cell(ver, idx)
    }
}

/// Reference state for one (version, slot) cell.
#[derive(Debug, Clone)]
struct RefCell {
    sum: Vec<i32>,
    count: usize,
    contributors: WorkerBitmap,
    off: ElemOffset,
    /// Did the last phase aggregated here run to completion (so the
    /// cell holds a shadow copy a laggard may still request)?
    complete: bool,
}

/// Reference model of [`ReliableSwitch`] (Algorithm 3), §3.5 oracle.
#[derive(Debug, Clone)]
pub struct ReliableOracle {
    n: usize,
    k: usize,
    wrapping: bool,
    cells: [Vec<RefCell>; 2],
}

impl ReliableOracle {
    pub fn new(n_workers: usize, k: usize, pool_size: usize, wrapping: bool) -> Self {
        let mk = || {
            (0..pool_size)
                .map(|_| RefCell {
                    sum: vec![0; k],
                    count: 0,
                    contributors: WorkerBitmap::empty(),
                    off: 0,
                    complete: false,
                })
                .collect::<Vec<_>>()
        };
        ReliableOracle {
            n: n_workers,
            k,
            wrapping,
            cells: [mk(), mk()],
        }
    }

    pub fn for_proto(proto: &Protocol) -> Self {
        Self::new(
            proto.n_workers,
            proto.k,
            proto.pool_size,
            proto.wrapping_add,
        )
    }

    pub fn for_switch(sw: &ReliableSwitch) -> Self {
        Self::new(sw.n_workers(), sw.k(), sw.pool_size(), sw.wrapping())
    }

    /// The reference model's view of a cell's aggregate, for callers
    /// (the checker's final-result oracle) that want the spec's sum.
    pub fn reference_sum(&self, ver: PoolVersion, idx: usize) -> &[i32] {
        &self.cells[ver.index()][idx].sum
    }

    /// Feed one update packet the switch processed successfully
    /// (action `observed`), advance the reference model, and compare
    /// the implementation's state against it.
    ///
    /// Malformed packets the switch *rejected* (returned an error for)
    /// must not be fed here: rejection leaves both states untouched.
    #[allow(clippy::too_many_arguments)]
    pub fn observe_update<E: WireElems + ?Sized, S: ReliableStateView>(
        &mut self,
        wid: WorkerId,
        ver: PoolVersion,
        idx: SlotIndex,
        off: ElemOffset,
        elems: &E,
        observed: ObservedAction,
        switch: &S,
    ) -> std::result::Result<(), OracleViolation> {
        let idx = idx as usize;
        let w = wid as usize;
        if idx >= self.cells[0].len() || w >= self.n || elems.n_elems() != self.k {
            return Err(violation(
                "reject-discipline",
                format!(
                    "switch accepted a malformed update (wid {wid} slot {idx} k {})",
                    elems.n_elems()
                ),
            ));
        }
        let v = ver.index();
        let o = 1 - v;

        let expected = if !self.cells[v][idx].contributors.contains(w) {
            // Fresh contribution to this phase.
            self.cells[o][idx].contributors.clear(w);
            let cell = &mut self.cells[v][idx];
            if cell.count == 0 {
                // First contribution of the phase overwrites (implicit
                // release of the shadow copy two phases back).
                elems.overwrite_into(&mut cell.sum);
                cell.off = off;
                cell.complete = false;
            } else {
                if cell.off != off {
                    // The switch must have rejected this; seeing it
                    // here with an Ok action is itself a violation.
                    return Err(violation(
                        "phase-offset",
                        format!(
                            "slot {idx} ver {v}: worker {w} folded in off {off} into a phase at off {}",
                            cell.off
                        ),
                    ));
                }
                elems.add_into(&mut cell.sum, self.wrapping);
            }
            cell.contributors.set(w);
            cell.count = (cell.count + 1) % self.n;
            if cell.count == 0 {
                cell.complete = true;
                ObservedAction::Multicast
            } else {
                ObservedAction::Drop
            }
        } else {
            // Duplicate within the phase.
            let cell = &self.cells[v][idx];
            if cell.complete {
                ObservedAction::Unicast(wid)
            } else {
                ObservedAction::Drop
            }
        };

        if observed != expected {
            return Err(violation(
                "action",
                format!(
                    "slot {idx} ver {v} worker {w} off {off}: switch answered {observed:?}, \
                     Algorithm 3 requires {expected:?}"
                ),
            ));
        }

        // Compare implementation state against the reference model for
        // both versions of the touched slot.
        for ver_ix in 0..2 {
            let cell = &self.cells[ver_ix][idx];
            let actual = switch.cell_view(PoolVersion::from_bit(ver_ix == 1), idx);
            if actual.count != cell.count {
                return Err(violation(
                    "counter-discipline",
                    format!(
                        "slot {idx} ver {ver_ix}: count {} but reference model has {}",
                        actual.count, cell.count
                    ),
                ));
            }
            if actual.seen != cell.contributors {
                return Err(violation(
                    "bitmap-contributors",
                    format!(
                        "slot {idx} ver {ver_ix}: seen bitmap {:?} != reference contributor set {:?}",
                        actual.seen.iter().collect::<Vec<_>>(),
                        cell.contributors.iter().collect::<Vec<_>>()
                    ),
                ));
            }
            // §3.5 count/bitmap relation: while a phase aggregates,
            // the counter tracks the set bits exactly; once it
            // completes the counter is 0 while the bitmap drains into
            // the other pool one fresh contribution at a time.
            let coherent = if cell.complete {
                actual.count == 0
            } else {
                actual.count == cell.contributors.count()
            };
            if !coherent {
                return Err(violation(
                    "counter-discipline",
                    format!(
                        "slot {idx} ver {ver_ix}: count {} incoherent with popcount(seen) {} \
                         (phase complete: {})",
                        actual.count,
                        cell.contributors.count(),
                        cell.complete
                    ),
                ));
            }
            if actual.off != cell.off {
                return Err(violation(
                    "phase-offset",
                    format!(
                        "slot {idx} ver {ver_ix}: phase off {} but reference model has {}",
                        actual.off, cell.off
                    ),
                ));
            }
            if actual.value != cell.sum.as_slice() {
                return Err(violation(
                    "double-add",
                    format!(
                        "slot {idx} ver {ver_ix}: aggregate diverged from the reference sum \
                         (switch {:?} vs reference {:?})",
                        &actual.value[..actual.value.len().min(8)],
                        &cell.sum[..cell.sum.len().min(8)]
                    ),
                ));
            }
        }
        Ok(())
    }

    /// [`Self::observe_update`] for the owned-packet ingress path;
    /// call with the packet fields captured *before* `on_packet`
    /// consumed the packet, and the action it returned.
    #[allow(clippy::too_many_arguments)]
    pub fn observe_packet<S: ReliableStateView>(
        &mut self,
        wid: WorkerId,
        ver: PoolVersion,
        idx: SlotIndex,
        off: ElemOffset,
        payload: &Payload,
        action: &SwitchAction,
        switch: &S,
    ) -> std::result::Result<(), OracleViolation> {
        self.observe_update(
            wid,
            ver,
            idx,
            off,
            payload,
            ObservedAction::of_switch(action),
            switch,
        )
    }
}

/// Reference model of [`BasicSwitch`] (Algorithm 1): per-slot sums and
/// counters on a lossless fabric. No duplicate protection exists to
/// check, so the oracle is exact-sum plus counter discipline.
#[derive(Debug, Clone)]
pub struct BasicOracle {
    n: usize,
    k: usize,
    wrapping: bool,
    sums: Vec<Vec<i32>>,
    counts: Vec<usize>,
}

impl BasicOracle {
    pub fn new(n_workers: usize, k: usize, pool_size: usize, wrapping: bool) -> Self {
        BasicOracle {
            n: n_workers,
            k,
            wrapping,
            sums: vec![vec![0; k]; pool_size],
            counts: vec![0; pool_size],
        }
    }

    pub fn for_proto(proto: &Protocol) -> Self {
        Self::new(
            proto.n_workers,
            proto.k,
            proto.pool_size,
            proto.wrapping_add,
        )
    }

    /// Feed one update the switch accepted and compare state. `switch`
    /// must be inspected *after* it processed the packet (i.e. after
    /// the completed slot was released).
    pub fn observe_update<E: WireElems + ?Sized>(
        &mut self,
        idx: SlotIndex,
        elems: &E,
        observed: ObservedAction,
        switch: &BasicSwitch,
    ) -> std::result::Result<(), OracleViolation> {
        let idx = idx as usize;
        if idx >= self.sums.len() || elems.n_elems() != self.k {
            return Err(violation(
                "reject-discipline",
                format!("switch accepted a malformed update (slot {idx})"),
            ));
        }
        elems.add_into(&mut self.sums[idx], self.wrapping);
        self.counts[idx] += 1;
        let expected = if self.counts[idx] == self.n {
            // Completion: Algorithm 1 zeroes the slot after emitting.
            self.counts[idx] = 0;
            self.sums[idx].iter_mut().for_each(|x| *x = 0);
            ObservedAction::Multicast
        } else {
            ObservedAction::Drop
        };
        if observed != expected {
            return Err(violation(
                "action",
                format!(
                    "slot {idx}: switch answered {observed:?}, Algorithm 1 requires {expected:?}"
                ),
            ));
        }
        let (value, count) = switch.slot(idx);
        if count != self.counts[idx] {
            return Err(violation(
                "counter-discipline",
                format!(
                    "slot {idx}: count {count} but reference model has {}",
                    self.counts[idx]
                ),
            ));
        }
        if value != self.sums[idx].as_slice() {
            return Err(violation(
                "double-add",
                format!("slot {idx}: aggregate diverged from the reference sum"),
            ));
        }
        Ok(())
    }
}

/// Drive `switch.on_packet` and the oracle together — the convenience
/// wrapper the embedding layers use so their hot paths stay one call.
/// Returns the switch's action; panics on an oracle violation (these
/// wrappers run under `debug_assertions` only).
pub fn checked_on_packet(
    switch: &mut ReliableSwitch,
    oracle: &mut ReliableOracle,
    p: crate::packet::Packet,
) -> Result<SwitchAction> {
    let (wid, ver, idx, off) = (p.wid, p.ver, p.idx, p.off);
    let payload = p.payload.clone();
    let action = switch.on_packet(p)?;
    oracle
        .observe_packet(wid, ver, idx, off, &payload, &action, switch)
        .unwrap_or_else(|v| panic!("protocol invariant violated: {v}"));
    Ok(action)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, PacketKind};

    fn proto(n: usize, k: usize, s: usize) -> Protocol {
        Protocol {
            n_workers: n,
            k,
            pool_size: s,
            ..Protocol::default()
        }
    }

    fn upd(wid: u16, ver: PoolVersion, idx: u32, off: u64, v: Vec<i32>) -> Packet {
        Packet {
            kind: PacketKind::Update,
            wid,
            ver,
            idx,
            off,
            job: 0,
            epoch: 0,
            retransmission: false,
            payload: Payload::I32(v),
        }
    }

    #[test]
    fn clean_run_passes_the_oracle() {
        let p = proto(2, 2, 1);
        let mut sw = ReliableSwitch::new(&p).unwrap();
        let mut oracle = ReliableOracle::for_proto(&p);
        let script = [
            upd(0, PoolVersion::V0, 0, 0, vec![1, 2]),
            upd(0, PoolVersion::V0, 0, 0, vec![1, 2]), // dup before completion
            upd(1, PoolVersion::V0, 0, 0, vec![3, 4]), // completes
            upd(1, PoolVersion::V0, 0, 0, vec![3, 4]), // dup after: unicast
            upd(0, PoolVersion::V1, 0, 2, vec![5, 6]),
            upd(1, PoolVersion::V1, 0, 2, vec![7, 8]),
        ];
        for pkt in script {
            checked_on_packet(&mut sw, &mut oracle, pkt).unwrap();
        }
        assert_eq!(oracle.reference_sum(PoolVersion::V1, 0), &[12, 14]);
    }

    #[test]
    fn divergent_state_is_flagged() {
        // Feed the oracle a *different* switch than the one that
        // processed the packet: states diverge, the oracle fires.
        let p = proto(2, 1, 1);
        let mut sw = ReliableSwitch::new(&p).unwrap();
        let fresh = ReliableSwitch::new(&p).unwrap();
        let mut oracle = ReliableOracle::for_proto(&p);
        let pkt = upd(0, PoolVersion::V0, 0, 0, vec![9]);
        let payload = pkt.payload.clone();
        let action = sw.on_packet(pkt).unwrap();
        let err = oracle
            .observe_packet(0, PoolVersion::V0, 0, 0, &payload, &action, &fresh)
            .unwrap_err();
        assert!(
            err.oracle == "counter-discipline" || err.oracle == "bitmap-contributors",
            "{err}"
        );
    }

    #[test]
    fn wrong_action_is_flagged() {
        let p = proto(2, 1, 1);
        let mut sw = ReliableSwitch::new(&p).unwrap();
        let mut oracle = ReliableOracle::for_proto(&p);
        let pkt = upd(0, PoolVersion::V0, 0, 0, vec![1]);
        let payload = pkt.payload.clone();
        sw.on_packet(pkt).unwrap();
        // Claim the switch multicast when it should have dropped.
        let err = oracle
            .observe_update(
                0,
                PoolVersion::V0,
                0,
                0,
                &payload,
                ObservedAction::Multicast,
                &sw,
            )
            .unwrap_err();
        assert_eq!(err.oracle, "action");
    }

    #[test]
    fn basic_oracle_tracks_algorithm_1() {
        let p = proto(2, 2, 2);
        let mut sw = BasicSwitch::new(&p).unwrap();
        let mut oracle = BasicOracle::for_proto(&p);
        for pkt in [
            upd(0, PoolVersion::V0, 0, 0, vec![1, 1]),
            upd(1, PoolVersion::V0, 0, 0, vec![2, 2]),
            upd(0, PoolVersion::V0, 1, 4, vec![3, 3]),
        ] {
            let payload = pkt.payload.clone();
            let idx = pkt.idx;
            let action = sw.on_packet(pkt).unwrap();
            oracle
                .observe_update(idx, &payload, ObservedAction::of_switch(&action), &sw)
                .unwrap();
        }
    }
}
