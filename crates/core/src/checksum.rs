//! CRC-32 (IEEE 802.3) checksum.
//!
//! §3.4: "A simple checksum can be used to detect corruption and
//! discard corrupted packets." We use the standard reflected CRC-32
//! polynomial 0xEDB88320 — the same algorithm Ethernet FCS uses, so a
//! corrupted-in-flight packet is rejected exactly where the real
//! deployment would reject it.
//!
//! The update loop uses the slicing-by-8 technique: eight lookup
//! tables let each iteration consume 8 input bytes with independent
//! table loads instead of the bytewise algorithm's serial
//! 1-byte-per-iteration dependency chain. The CRC value is identical
//! to the bytewise algorithm for every input and every incremental
//! split — slicing only reassociates the table lookups. (The
//! hardware `crc32` instruction is *not* usable here: it implements
//! CRC-32C, a different polynomial.)

/// Number of slicing tables / bytes consumed per unrolled iteration.
const SLICES: usize = 8;

/// Build the slicing-by-8 tables at compile time. `TABLES[0]` is the
/// classic reflected bytewise table; `TABLES[s][i]` extends
/// `TABLES[s-1][i]` by one more zero byte, so xoring one lookup per
/// input byte at the right shift yields the same polynomial division
/// the bytewise loop performs serially.
const fn build_tables() -> [[u32; 256]; SLICES] {
    let mut tables = [[0u32; 256]; SLICES];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut s = 1;
    while s < SLICES {
        let mut i = 0;
        while i < 256 {
            let prev = tables[s - 1][i];
            tables[s][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        s += 1;
    }
    tables
}

static CRC_TABLES: [[u32; 256]; SLICES] = build_tables();

/// Incremental CRC-32 state, for checksumming a packet in pieces
/// (header then payload) without copying.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed bytes into the checksum: slicing-by-8 over the body, the
    /// bytewise recurrence over the `< 8`-byte remainder.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        let mut chunks = data.chunks_exact(SLICES);
        for c in &mut chunks {
            let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
            let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
            crc = CRC_TABLES[7][(lo & 0xFF) as usize]
                ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ CRC_TABLES[4][(lo >> 24) as usize]
                ^ CRC_TABLES[3][(hi & 0xFF) as usize]
                ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ CRC_TABLES[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Finish and return the checksum value.
    pub fn finalize(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"hello switchml world";
        let mut c = Crc32::new();
        c.update(&data[..5]);
        c.update(&data[5..]);
        assert_eq!(c.finalize(), crc32(data));
    }

    /// Bytewise reference implementation, kept in tests only.
    fn crc32_bytewise(data: &[u8]) -> u32 {
        let mut crc = 0xFFFF_FFFFu32;
        for &b in data {
            crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
        }
        crc ^ 0xFFFF_FFFF
    }

    /// Slicing-by-8 must equal the bytewise recurrence for every
    /// length (body/remainder boundary at each residue mod 8) and
    /// every incremental split point.
    #[test]
    fn sliced_matches_bytewise_at_all_lengths_and_splits() {
        let data: Vec<u8> = (0..257u32)
            .map(|i| (i.wrapping_mul(131) >> 3) as u8)
            .collect();
        for len in 0..data.len() {
            let d = &data[..len];
            assert_eq!(crc32(d), crc32_bytewise(d), "len {len}");
        }
        // Incremental splits across the 28-byte header / payload
        // boundary shape the hot path uses.
        let d = &data[..100];
        for split in 0..=d.len() {
            let mut c = Crc32::new();
            c.update(&d[..split]);
            c.update(&d[split..]);
            assert_eq!(c.finalize(), crc32_bytewise(d), "split {split}");
        }
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 180];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i * 7) as u8;
        }
        let orig = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), orig, "missed flip at {byte}:{bit}");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
