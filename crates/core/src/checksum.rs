//! CRC-32 (IEEE 802.3) checksum.
//!
//! §3.4: "A simple checksum can be used to detect corruption and
//! discard corrupted packets." We use the standard reflected CRC-32
//! polynomial 0xEDB88320 with a lazily-built 256-entry table — the same
//! algorithm Ethernet FCS uses, so a corrupted-in-flight packet is
//! rejected exactly where the real deployment would reject it.

/// Build the reflected CRC-32 lookup table at compile time.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_table();

/// Incremental CRC-32 state, for checksumming a packet in pieces
/// (header then payload) without copying.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed bytes into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Finish and return the checksum value.
    pub fn finalize(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"hello switchml world";
        let mut c = Crc32::new();
        c.update(&data[..5]);
        c.update(&data[5..]);
        assert_eq!(c.finalize(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 180];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i * 7) as u8;
        }
        let orig = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), orig, "missed flip at {byte}:{bit}");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
