//! signSGD with majority vote, over the SwitchML integer aggregator.
//!
//! The paper surveys gradient-compression schemes that pair naturally
//! with in-network aggregation (§3.7: signSGD \[6\], signSGD with
//! majority vote \[7\], 1-bit SGD \[51\], TernGrad \[59\]). Majority-vote
//! signSGD is the cleanest fit: each worker transmits only the *sign*
//! of each gradient component (±1), the switch's integer addition
//! computes the vote tally for free, and each worker applies
//! `sign(Σ signs)` — no scaling factor, no overflow concern (the tally
//! is bounded by n), and per \[7\] the vote confers Byzantine fault
//! tolerance. This module provides the encode/decode halves; the
//! switch in the middle is the unmodified integer aggregator.

/// Encode a gradient as its elementwise sign: +1 for x ≥ 0, −1
/// otherwise (signSGD's convention; NaN maps to +1 to stay in-band).
pub fn sign_encode(grad: &[f32], out: &mut Vec<i32>) {
    out.clear();
    out.reserve(grad.len());
    out.extend(grad.iter().map(|&x| if x < 0.0 { -1 } else { 1 }));
}

/// Decode an aggregated vote tally into the majority sign per element:
/// +1, −1, or 0 on an exact tie.
pub fn majority_decode(tally: &[i32], out: &mut Vec<f32>) {
    out.clear();
    out.reserve(tally.len());
    out.extend(tally.iter().map(|&t| match t.cmp(&0) {
        std::cmp::Ordering::Greater => 1.0,
        std::cmp::Ordering::Less => -1.0,
        std::cmp::Ordering::Equal => 0.0,
    }));
}

/// The vote tally is always within ±n: the only overflow condition,
/// trivially satisfied for any realistic worker count (cf. Theorem 2's
/// far tighter bound for magnitude aggregation).
pub fn tally_bound(n_workers: usize) -> i32 {
    n_workers as i32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_signs() {
        let mut out = Vec::new();
        sign_encode(&[1.5, -0.25, 0.0, -1e-30, f32::NAN], &mut out);
        assert_eq!(out, vec![1, -1, 1, -1, 1]);
    }

    #[test]
    fn majority_vote() {
        let mut out = Vec::new();
        majority_decode(&[3, -2, 0, 1], &mut out);
        assert_eq!(out, vec![1.0, -1.0, 0.0, 1.0]);
    }

    #[test]
    fn end_to_end_vote_through_switch() {
        use crate::config::Protocol;
        use crate::packet::{Packet, Payload, PoolVersion};
        use crate::switch::basic::BasicSwitch;
        use crate::switch::SwitchAction;
        // 5 workers vote on 4 components; workers 0–2 say [+,−,+,−],
        // workers 3–4 disagree on everything.
        let p = Protocol {
            n_workers: 5,
            k: 4,
            pool_size: 1,
            ..Protocol::default()
        };
        let mut sw = BasicSwitch::new(&p).unwrap();
        let mut result = None;
        for w in 0..5u16 {
            let grad: Vec<f32> = if w < 3 {
                vec![0.7, -0.1, 2.0, -9.0]
            } else {
                vec![-0.7, 0.1, -2.0, 9.0]
            };
            let mut signs = Vec::new();
            sign_encode(&grad, &mut signs);
            if let SwitchAction::Multicast(r) = sw
                .on_packet(Packet::update(w, PoolVersion::V0, 0, 0, signs))
                .unwrap()
            {
                // Move the tally out of the result packet — no copy.
                result = match r.payload {
                    Payload::I32(v) => Some(v),
                    other => panic!("expected i32 payload, got {other:?}"),
                };
            }
        }
        let tally = result.expect("vote completed");
        assert_eq!(tally, vec![1, -1, 1, -1]); // 3 − 2 each way
        let mut majority = Vec::new();
        majority_decode(&tally, &mut majority);
        assert_eq!(majority, vec![1.0, -1.0, 1.0, -1.0]);
        assert!(tally.iter().all(|&t| t.abs() <= tally_bound(5)));
    }
}
