//! Numerical representations for gradient exchange (§3.7, Appendix C).
//!
//! Two wire representations, as in the paper:
//!
//! 1. **32-bit fixed point** ([`fixed`]) — workers scale by `f`, round,
//!    and send `i32`; minimal switch resources, negligible host
//!    overhead with vectorized conversion.
//! 2. **16-bit float** ([`mod@f16`]) — workers send binary16; the switch
//!    converts f16 → fixed point at ingress and back at egress,
//!    halving bandwidth demand at the cost of switch lookup tables.
//!
//! [`scaling`] implements the scaling-factor theory: Theorem 1's error
//! bound, Theorem 2's overflow-free bound, and the first-iterations
//! gradient profiler. [`signsgd`] adds the majority-vote 1-bit scheme
//! the paper cites as a natural companion to integer aggregation, and
//! [`masking`] builds Appendix D's additively-homomorphic privacy
//! sketch on the switch's wrapping-add mode.

pub mod f16;
pub mod fixed;
pub mod masking;
pub mod scaling;
pub mod signsgd;

pub use fixed::{
    dequantize, dequantize_into, quantize, quantize_into, saturating_add_into, wrapping_add_into,
};
pub use scaling::{
    aggregation_error_bound, check_no_overflow, combined_error_bound, max_safe_factor,
    max_safe_factor_f16, GradientProfiler,
};
