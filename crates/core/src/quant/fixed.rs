//! Float ↔ fixed-point conversion (§3.7, Appendix C).
//!
//! Workers multiply each gradient by a model-dependent scaling factor
//! `f`, round to the nearest integer (`ρ`), and ship `i32`s; the switch
//! adds integers; receivers divide the aggregate by `f`. The paper
//! implements this with SSE/AVX and measures negligible overhead
//! (Figure 8); here the chunk operators dispatch to the explicit
//! SIMD kernels in [`crate::simd`] (AVX2/NEON with an autovectorized
//! scalar fallback, selected once at startup), and the benches in
//! `switchml-bench` measure the same overhead question.

/// The rounding operator ρ: round half away from zero, saturating to
/// the `i32` range. Saturation (rather than wrapping) means a
/// misconfigured scaling factor degrades gracefully and detectably
/// instead of corrupting gradients silently.
#[inline]
pub fn rho(x: f64) -> i32 {
    let r = x.round();
    if r >= i32::MAX as f64 {
        i32::MAX
    } else if r <= i32::MIN as f64 {
        i32::MIN
    } else {
        r as i32
    }
}

/// Quantize one value: `ρ(f · x)`.
#[inline]
pub fn quantize_one(x: f32, f: f64) -> i32 {
    rho(x as f64 * f)
}

/// Dequantize one value: `q / f`.
#[inline]
pub fn dequantize_one(q: i32, f: f64) -> f32 {
    (q as f64 / f) as f32
}

/// Branch-free ρ. Rust's float→int `as` cast saturates and maps NaN to
/// 0, which is exactly ρ's contract (round half away from zero via
/// `round()`, saturate at the `i32` range, NaN → 0) — so the entire
/// operator lowers to `round` + a clamped conversion with no data-
/// dependent branches. This is the scalar reference the SIMD kernels
/// in [`crate::simd`] must match bit-for-bit. Bit-identical to
/// [`rho`]; the property tests prove it.
#[cfg(test)]
#[inline(always)]
fn rho_branchless(x: f64) -> i32 {
    x.round() as i32
}

/// Quantize a chunk: `dst[i] = ρ(f · src[i])`, dispatched to the
/// explicit SIMD kernel for this host (the software stand-in for the
/// paper's SSE/AVX quantization, §3.7/Fig 8). Bit-identical to
/// applying [`quantize_one`] element-wise on every backend.
pub fn quantize_chunk(src: &[f32], f: f64, dst: &mut [i32]) {
    crate::simd::quantize(src, f, dst);
}

/// Dequantize a chunk: `dst[i] = src[i] / f`, dispatched like
/// [`quantize_chunk`]. Bit-identical to applying [`dequantize_one`]
/// element-wise on every backend.
pub fn dequantize_chunk(src: &[i32], f: f64, dst: &mut [f32]) {
    crate::simd::dequantize(src, f, dst);
}

/// Quantize a slice into a reusable output buffer.
pub fn quantize(src: &[f32], f: f64, dst: &mut Vec<i32>) {
    dst.clear();
    dst.resize(src.len(), 0);
    quantize_chunk(src, f, dst);
}

/// Dequantize a slice into a reusable output buffer.
pub fn dequantize(src: &[i32], f: f64, dst: &mut Vec<f32>) {
    dst.clear();
    dst.resize(src.len(), 0.0);
    dequantize_chunk(src, f, dst);
}

/// Quantize directly into a fixed-size chunk (the per-packet hot path:
/// no allocation, k is typically 32).
pub fn quantize_into(src: &[f32], f: f64, dst: &mut [i32]) {
    quantize_chunk(src, f, dst);
}

/// Dequantize directly from a chunk into a tensor region.
pub fn dequantize_into(src: &[i32], f: f64, dst: &mut [f32]) {
    dequantize_chunk(src, f, dst);
}

/// Saturating element-wise vector addition — the switch's aggregation
/// operator. Saturation models the Tofino's saturating ALU mode, which
/// the paper relies on Assumption 2 to keep inactive.
pub fn saturating_add_into(acc: &mut [i32], v: &[i32]) {
    crate::simd::saturating_add(acc, v);
}

/// Wrapping (mod 2³²) element-wise vector addition — the Tofino ALU's
/// other mode. Required when full-range additive masks must cancel
/// exactly (Appendix D privacy; see `quant::masking`).
pub fn wrapping_add_into(acc: &mut [i32], v: &[i32]) {
    crate::simd::wrapping_add(acc, v);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_example_f100() {
        // Appendix C: Δ₁ = 1.56, Δ₂ = 4.23, f = 100 → 156 + 423 = 579
        // → 5.79 exactly.
        let f = 100.0;
        let q1 = quantize_one(1.56, f);
        let q2 = quantize_one(4.23, f);
        assert_eq!((q1, q2), (156, 423));
        let sum = q1 + q2;
        assert_eq!(sum, 579);
        assert!((dequantize_one(sum, f) - 5.79).abs() < 1e-6);
    }

    #[test]
    fn paper_worked_example_f10() {
        // With f = 10: ρ(15.6) = 16, ρ(42.3) = 42 → 58 → 5.8 (error
        // 0.01 versus the true 5.79).
        let f = 10.0;
        let q1 = quantize_one(1.56, f);
        let q2 = quantize_one(4.23, f);
        assert_eq!((q1, q2), (16, 42));
        let approx = dequantize_one(q1 + q2, f);
        assert!((approx - 5.8).abs() < 1e-6);
        assert!(
            ((approx - 5.79) as f64).abs() <= 2.0 / f + 1e-9,
            "Theorem 1 bound"
        );
    }

    #[test]
    fn rho_rounds_half_away_from_zero() {
        assert_eq!(rho(2.5), 3);
        assert_eq!(rho(-2.5), -3);
        assert_eq!(rho(2.4), 2);
        assert_eq!(rho(-2.4), -2);
    }

    #[test]
    fn rho_saturates() {
        assert_eq!(rho(1e300), i32::MAX);
        assert_eq!(rho(-1e300), i32::MIN);
        assert_eq!(quantize_one(f32::MAX, 1e9), i32::MAX);
    }

    #[test]
    fn slice_roundtrip_error_bounded() {
        let f = 1e6;
        let src: Vec<f32> = (0..1000).map(|i| (i as f32 - 500.0) * 0.001).collect();
        let mut q = Vec::new();
        quantize(&src, f, &mut q);
        let mut back = Vec::new();
        dequantize(&q, f, &mut back);
        for (a, b) in src.iter().zip(&back) {
            assert!((a - b).abs() <= (1.0 / f) as f32 + f32::EPSILON);
        }
    }

    #[test]
    fn saturating_add_saturates() {
        let mut acc = vec![i32::MAX - 1, i32::MIN + 1, 100];
        saturating_add_into(&mut acc, &[5, -5, 23]);
        assert_eq!(acc, vec![i32::MAX, i32::MIN, 123]);
    }

    #[test]
    fn chunk_paths_match_vec_paths() {
        let src: Vec<f32> = (0..32).map(|i| i as f32 * 0.37 - 5.0).collect();
        let f = 12345.0;
        let mut v = Vec::new();
        quantize(&src, f, &mut v);
        let mut chunk = [0i32; 32];
        quantize_into(&src, f, &mut chunk);
        assert_eq!(v.as_slice(), chunk.as_slice());

        let mut back_v = Vec::new();
        dequantize(&v, f, &mut back_v);
        let mut back_c = [0f32; 32];
        dequantize_into(&chunk, f, &mut back_c);
        assert_eq!(back_v.as_slice(), back_c.as_slice());
    }

    #[test]
    fn branchless_rho_edge_cases() {
        // The exact inputs where the branchy reference and a naive
        // rewrite could diverge: saturation boundaries, halfway points
        // at and around the i32 range, specials.
        let cases = [
            0.0,
            -0.0,
            0.5,
            -0.5,
            2.5,
            -2.5,
            0.49999999999999994, // largest f64 < 0.5
            i32::MAX as f64,
            i32::MAX as f64 - 0.5,
            i32::MAX as f64 + 0.49,
            i32::MAX as f64 + 0.5,
            i32::MAX as f64 + 1.0,
            i32::MIN as f64,
            i32::MIN as f64 + 0.5,
            i32::MIN as f64 - 0.49,
            i32::MIN as f64 - 0.5,
            i32::MIN as f64 - 1.0,
            1e300,
            -1e300,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            f64::MIN_POSITIVE,
            f64::MAX,
        ];
        for x in cases {
            assert_eq!(rho_branchless(x), rho(x), "x = {x:?}");
        }
    }

    mod kernel_properties {
        use super::*;
        use proptest::prelude::*;

        /// f32s drawn from the raw bit space: every pattern including
        /// NaNs, infinities, subnormals and both zeros.
        fn any_bits_f32() -> impl Strategy<Value = f32> {
            any::<u32>().prop_map(f32::from_bits)
        }

        /// Scale factors covering the paper's range and pathological
        /// extremes that drive ρ into saturation.
        fn arb_scale() -> impl Strategy<Value = f64> {
            (-60i32..60).prop_map(|e| 2f64.powi(e))
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(512))]

            /// The chunked quantize kernel is bit-identical to the
            /// scalar reference `quantize_one` (= ρ ∘ scale) for every
            /// f32 bit pattern, including NaN, ±∞ and saturating
            /// magnitudes — the tail and the unrolled body both.
            #[test]
            fn quantize_chunk_matches_scalar(
                src in prop::collection::vec(any_bits_f32(), 0..67),
                f in arb_scale(),
            ) {
                let mut got = vec![0i32; src.len()];
                quantize_chunk(&src, f, &mut got);
                for (i, (&g, &x)) in got.iter().zip(&src).enumerate() {
                    prop_assert_eq!(g, quantize_one(x, f), "elem {} x {:?}", i, x);
                }
            }

            /// Same for dequantize: chunked kernel == scalar reference.
            #[test]
            fn dequantize_chunk_matches_scalar(
                src in prop::collection::vec(any::<i32>(), 0..67),
                f in arb_scale(),
            ) {
                let mut got = vec![0f32; src.len()];
                dequantize_chunk(&src, f, &mut got);
                for (i, (&g, &q)) in got.iter().zip(&src).enumerate() {
                    prop_assert_eq!(g.to_bits(), dequantize_one(q, f).to_bits(), "elem {} q {}", i, q);
                }
            }

            /// ρ itself: the branch-free form equals the branchy
            /// reference over the full f64 bit space.
            #[test]
            fn rho_branchless_matches_reference(bits in any::<u64>()) {
                let x = f64::from_bits(bits);
                prop_assert_eq!(rho_branchless(x), rho(x));
            }

            /// Half-away-from-zero at every representable halfway point
            /// near the origin, where round-half-even would differ.
            #[test]
            fn rho_half_away_from_zero(n in -1_000_000i32..1_000_000) {
                let x = n as f64 + 0.5;
                let expect = if x >= 0.0 { n + 1 } else { n };
                prop_assert_eq!(rho_branchless(x), expect);
                prop_assert_eq!(rho(x), expect);
            }
        }
    }
}
