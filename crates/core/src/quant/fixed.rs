//! Float ↔ fixed-point conversion (§3.7, Appendix C).
//!
//! Workers multiply each gradient by a model-dependent scaling factor
//! `f`, round to the nearest integer (`ρ`), and ship `i32`s; the switch
//! adds integers; receivers divide the aggregate by `f`. The paper
//! implements this with SSE/AVX and measures negligible overhead
//! (Figure 8); here the loops are written over chunks so LLVM
//! auto-vectorizes them, and the benches in `switchml-bench` measure
//! the same overhead question.

/// The rounding operator ρ: round half away from zero, saturating to
/// the `i32` range. Saturation (rather than wrapping) means a
/// misconfigured scaling factor degrades gracefully and detectably
/// instead of corrupting gradients silently.
#[inline]
pub fn rho(x: f64) -> i32 {
    let r = x.round();
    if r >= i32::MAX as f64 {
        i32::MAX
    } else if r <= i32::MIN as f64 {
        i32::MIN
    } else {
        r as i32
    }
}

/// Quantize one value: `ρ(f · x)`.
#[inline]
pub fn quantize_one(x: f32, f: f64) -> i32 {
    rho(x as f64 * f)
}

/// Dequantize one value: `q / f`.
#[inline]
pub fn dequantize_one(q: i32, f: f64) -> f32 {
    (q as f64 / f) as f32
}

/// Quantize a slice into a reusable output buffer.
pub fn quantize(src: &[f32], f: f64, dst: &mut Vec<i32>) {
    dst.clear();
    dst.reserve(src.len());
    dst.extend(src.iter().map(|&x| quantize_one(x, f)));
}

/// Dequantize a slice into a reusable output buffer.
pub fn dequantize(src: &[i32], f: f64, dst: &mut Vec<f32>) {
    dst.clear();
    dst.reserve(src.len());
    dst.extend(src.iter().map(|&q| dequantize_one(q, f)));
}

/// Quantize directly into a fixed-size chunk (the per-packet hot path:
/// no allocation, k is typically 32).
pub fn quantize_into(src: &[f32], f: f64, dst: &mut [i32]) {
    debug_assert_eq!(src.len(), dst.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = quantize_one(s, f);
    }
}

/// Dequantize directly from a chunk into a tensor region.
pub fn dequantize_into(src: &[i32], f: f64, dst: &mut [f32]) {
    debug_assert_eq!(src.len(), dst.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = dequantize_one(s, f);
    }
}

/// Saturating element-wise vector addition — the switch's aggregation
/// operator. Saturation models the Tofino's saturating ALU mode, which
/// the paper relies on Assumption 2 to keep inactive.
pub fn saturating_add_into(acc: &mut [i32], v: &[i32]) {
    debug_assert_eq!(acc.len(), v.len());
    for (a, &b) in acc.iter_mut().zip(v) {
        *a = a.saturating_add(b);
    }
}

/// Wrapping (mod 2³²) element-wise vector addition — the Tofino ALU's
/// other mode. Required when full-range additive masks must cancel
/// exactly (Appendix D privacy; see `quant::masking`).
pub fn wrapping_add_into(acc: &mut [i32], v: &[i32]) {
    debug_assert_eq!(acc.len(), v.len());
    for (a, &b) in acc.iter_mut().zip(v) {
        *a = a.wrapping_add(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_example_f100() {
        // Appendix C: Δ₁ = 1.56, Δ₂ = 4.23, f = 100 → 156 + 423 = 579
        // → 5.79 exactly.
        let f = 100.0;
        let q1 = quantize_one(1.56, f);
        let q2 = quantize_one(4.23, f);
        assert_eq!((q1, q2), (156, 423));
        let sum = q1 + q2;
        assert_eq!(sum, 579);
        assert!((dequantize_one(sum, f) - 5.79).abs() < 1e-6);
    }

    #[test]
    fn paper_worked_example_f10() {
        // With f = 10: ρ(15.6) = 16, ρ(42.3) = 42 → 58 → 5.8 (error
        // 0.01 versus the true 5.79).
        let f = 10.0;
        let q1 = quantize_one(1.56, f);
        let q2 = quantize_one(4.23, f);
        assert_eq!((q1, q2), (16, 42));
        let approx = dequantize_one(q1 + q2, f);
        assert!((approx - 5.8).abs() < 1e-6);
        assert!(
            ((approx - 5.79) as f64).abs() <= 2.0 / f + 1e-9,
            "Theorem 1 bound"
        );
    }

    #[test]
    fn rho_rounds_half_away_from_zero() {
        assert_eq!(rho(2.5), 3);
        assert_eq!(rho(-2.5), -3);
        assert_eq!(rho(2.4), 2);
        assert_eq!(rho(-2.4), -2);
    }

    #[test]
    fn rho_saturates() {
        assert_eq!(rho(1e300), i32::MAX);
        assert_eq!(rho(-1e300), i32::MIN);
        assert_eq!(quantize_one(f32::MAX, 1e9), i32::MAX);
    }

    #[test]
    fn slice_roundtrip_error_bounded() {
        let f = 1e6;
        let src: Vec<f32> = (0..1000).map(|i| (i as f32 - 500.0) * 0.001).collect();
        let mut q = Vec::new();
        quantize(&src, f, &mut q);
        let mut back = Vec::new();
        dequantize(&q, f, &mut back);
        for (a, b) in src.iter().zip(&back) {
            assert!((a - b).abs() <= (1.0 / f) as f32 + f32::EPSILON);
        }
    }

    #[test]
    fn saturating_add_saturates() {
        let mut acc = vec![i32::MAX - 1, i32::MIN + 1, 100];
        saturating_add_into(&mut acc, &[5, -5, 23]);
        assert_eq!(acc, vec![i32::MAX, i32::MIN, 123]);
    }

    #[test]
    fn chunk_paths_match_vec_paths() {
        let src: Vec<f32> = (0..32).map(|i| i as f32 * 0.37 - 5.0).collect();
        let f = 12345.0;
        let mut v = Vec::new();
        quantize(&src, f, &mut v);
        let mut chunk = [0i32; 32];
        quantize_into(&src, f, &mut chunk);
        assert_eq!(v.as_slice(), chunk.as_slice());

        let mut back_v = Vec::new();
        dequantize(&v, f, &mut back_v);
        let mut back_c = [0f32; 32];
        dequantize_into(&chunk, f, &mut back_c);
        assert_eq!(back_v.as_slice(), back_c.as_slice());
    }
}
