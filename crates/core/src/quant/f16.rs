//! IEEE 754 binary16 ("half") conversion, implemented from scratch.
//!
//! §3.7's first numerical option has the switch convert 16-bit floats
//! to 32-bit fixed point in lookup tables. We own the conversion rather
//! than pulling in a crate so the switch pipeline model can charge it
//! to switch resources, and so the rounding behaviour (round to
//! nearest, ties to even — what x86 F16C and the Tofino tables do) is
//! explicit and testable.

/// Positive infinity bit pattern.
pub const F16_INFINITY: u16 = 0x7C00;
/// Negative infinity bit pattern.
pub const F16_NEG_INFINITY: u16 = 0xFC00;
/// Largest finite f16 value (65504.0).
pub const F16_MAX: f32 = 65504.0;
/// Smallest positive normal f16 (2^-14).
pub const F16_MIN_POSITIVE: f32 = 6.103_515_6e-5;

/// Convert an `f32` to binary16 with round-to-nearest-even.
///
/// Overflow produces ±infinity; underflow denormalizes and eventually
/// rounds to ±0. NaN payloads are canonicalized to a quiet NaN.
pub fn f32_to_f16(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let man = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Inf or NaN.
        return if man == 0 {
            sign | F16_INFINITY
        } else {
            sign | 0x7E00 // canonical quiet NaN
        };
    }

    // Unbiased exponent; f32 bias 127, f16 bias 15.
    let unbiased = exp - 127;
    let half_exp = unbiased + 15;

    if half_exp >= 0x1F {
        // Overflow to infinity.
        return sign | F16_INFINITY;
    }

    if half_exp <= 0 {
        // Subnormal (or zero) in f16.
        if half_exp < -10 {
            // Too small even for a subnormal: round to zero.
            return sign;
        }
        // Implicit leading 1 becomes explicit; shift right so the
        // remaining 10-bit mantissa is aligned for the subnormal.
        let man = man | 0x0080_0000;
        let shift = 14 - half_exp; // in [14, 24]
        let half_man = man >> shift;
        // Round to nearest even on the bits shifted out.
        let round_bit = 1u32 << (shift - 1);
        let remainder = man & ((round_bit << 1) - 1);
        let mut h = half_man as u16;
        if remainder > round_bit || (remainder == round_bit && (h & 1) == 1) {
            h += 1;
        }
        return sign | h;
    }

    // Normal case: keep top 10 mantissa bits, round to nearest even.
    let half_man = (man >> 13) as u16;
    let round_bit = man & 0x1000;
    let sticky = man & 0x0FFF;
    let mut h = sign | ((half_exp as u16) << 10) | half_man;
    if round_bit != 0 && (sticky != 0 || (h & 1) == 1) {
        h = h.wrapping_add(1); // may carry into the exponent — correct
    }
    h
}

/// Convert a binary16 bit pattern to `f32` (exact).
pub fn f16_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let man = (h & 0x03FF) as u32;

    let bits = if exp == 0 {
        if man == 0 {
            sign // ±0
        } else {
            // Subnormal: value = man × 2⁻²⁴. Normalize the mantissa;
            // after `e` left-shifts the value is 1.m × 2^(−14−e), whose
            // f32 biased exponent is 113 − e.
            let mut e = 0i32;
            let mut m = man;
            while m & 0x0400 == 0 {
                m <<= 1;
                e += 1;
            }
            m &= 0x03FF;
            sign | (((113 - e) as u32) << 23) | (m << 13)
        }
    } else if exp == 0x1F {
        if man == 0 {
            sign | 0x7F80_0000 // ±inf
        } else {
            sign | 0x7FC0_0000 | (man << 13) // NaN
        }
    } else {
        sign | ((exp + 112) << 23) | (man << 13)
    };
    f32::from_bits(bits)
}

/// Batch conversion of a slice; the hot path when workers emit f16
/// wire payloads.
pub fn f32_slice_to_f16(src: &[f32], dst: &mut Vec<u16>) {
    dst.clear();
    dst.extend(src.iter().map(|&x| f32_to_f16(x)));
}

/// Batch conversion back to f32.
pub fn f16_slice_to_f32(src: &[u16], dst: &mut Vec<f32>) {
    dst.clear();
    dst.extend(src.iter().map(|&h| f16_to_f32(h)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_roundtrip() {
        for i in -2048..=2048 {
            let x = i as f32;
            assert_eq!(f16_to_f32(f32_to_f16(x)), x, "integer {i}");
        }
    }

    #[test]
    fn known_bit_patterns() {
        assert_eq!(f32_to_f16(0.0), 0x0000);
        assert_eq!(f32_to_f16(-0.0), 0x8000);
        assert_eq!(f32_to_f16(1.0), 0x3C00);
        assert_eq!(f32_to_f16(-2.0), 0xC000);
        assert_eq!(f32_to_f16(65504.0), 0x7BFF);
        assert_eq!(f32_to_f16(0.5), 0x3800);
        assert_eq!(f32_to_f16(6.103_515_6e-5), 0x0400); // min normal
        assert_eq!(f32_to_f16(5.960_464_5e-8), 0x0001); // min subnormal
    }

    #[test]
    fn overflow_to_infinity() {
        assert_eq!(f32_to_f16(1e6), F16_INFINITY);
        assert_eq!(f32_to_f16(-1e6), F16_NEG_INFINITY);
        assert_eq!(f32_to_f16(f32::INFINITY), F16_INFINITY);
        assert!(f16_to_f32(F16_INFINITY).is_infinite());
    }

    #[test]
    fn nan_propagates() {
        let h = f32_to_f16(f32::NAN);
        assert!(f16_to_f32(h).is_nan());
    }

    #[test]
    fn underflow_to_zero() {
        assert_eq!(f32_to_f16(1e-10), 0x0000);
        assert_eq!(f32_to_f16(-1e-10), 0x8000);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1.0 + 2^-11 is exactly halfway between 1.0 (0x3C00) and the
        // next representable value (0x3C01); ties go to even (0x3C00).
        let halfway = 1.0 + 2f32.powi(-11);
        assert_eq!(f32_to_f16(halfway), 0x3C00);
        // 1.0 + 3*2^-11 is halfway between 0x3C01 and 0x3C02; ties to
        // even picks 0x3C02.
        let halfway2 = 1.0 + 3.0 * 2f32.powi(-11);
        assert_eq!(f32_to_f16(halfway2), 0x3C02);
        // Just above halfway rounds up.
        assert_eq!(f32_to_f16(1.0 + 2f32.powi(-11) + 2f32.powi(-20)), 0x3C01);
    }

    #[test]
    fn rounding_carries_into_exponent() {
        // Largest mantissa at exponent e rounds up into exponent e+1.
        let x = f16_to_f32(0x3BFF); // just below 1.0
        let y = (x + 1.0) / 2.0 + 0.0001; // near but above the midpoint
        let h = f32_to_f16(y);
        assert!(h == 0x3C00 || h == 0x3BFF);
        // Explicit carry case: 2047.5 is halfway between 2047 and 2048
        // (both representable); 2048 requires an exponent bump.
        assert_eq!(f16_to_f32(f32_to_f16(2047.9)), 2048.0);
    }

    #[test]
    fn exhaustive_f16_to_f32_to_f16_identity() {
        // Every finite f16 value survives a roundtrip through f32.
        for bits in 0..=0xFFFFu16 {
            let exp = (bits >> 10) & 0x1F;
            if exp == 0x1F {
                continue; // inf/NaN handled elsewhere
            }
            let x = f16_to_f32(bits);
            assert_eq!(f32_to_f16(x), bits, "bits {bits:#06x} (value {x})");
        }
    }

    #[test]
    fn subnormal_roundtrip() {
        for bits in 1..0x0400u16 {
            let x = f16_to_f32(bits);
            assert!(x > 0.0 && x < F16_MIN_POSITIVE);
            assert_eq!(f32_to_f16(x), bits);
        }
    }

    #[test]
    fn batch_helpers() {
        let src = vec![1.0f32, -2.5, 1000.0, 0.0];
        let mut h = Vec::new();
        f32_slice_to_f16(&src, &mut h);
        let mut back = Vec::new();
        f16_slice_to_f32(&h, &mut back);
        assert_eq!(back, src);
    }
}
