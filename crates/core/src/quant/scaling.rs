//! Scaling-factor selection and the Appendix C error/overflow theory.
//!
//! * **Theorem 1 (bounded aggregation error)** — the difference between
//!   the exact float aggregate and the dequantized integer aggregate is
//!   at most `n / f`: [`aggregation_error_bound`].
//! * **Theorem 2 (no overflow)** — if every update is bounded by `B`
//!   (Assumption 3), choosing `0 < f ≤ (2³¹ − n) / (nB)` satisfies
//!   Assumptions 1 and 2 (no per-value or aggregate overflow):
//!   [`max_safe_factor`].
//! * The paper profiles the first iterations of a job to find the
//!   gradient bound `B` and picks `f` accordingly ("it is relatively
//!   easy to pick an appropriate f by considering just the first few
//!   iterations"; Fig. 10): [`GradientProfiler`].

use crate::error::{Error, Result};
use crate::quant::f16::F16_MAX;

const TWO_31: f64 = 2_147_483_648.0; // 2^31

/// Theorem 1: upper bound on |exact − quantized| aggregate error for
/// `n` workers and scaling factor `f`.
pub fn aggregation_error_bound(n_workers: usize, f: f64) -> f64 {
    assert!(f > 0.0, "scaling factor must be positive");
    n_workers as f64 / f
}

/// Theorem 2: the largest `f` guaranteeing no overflow when each
/// worker's update entries are bounded by `B` in absolute value.
pub fn max_safe_factor(n_workers: usize, bound: f64) -> f64 {
    assert!(n_workers > 0, "need at least one worker");
    assert!(bound > 0.0, "gradient bound must be positive");
    (TWO_31 - n_workers as f64) / (n_workers as f64 * bound)
}

/// f16-pipeline analog of Theorem 2: the aggregate must stay within
/// the largest finite binary16 (65504), since the switch converts the
/// response back to f16.
pub fn max_safe_factor_f16(n_workers: usize, bound: f64) -> f64 {
    assert!(n_workers > 0 && bound > 0.0);
    (F16_MAX as f64 - n_workers as f64) / (n_workers as f64 * bound)
}

/// Check Assumption 1 (per-value) and Assumption 2 (aggregate) for a
/// given `f`, `n`, and gradient bound; error explains which failed.
pub fn check_no_overflow(n_workers: usize, bound: f64, f: f64) -> Result<()> {
    if f <= 0.0 {
        return Err(Error::InvalidConfig("scaling factor must be > 0".into()));
    }
    // The +0.5 absolute slack absorbs f64 rounding when f sits exactly
    // on the Theorem 2 boundary (the quantities are ~2e9; one ulp is
    // ~2.4e-7, so the slack is generous yet meaningless vs. any real
    // misconfiguration).
    // |ρ(f·Δ)| ≤ f·B + 1 (Assumption 1).
    if f * bound + 1.0 > TWO_31 + 0.5 {
        return Err(Error::Overflow("per-worker value exceeds 2^31"));
    }
    // |Σ ρ(f·Δᵢ)| ≤ n(f·B + 1) (Assumption 2).
    if n_workers as f64 * (f * bound + 1.0) > TWO_31 + 0.5 {
        return Err(Error::Overflow("aggregate exceeds 2^31"));
    }
    Ok(())
}

/// Worst-case model-update error after dividing by `f`, when `f` is
/// chosen at the Theorem 2 maximum: `n²B / (2³¹ − n)` (the combined
/// bound the paper derives — "in typical applications n²B ≪ 2³¹").
pub fn combined_error_bound(n_workers: usize, bound: f64) -> f64 {
    let n = n_workers as f64;
    n * n * bound / (TWO_31 - n)
}

/// Tracks the largest gradient magnitude observed so far and
/// recommends a scaling factor, mimicking the paper's profiling of the
/// first ~5000 iterations (Appendix C: max observed 29.24 for
/// GoogLeNet).
#[derive(Debug, Clone, Default)]
pub struct GradientProfiler {
    max_abs: f64,
    samples: u64,
}

impl GradientProfiler {
    pub fn new() -> Self {
        GradientProfiler::default()
    }

    /// Fold one tensor's values into the profile.
    pub fn observe(&mut self, grad: &[f32]) {
        for &g in grad {
            let a = g.abs() as f64;
            if a.is_finite() && a > self.max_abs {
                self.max_abs = a;
            }
        }
        self.samples += grad.len() as u64;
    }

    /// Largest |gradient| seen (the empirical `B`).
    pub fn max_abs(&self) -> f64 {
        self.max_abs
    }

    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Recommend `f` for `n` workers: the Theorem 2 maximum with a
    /// safety headroom factor (gradients later in training may exceed
    /// the profiled bound; headroom 2–4 is typical).
    pub fn recommend(&self, n_workers: usize, headroom: f64) -> Result<f64> {
        if self.samples == 0 || self.max_abs == 0.0 {
            return Err(Error::InvalidConfig(
                "cannot recommend a scaling factor before observing gradients".into(),
            ));
        }
        assert!(headroom >= 1.0, "headroom must be >= 1");
        Ok(max_safe_factor(n_workers, self.max_abs * headroom))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::fixed::{dequantize_one, quantize_one};

    #[test]
    fn theorem2_bound_is_safe_and_tight() {
        let n = 8;
        let b = 29.24; // GoogLeNet's observed max (Appendix C)
        let f = max_safe_factor(n, b);
        check_no_overflow(n, b, f).unwrap();
        // 1% above the bound must fail.
        assert!(check_no_overflow(n, b, f * 1.01).is_err());
    }

    #[test]
    fn googlenet_scale_matches_paper_order() {
        // Fig. 10 shows factors near 7.16e7 work for B = 29.24, n = 8:
        // (2^31 - 8) / (8 * 29.24) ≈ 9.18e6... the paper's x-axis tops
        // at 7.16e7 for the *largest* safe-ish value with n smaller.
        // Sanity: our bound is within the 1e6..1e8 decade band the
        // paper reports as convergent.
        let f = max_safe_factor(8, 29.24);
        assert!(f > 1e6 && f < 1e8, "f = {f}");
    }

    #[test]
    fn theorem1_holds_empirically() {
        // Random-ish updates, moderately large f: quantized aggregate
        // stays within n/f of the exact one.
        let n = 16;
        let f = 1e5;
        let updates: Vec<f64> = (0..n).map(|i| (i as f64 * 0.731).sin() * 3.0).collect();
        let exact: f64 = updates.iter().sum();
        let quant_sum: i64 = updates
            .iter()
            .map(|&u| quantize_one(u as f32, f) as i64)
            .sum();
        let approx = quant_sum as f64 / f;
        assert!(
            (exact - approx).abs() <= aggregation_error_bound(n, f) + 1e-6,
            "error {} > bound {}",
            (exact - approx).abs(),
            aggregation_error_bound(n, f)
        );
    }

    #[test]
    fn combined_bound_small_for_typical_jobs() {
        // n = 8, B = 30: error ≪ 1.
        assert!(combined_error_bound(8, 30.0) < 1e-5);
    }

    #[test]
    fn profiler_tracks_max_and_recommends() {
        let mut p = GradientProfiler::new();
        assert!(p.recommend(8, 2.0).is_err());
        p.observe(&[0.5, -29.24, 3.0]);
        p.observe(&[1.0, f32::NAN]); // NaN must not poison the max
        assert!((p.max_abs() - 29.24).abs() < 1e-6);
        let f = p.recommend(8, 2.0).unwrap();
        check_no_overflow(8, p.max_abs() * 2.0, f).unwrap();
    }

    #[test]
    fn f16_factor_respects_f16_range() {
        let n = 8;
        let b = 10.0;
        let f = max_safe_factor_f16(n, b);
        // Aggregate magnitude at the bound stays within f16 max.
        assert!(n as f64 * (f * b) <= F16_MAX as f64);
    }

    #[test]
    fn quantize_at_safe_factor_never_saturates() {
        let n = 8;
        let b = 29.24f32;
        let f = max_safe_factor(n, b as f64);
        for &g in &[b, -b, b / 2.0, 0.0] {
            let q = quantize_one(g, f);
            assert!(q > i32::MIN && q < i32::MAX);
            let back = dequantize_one(q, f);
            assert!((back - g).abs() <= (1.0 / f) as f32 * 1.5);
        }
    }
}
