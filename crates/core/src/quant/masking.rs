//! Additive masking for privacy-preserving aggregation (Appendix D).
//!
//! The paper observes that in-switch aggregation is "simple integer
//! summation", so additively-homomorphic schemes compose with it: "the
//! worker could encrypt all the vector elements using such \[a\]
//! cryptosystem, knowing that the aggregated model update can be
//! obtained by decrypting the data aggregated at the switches."
//!
//! Paillier-class cryptosystems are far beyond a 32-bit dataplane, but
//! the classic *pairwise additive masking* construction (the core of
//! secure-aggregation protocols) is exactly integer addition mod 2³²:
//! each ordered worker pair (i < j) derives a shared keystream; worker
//! i **adds** the pairwise mask to its quantized update and worker j
//! **subtracts** it, so every mask cancels in the switch's wrapping
//! sum while each individual packet is computationally uniform noise
//! to the switch and any on-path observer.
//!
//! Requirements this module enforces / documents:
//!
//! * The switch must use **wrapping** addition
//!   ([`crate::config::Protocol::wrapping_add`]): a saturating ALU
//!   would clip masked values and break cancellation.
//! * All `n` workers must contribute to every element (guaranteed by
//!   the protocol's completion rule), otherwise masks leak.
//! * The keystream here is a seeded xorshift PRF — a stand-in with the
//!   right *structure*; a deployment would use a proper PRF and a key
//!   agreement, which are out of scope exactly as Appendix D scopes
//!   them.

/// Deterministic 64→32-bit keystream (splitmix64 finalizer). Not
/// cryptographic; structurally a PRF keyed by (pair seed, offset).
fn keystream(seed: u64, index: u64) -> i32 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) as u32 as i32
}

/// Derives pairwise masks for one worker in an `n`-worker group.
#[derive(Debug, Clone)]
pub struct Masker {
    wid: usize,
    n: usize,
    /// Group secret from which pairwise seeds derive (deployments
    /// would run a key agreement per pair instead).
    group_seed: u64,
}

impl Masker {
    pub fn new(wid: usize, n: usize, group_seed: u64) -> Self {
        assert!(wid < n, "worker id out of range");
        Masker { wid, n, group_seed }
    }

    /// Seed for the ordered pair (i, j), i < j.
    fn pair_seed(&self, i: usize, j: usize) -> u64 {
        debug_assert!(i < j);
        self.group_seed
            .wrapping_mul(0x2545_F491_4F6C_DD1D)
            .wrapping_add(((i as u64) << 32) | j as u64)
    }

    /// Total mask this worker applies at element offset `off`:
    /// + keystream for every higher-ranked peer, − for every lower.
    pub fn mask_at(&self, off: u64) -> i32 {
        let mut m = 0i32;
        for peer in 0..self.n {
            if peer == self.wid {
                continue;
            }
            let (lo, hi) = if self.wid < peer {
                (self.wid, peer)
            } else {
                (peer, self.wid)
            };
            let ks = keystream(self.pair_seed(lo, hi), off);
            if self.wid < peer {
                m = m.wrapping_add(ks);
            } else {
                m = m.wrapping_sub(ks);
            }
        }
        m
    }

    /// Mask a quantized update in place: `v[i] += mask(off + i)`
    /// (wrapping). The result is what goes on the wire.
    pub fn mask_chunk(&self, off: u64, values: &mut [i32]) {
        for (i, v) in values.iter_mut().enumerate() {
            *v = v.wrapping_add(self.mask_at(off + i as u64));
        }
    }
}

/// Masks cancel in the full sum, so the aggregate needs no unmasking —
/// provided every worker contributed (which the switch's completion
/// rule enforces) and addition wrapped. This helper documents that as
/// an assertion point for tests.
pub fn masks_cancel(n: usize, group_seed: u64, off: u64) -> bool {
    let total = (0..n)
        .map(|w| Masker::new(w, n, group_seed).mask_at(off))
        .fold(0i32, |a, b| a.wrapping_add(b));
    total == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Protocol;
    use crate::packet::{Packet, Payload, PoolVersion};
    use crate::switch::basic::BasicSwitch;
    use crate::switch::SwitchAction;

    #[test]
    fn pairwise_masks_cancel() {
        for n in [2usize, 3, 5, 8, 17] {
            for off in [0u64, 1, 1000, u32::MAX as u64] {
                assert!(masks_cancel(n, 0xC0FFEE, off), "n={n} off={off}");
            }
        }
    }

    #[test]
    fn masked_values_look_uniform_ish() {
        // Weak sanity check: masks spread across the full i32 range.
        let m = Masker::new(0, 4, 42);
        let vals: Vec<i32> = (0..1000).map(|i| m.mask_at(i)).collect();
        let big = vals.iter().filter(|v| v.unsigned_abs() > 1 << 29).count();
        assert!(big > 400, "only {big}/1000 masks in the outer range");
        // And differ across offsets.
        assert_ne!(vals[0], vals[1]);
    }

    #[test]
    fn masked_aggregation_through_wrapping_switch() {
        let n = 3;
        let k = 8;
        let proto = Protocol {
            n_workers: n,
            k,
            pool_size: 1,
            wrapping_add: true, // REQUIRED for cancellation
            ..Protocol::default()
        };
        let mut sw = BasicSwitch::new(&proto).unwrap();
        let updates: Vec<Vec<i32>> = (0..n)
            .map(|w| (0..k).map(|i| (w * 100 + i) as i32).collect())
            .collect();
        let expected: Vec<i32> = (0..k).map(|i| updates.iter().map(|u| u[i]).sum()).collect();
        let mut result = None;
        for (w, u) in updates.iter().enumerate() {
            let mut masked = u.clone();
            Masker::new(w, n, 7777).mask_chunk(0, &mut masked);
            // The wire value is unrecognizable...
            assert_ne!(&masked, u);
            if let SwitchAction::Multicast(r) = sw
                .on_packet(Packet::update(w as u16, PoolVersion::V0, 0, 0, masked))
                .unwrap()
            {
                // Move the aggregate out of the result packet — no copy.
                result = match r.payload {
                    Payload::I32(v) => Some(v),
                    other => panic!("expected i32 payload, got {other:?}"),
                };
            }
        }
        // ...but the aggregate is exact: the masks cancelled.
        assert_eq!(result.unwrap(), expected);
    }

    #[test]
    fn saturating_switch_breaks_masking() {
        // Negative control: without wrapping_add the masked sum clips.
        let n = 3;
        let proto = Protocol {
            n_workers: n,
            k: 4,
            pool_size: 1,
            wrapping_add: false,
            ..Protocol::default()
        };
        let mut sw = BasicSwitch::new(&proto).unwrap();
        let mut broke = false;
        for w in 0..n {
            let mut masked = vec![1i32; 4];
            Masker::new(w, n, 31337).mask_chunk(0, &mut masked);
            if let SwitchAction::Multicast(r) = sw
                .on_packet(Packet::update(w as u16, PoolVersion::V0, 0, 0, masked))
                .unwrap()
            {
                broke = r.payload.as_i32().expect("i32 payload") != vec![n as i32; 4];
            }
        }
        assert!(broke, "saturation should have corrupted the masked sum");
    }

    #[test]
    fn different_group_seeds_give_different_masks() {
        let a = Masker::new(0, 2, 1).mask_at(0);
        let b = Masker::new(0, 2, 2).mask_at(0);
        assert_ne!(a, b);
    }
}
