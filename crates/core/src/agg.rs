//! Synchronous all-reduce API and an in-process protocol harness.
//!
//! [`allreduce`] is the Gloo-style entry point the ML framework calls
//! (Appendix B: "Our implementation exposes the same synchronous
//! all-reduce interface as Gloo"): every worker contributes its set of
//! gradient tensors; every worker receives the element-wise aggregate.
//!
//! The harness runs the real switch and worker state machines over a
//! virtual clock with configurable one-way latency and a caller-
//! supplied drop function, so protocol correctness under arbitrary
//! adversarial loss patterns is testable deterministically without a
//! network. Timing-accurate evaluation lives in `switchml-netsim`.

use crate::config::{NumericMode, Protocol, TimeNs};
use crate::error::{Error, Result};
use crate::packet::{Packet, WorkerId};
use crate::switch::reliable::ReliableSwitch;
use crate::switch::{SwitchAction, SwitchStats};
use crate::worker::engine::EngineStats;
use crate::worker::stream::TensorStream;
use crate::worker::Worker;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Which direction a packet is traveling (for loss injection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hop {
    /// Worker → switch.
    Up,
    /// Switch → one worker (`to` is that worker).
    Down { to: WorkerId },
}

/// Outcome of one in-process all-reduce.
#[derive(Debug, Clone)]
pub struct AllReduceOutcome {
    /// Per-worker aggregated tensors (all identical up to quantization
    /// determinism — they are byte-identical in fact, since every
    /// worker applies the same integer result).
    pub results: Vec<Vec<Vec<f32>>>,
    /// Per-worker protocol stats.
    pub worker_stats: Vec<EngineStats>,
    /// Switch counters.
    pub switch_stats: SwitchStats,
    /// Virtual time at completion.
    pub duration_ns: TimeNs,
}

/// In-process harness configuration.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// One-way worker↔switch latency on the virtual clock.
    pub latency_ns: TimeNs,
    /// Abort if the virtual clock passes this (a loss function that
    /// drops everything would otherwise spin forever).
    pub deadline_ns: TimeNs,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            latency_ns: 1_000,
            deadline_ns: 10_000_000_000, // 10 virtual seconds
        }
    }
}

#[derive(Debug)]
struct InFlight {
    time: TimeNs,
    seq: u64,
    hop: Hop,
    /// Shared so a multicast enqueues one packet n times instead of
    /// deep-copying the payload per worker (the traffic manager
    /// duplicates packets by reference on real hardware too).
    pkt: Arc<Packet>,
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Run the full protocol in process over a virtual clock.
///
/// `updates[w]` is worker `w`'s list of gradient tensors (all workers
/// must agree on shapes). `drop` is consulted for every packet copy;
/// returning `true` discards it (loss injection). Lossless runs pass
/// `|_, _| false`.
pub fn run_inprocess<F>(
    updates: &[Vec<Vec<f32>>],
    proto: &Protocol,
    harness: &HarnessConfig,
    mut drop: F,
) -> Result<AllReduceOutcome>
where
    F: FnMut(&Packet, Hop) -> bool,
{
    proto.validate()?;
    if updates.len() != proto.n_workers {
        return Err(Error::InvalidConfig(format!(
            "expected {} workers' updates, got {}",
            proto.n_workers,
            updates.len()
        )));
    }
    let shapes: Vec<usize> = updates[0].iter().map(Vec::len).collect();
    for (w, u) in updates.iter().enumerate() {
        let s: Vec<usize> = u.iter().map(Vec::len).collect();
        if s != shapes {
            return Err(Error::InvalidConfig(format!(
                "worker {w} tensor shapes differ from worker 0"
            )));
        }
    }

    let mut workers: Vec<Worker> = updates
        .iter()
        .enumerate()
        .map(|(w, tensors)| {
            let stream = match proto.mode {
                NumericMode::NativeInt32 => {
                    return Err(Error::InvalidConfig(
                        "use run_inprocess_i32 for NativeInt32 mode".into(),
                    ))
                }
                _ => TensorStream::from_f32(tensors, proto.mode, proto.scaling_factor, proto.k)?,
            };
            Worker::new(w as WorkerId, proto, stream)
        })
        .collect::<Result<_>>()?;
    let mut switch = ReliableSwitch::new(proto)?;

    let mut queue: BinaryHeap<Reverse<InFlight>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut now: TimeNs = 0;

    let push = |queue: &mut BinaryHeap<Reverse<InFlight>>,
                seq: &mut u64,
                time: TimeNs,
                hop: Hop,
                pkt: Arc<Packet>,
                drop: &mut F| {
        if !drop(&pkt, hop) {
            *seq += 1;
            queue.push(Reverse(InFlight {
                time,
                seq: *seq,
                hop,
                pkt,
            }));
        }
    };

    for w in workers.iter_mut() {
        for pkt in w.start(now)? {
            push(
                &mut queue,
                &mut seq,
                now + harness.latency_ns,
                Hop::Up,
                Arc::new(pkt),
                &mut drop,
            );
        }
    }

    loop {
        if workers.iter().all(|w| w.is_done()) {
            break;
        }
        // Next network event vs. next retransmission deadline.
        let next_pkt_time = queue.peek().map(|Reverse(f)| f.time);
        let next_deadline = workers.iter().filter_map(|w| w.next_deadline()).min();
        let step_to = match (next_pkt_time, next_deadline) {
            (Some(p), Some(d)) => p.min(d),
            (Some(p), None) => p,
            (None, Some(d)) => d,
            (None, None) => {
                return Err(Error::ProtocolViolation(
                    "deadlock: incomplete workers, no packets, no timers".into(),
                ))
            }
        };
        now = step_to;
        if now > harness.deadline_ns {
            return Err(Error::ProtocolViolation(format!(
                "virtual deadline exceeded at {now} ns"
            )));
        }

        // Fire expired retransmission timers first (ties: timers win so
        // a retransmission scheduled exactly at a delivery time does
        // not starve).
        for w in workers.iter_mut() {
            if w.next_deadline().is_some_and(|d| d <= now) {
                for pkt in w.expired(now)? {
                    push(
                        &mut queue,
                        &mut seq,
                        now + harness.latency_ns,
                        Hop::Up,
                        Arc::new(pkt),
                        &mut drop,
                    );
                }
            }
        }

        // Deliver every packet due now.
        while queue.peek().is_some_and(|Reverse(f)| f.time <= now) {
            let Reverse(flight) = queue.pop().expect("peeked");
            match flight.hop {
                // Upward packets are uniquely owned (workers never
                // multicast), so this unwrap never clones.
                Hop::Up => match switch.on_packet(Arc::unwrap_or_clone(flight.pkt))? {
                    SwitchAction::Multicast(result) => {
                        let result = Arc::new(result);
                        for w in 0..proto.n_workers as u16 {
                            push(
                                &mut queue,
                                &mut seq,
                                now + harness.latency_ns,
                                Hop::Down { to: w },
                                Arc::clone(&result),
                                &mut drop,
                            );
                        }
                    }
                    SwitchAction::Unicast(to, result) => {
                        push(
                            &mut queue,
                            &mut seq,
                            now + harness.latency_ns,
                            Hop::Down { to },
                            Arc::new(result),
                            &mut drop,
                        );
                    }
                    SwitchAction::Drop => {}
                },
                Hop::Down { to } => {
                    let w = &mut workers[to as usize];
                    for pkt in w.on_result(&flight.pkt, now)? {
                        push(
                            &mut queue,
                            &mut seq,
                            now + harness.latency_ns,
                            Hop::Up,
                            Arc::new(pkt),
                            &mut drop,
                        );
                    }
                }
            }
        }
    }

    let worker_stats = workers.iter().map(|w| w.stats()).collect();
    let switch_stats = switch.stats();
    let results = workers
        .into_iter()
        .map(|w| w.into_results(1))
        .collect::<Result<_>>()?;
    Ok(AllReduceOutcome {
        results,
        worker_stats,
        switch_stats,
        duration_ns: now,
    })
}

/// Lossless synchronous all-reduce: every worker's tensors are summed
/// element-wise; returns worker 0's view of the aggregate (all views
/// are identical).
pub fn allreduce(updates: &[Vec<Vec<f32>>], proto: &Protocol) -> Result<Vec<Vec<f32>>> {
    let outcome = run_inprocess(updates, proto, &HarnessConfig::default(), |_, _| false)?;
    Ok(outcome.results.into_iter().next().expect("n_workers >= 1"))
}

/// All-reduce returning the element-wise *mean* (divides by `n` at the
/// end hosts, as the switch cannot divide).
pub fn allreduce_mean(updates: &[Vec<Vec<f32>>], proto: &Protocol) -> Result<Vec<Vec<f32>>> {
    let mut sum = allreduce(updates, proto)?;
    let n = proto.n_workers as f32;
    for t in &mut sum {
        for x in t {
            *x /= n;
        }
    }
    Ok(sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proto(n: usize) -> Protocol {
        Protocol {
            n_workers: n,
            k: 4,
            pool_size: 4,
            rto_ns: 100_000,
            scaling_factor: 10_000.0,
            ..Protocol::default()
        }
    }

    fn make_updates(n: usize, shape: &[usize]) -> Vec<Vec<Vec<f32>>> {
        (0..n)
            .map(|w| {
                shape
                    .iter()
                    .enumerate()
                    .map(|(t, &len)| {
                        (0..len)
                            .map(|i| ((w + 1) as f32) * 0.5 + (t as f32) + (i as f32) * 0.01)
                            .collect()
                    })
                    .collect()
            })
            .collect()
    }

    fn expected_sum(updates: &[Vec<Vec<f32>>]) -> Vec<Vec<f32>> {
        let mut out: Vec<Vec<f32>> = updates[0].clone();
        for u in &updates[1..] {
            for (t, tensor) in u.iter().enumerate() {
                for (i, &x) in tensor.iter().enumerate() {
                    out[t][i] += x;
                }
            }
        }
        out
    }

    #[test]
    fn lossless_allreduce_matches_exact_sum() {
        let updates = make_updates(4, &[10, 3, 7]);
        let result = allreduce(&updates, &proto(4)).unwrap();
        let expect = expected_sum(&updates);
        for (t, tensor) in expect.iter().enumerate() {
            for (i, &x) in tensor.iter().enumerate() {
                assert!(
                    (result[t][i] - x).abs() < 4.0 / 10_000.0 + 1e-4,
                    "tensor {t} elem {i}: {} vs {x}",
                    result[t][i]
                );
            }
        }
    }

    #[test]
    fn mean_divides_by_n() {
        let updates = make_updates(2, &[4]);
        let sum = allreduce(&updates, &proto(2)).unwrap();
        let mean = allreduce_mean(&updates, &proto(2)).unwrap();
        for (s, m) in sum[0].iter().zip(&mean[0]) {
            assert!((m * 2.0 - s).abs() < 1e-6);
        }
    }

    #[test]
    fn all_workers_see_identical_results() {
        let updates = make_updates(3, &[33]);
        let outcome =
            run_inprocess(&updates, &proto(3), &HarnessConfig::default(), |_, _| false).unwrap();
        assert_eq!(outcome.results[0], outcome.results[1]);
        assert_eq!(outcome.results[1], outcome.results[2]);
        // No retransmissions in a lossless run.
        assert!(outcome.worker_stats.iter().all(|s| s.retx == 0));
        assert_eq!(outcome.switch_stats.duplicates, 0);
    }

    #[test]
    fn survives_deterministic_upward_loss() {
        let updates = make_updates(2, &[40]);
        let mut dropped = false;
        let outcome = run_inprocess(
            &updates,
            &proto(2),
            &HarnessConfig::default(),
            |pkt, hop| {
                // Drop exactly one upward packet (worker 1, slot 2, first try).
                if !dropped && hop == Hop::Up && pkt.wid == 1 && pkt.idx == 2 && !pkt.retransmission
                {
                    dropped = true;
                    return true;
                }
                false
            },
        )
        .unwrap();
        assert!(dropped);
        let expect = expected_sum(&updates);
        for (i, &x) in expect[0].iter().enumerate() {
            assert!((outcome.results[0][0][i] - x).abs() < 0.01, "elem {i}");
        }
        // Exactly the victim retransmitted.
        assert_eq!(outcome.worker_stats[1].retx, 1);
    }

    #[test]
    fn survives_deterministic_downward_loss() {
        let updates = make_updates(2, &[40]);
        let mut dropped = false;
        let outcome = run_inprocess(
            &updates,
            &proto(2),
            &HarnessConfig::default(),
            |pkt, hop| {
                if !dropped && matches!(hop, Hop::Down { to: 0 }) && pkt.idx == 1 {
                    dropped = true;
                    return true;
                }
                false
            },
        )
        .unwrap();
        assert!(dropped);
        // Worker 0 had to retransmit to refetch the result; switch
        // served it from the shadow copy.
        assert!(outcome.worker_stats[0].retx >= 1);
        assert!(outcome.switch_stats.result_retx >= 1);
        let expect = expected_sum(&updates);
        for (i, &x) in expect[0].iter().enumerate() {
            assert!((outcome.results[1][0][i] - x).abs() < 0.01);
        }
    }

    #[test]
    fn mismatched_shapes_rejected() {
        let mut updates = make_updates(2, &[8]);
        updates[1][0].pop();
        assert!(allreduce(&updates, &proto(2)).is_err());
    }

    #[test]
    fn total_loss_hits_deadline() {
        let updates = make_updates(2, &[8]);
        let harness = HarnessConfig {
            latency_ns: 1000,
            deadline_ns: 5_000_000,
        };
        let err = run_inprocess(&updates, &proto(2), &harness, |_, _| true).unwrap_err();
        assert!(matches!(err, Error::ProtocolViolation(_)));
    }

    #[test]
    fn empty_update_completes_trivially() {
        let updates = vec![vec![], vec![]];
        let result = allreduce(&updates, &proto(2)).unwrap();
        assert!(result.is_empty());
    }
}
