//! Point-to-point links with bandwidth, delay, queuing and fault
//! injection.
//!
//! Each directed link models a store-and-forward path: a packet queued
//! at time `t` begins serializing when the transmitter is free, takes
//! `wire_bytes * 8 / bandwidth` to serialize, then `propagation` to
//! arrive. A finite transmit queue drops from the tail when full, and a
//! fault injector can drop or corrupt packets uniformly at random — the
//! same knobs the paper's loss experiments (§5.5) use.

use crate::time::Nanos;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Static link parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Line rate in bits per second (e.g. `10_000_000_000` for 10 Gbps).
    pub bandwidth_bps: u64,
    /// One-way propagation delay. In the paper's rack this is sub-µs;
    /// combined with host processing it forms the end-to-end delay used
    /// for BDP-based pool sizing (§3.6).
    pub propagation: Nanos,
    /// Transmit queue capacity in bytes. Tail-drop beyond this.
    pub queue_bytes: usize,
    /// Uniform probability that a packet is silently dropped.
    pub loss_prob: f64,
    /// Uniform probability that a packet is corrupted in flight (the
    /// receiver's checksum will reject it).
    pub corrupt_prob: f64,
    /// Uniform probability that a delivered packet is duplicated: a
    /// second identical copy arrives one serialization time behind the
    /// original (the path retransmitted, the original survived).
    pub dup_prob: f64,
    /// Uniform probability that a delivered packet is held back by a
    /// random extra delay in `(0, reorder_spread]`, letting packets
    /// queued behind it overtake (multi-path or NIC-queue reordering).
    pub reorder_prob: f64,
    /// Maximum extra delay a reordered packet can pick up.
    pub reorder_spread: Nanos,
    /// Fixed extra delay added to every delivery on this link — a
    /// straggling host or a chronically slow path.
    pub straggle_extra: Nanos,
}

impl LinkSpec {
    /// A clean (lossless) link at the given rate and delay with a deep
    /// queue. Queue depth defaults to one bandwidth-delay product or
    /// 256 KiB, whichever is larger.
    pub fn clean(bandwidth_bps: u64, propagation: Nanos) -> Self {
        let bdp = (bandwidth_bps as u128 * propagation.0 as u128 / 8 / 1_000_000_000) as usize;
        LinkSpec {
            bandwidth_bps,
            propagation,
            queue_bytes: bdp.max(256 * 1024),
            loss_prob: 0.0,
            corrupt_prob: 0.0,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            reorder_spread: Nanos::ZERO,
            straggle_extra: Nanos::ZERO,
        }
    }

    /// Same link with a uniform loss probability applied.
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        self.loss_prob = p;
        self
    }

    /// Same link with a uniform corruption probability applied.
    pub fn with_corruption(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "corrupt probability out of range");
        self.corrupt_prob = p;
        self
    }

    /// Same link with a uniform duplication probability applied.
    pub fn with_duplication(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "dup probability out of range");
        self.dup_prob = p;
        self
    }

    /// Same link with probabilistic reordering: each delivered packet
    /// is delayed by up to `spread` extra with probability `p`.
    pub fn with_reordering(mut self, p: f64, spread: Nanos) -> Self {
        assert!((0.0..=1.0).contains(&p), "reorder probability out of range");
        self.reorder_prob = p;
        self.reorder_spread = spread;
        self
    }

    /// Same link with a fixed straggle delay added to every delivery.
    pub fn with_straggle(mut self, extra: Nanos) -> Self {
        self.straggle_extra = extra;
        self
    }

    /// Same link with an explicit queue capacity.
    pub fn with_queue_bytes(mut self, q: usize) -> Self {
        self.queue_bytes = q;
        self
    }

    /// The bandwidth-delay product of this link in bytes, the quantity
    /// the paper tunes the aggregator pool size against (§3.6).
    pub fn bdp_bytes(&self, extra_delay: Nanos) -> usize {
        let delay = self.propagation + extra_delay;
        (self.bandwidth_bps as u128 * delay.0 as u128 / 8 / 1_000_000_000) as usize
    }
}

/// What the fault/queue admission decided for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Deliver at the contained time (possibly corrupted). When the
    /// fault injector duplicated the packet, `dup_arrival` carries the
    /// arrival time of the trailing copy.
    Deliver {
        arrival: Nanos,
        corrupted: bool,
        dup_arrival: Option<Nanos>,
    },
    /// Dropped by random loss.
    Lost,
    /// Dropped by queue overflow.
    QueueFull,
}

/// Dynamic state of one directed link.
#[derive(Debug)]
pub struct Link {
    pub spec: LinkSpec,
    /// Time at which the transmitter finishes everything queued so
    /// far, in **picoseconds**. Nanosecond granularity would shave up
    /// to 1 ns per packet (e.g. a 180-byte packet at 100 Gbps is
    /// 14.4 ns) and let long runs beat line rate by whole percents.
    tx_free_ps: u128,
    /// Counters for diagnostics.
    pub sent: u64,
    pub lost: u64,
    pub corrupted: u64,
    pub duplicated: u64,
    pub reordered: u64,
    pub queue_drops: u64,
    pub bytes_sent: u64,
}

impl Link {
    pub fn new(spec: LinkSpec) -> Self {
        Link {
            spec,
            tx_free_ps: 0,
            sent: 0,
            lost: 0,
            corrupted: 0,
            duplicated: 0,
            reordered: 0,
            queue_drops: 0,
            bytes_sent: 0,
        }
    }

    /// Admit a packet of `wire_bytes` at time `now`. Advances the
    /// transmitter clock and applies queue admission and fault
    /// injection. Randomly-lost packets still consume transmit time
    /// (they were serialized onto the wire; loss happens "in flight"),
    /// whereas queue-full drops do not.
    pub fn admit(&mut self, now: Nanos, wire_bytes: usize, rng: &mut SmallRng) -> Admission {
        let now_ps = now.0 as u128 * 1000;
        // Backlog currently waiting on the transmitter, in time units.
        let backlog_ps = self.tx_free_ps.saturating_sub(now_ps);
        let backlog_bytes =
            (self.spec.bandwidth_bps as u128 * backlog_ps / 8 / 1_000_000_000_000) as usize;
        if backlog_bytes + wire_bytes > self.spec.queue_bytes {
            self.queue_drops += 1;
            return Admission::QueueFull;
        }

        let start_ps = self.tx_free_ps.max(now_ps);
        let done_ps = start_ps + Self::tx_time_ps(wire_bytes, self.spec.bandwidth_bps);
        self.tx_free_ps = done_ps;
        self.sent += 1;
        self.bytes_sent += wire_bytes as u64;

        if self.spec.loss_prob > 0.0 && rng.gen_bool(self.spec.loss_prob) {
            self.lost += 1;
            return Admission::Lost;
        }
        let corrupted = self.spec.corrupt_prob > 0.0 && rng.gen_bool(self.spec.corrupt_prob);
        if corrupted {
            self.corrupted += 1;
        }
        let mut arrival =
            Nanos(done_ps.div_ceil(1000) as u64) + self.spec.propagation + self.spec.straggle_extra;
        if self.spec.reorder_prob > 0.0
            && self.spec.reorder_spread > Nanos::ZERO
            && rng.gen_bool(self.spec.reorder_prob)
        {
            self.reordered += 1;
            arrival += Nanos(rng.gen_range(1..=self.spec.reorder_spread.0));
        }
        let dup_arrival = if self.spec.dup_prob > 0.0 && rng.gen_bool(self.spec.dup_prob) {
            self.duplicated += 1;
            // The copy trails by one serialization time — it re-rode
            // the same wire, it did not teleport.
            let tx_ns = ((done_ps - start_ps).div_ceil(1000) as u64).max(1);
            Some(arrival + Nanos(tx_ns))
        } else {
            None
        };
        Admission::Deliver {
            arrival,
            corrupted,
            dup_arrival,
        }
    }

    /// Serialization time in picoseconds.
    fn tx_time_ps(bytes: usize, bps: u64) -> u128 {
        bytes as u128 * 8 * 1_000_000_000_000 / bps as u128
    }

    /// Earliest time a packet queued right now would arrive, without
    /// mutating state. Useful for analytic assertions in tests.
    pub fn peek_arrival(&self, now: Nanos, wire_bytes: usize) -> Nanos {
        let start_ps = self.tx_free_ps.max(now.0 as u128 * 1000);
        let done_ps = start_ps + Self::tx_time_ps(wire_bytes, self.spec.bandwidth_bps);
        Nanos(done_ps.div_ceil(1000) as u64) + self.spec.propagation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn serialization_and_propagation() {
        let spec = LinkSpec::clean(10_000_000_000, Nanos::from_micros(1));
        let mut link = Link::new(spec);
        // 1250 bytes at 10G = 1us tx + 1us prop = 2us arrival.
        match link.admit(Nanos::ZERO, 1250, &mut rng()) {
            Admission::Deliver {
                arrival, corrupted, ..
            } => {
                assert_eq!(arrival, Nanos::from_micros(2));
                assert!(!corrupted);
            }
            other => panic!("unexpected admission {other:?}"),
        }
    }

    #[test]
    fn back_to_back_packets_serialize() {
        let spec = LinkSpec::clean(10_000_000_000, Nanos::ZERO);
        let mut link = Link::new(spec);
        let mut r = rng();
        let a1 = link.admit(Nanos::ZERO, 1250, &mut r);
        let a2 = link.admit(Nanos::ZERO, 1250, &mut r);
        let t1 = match a1 {
            Admission::Deliver { arrival, .. } => arrival,
            _ => panic!(),
        };
        let t2 = match a2 {
            Admission::Deliver { arrival, .. } => arrival,
            _ => panic!(),
        };
        // Second packet waits for the first to finish serializing.
        assert_eq!(t2 - t1, Nanos::from_micros(1));
    }

    #[test]
    fn queue_tail_drop() {
        let spec = LinkSpec::clean(1_000_000_000, Nanos::ZERO).with_queue_bytes(3000);
        let mut link = Link::new(spec);
        let mut r = rng();
        // Each packet is 1500B; queue holds 2. The third back-to-back
        // packet (queued while ~3000B of backlog exist) is dropped.
        assert!(matches!(
            link.admit(Nanos::ZERO, 1500, &mut r),
            Admission::Deliver { .. }
        ));
        assert!(matches!(
            link.admit(Nanos::ZERO, 1500, &mut r),
            Admission::Deliver { .. }
        ));
        assert_eq!(link.admit(Nanos::ZERO, 1500, &mut r), Admission::QueueFull);
        assert_eq!(link.queue_drops, 1);
    }

    #[test]
    fn loss_rate_statistics() {
        let spec = LinkSpec::clean(100_000_000_000, Nanos::ZERO).with_loss(0.1);
        let mut link = Link::new(spec);
        let mut r = rng();
        let mut lost = 0;
        for i in 0..10_000 {
            // Space packets out so the queue never fills.
            let t = Nanos::from_micros(i);
            if matches!(link.admit(t, 100, &mut r), Admission::Lost) {
                lost += 1;
            }
        }
        let rate = lost as f64 / 10_000.0;
        assert!((0.08..=0.12).contains(&rate), "observed loss {rate}");
    }

    #[test]
    fn corruption_flag_set() {
        let spec = LinkSpec::clean(100_000_000_000, Nanos::ZERO).with_corruption(1.0);
        let mut link = Link::new(spec);
        match link.admit(Nanos::ZERO, 100, &mut rng()) {
            Admission::Deliver { corrupted, .. } => assert!(corrupted),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn duplication_yields_trailing_copy() {
        let spec = LinkSpec::clean(10_000_000_000, Nanos::from_micros(1)).with_duplication(1.0);
        let mut link = Link::new(spec);
        match link.admit(Nanos::ZERO, 1250, &mut rng()) {
            Admission::Deliver {
                arrival,
                dup_arrival: Some(dup),
                ..
            } => {
                // The copy trails by one serialization time (1us for
                // 1250B at 10G), never arrives with the original.
                assert_eq!(arrival, Nanos::from_micros(2));
                assert_eq!(dup, Nanos::from_micros(3));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(link.duplicated, 1);
    }

    #[test]
    fn reordering_adds_bounded_delay() {
        let spread = Nanos::from_micros(10);
        let spec =
            LinkSpec::clean(10_000_000_000, Nanos::from_micros(1)).with_reordering(1.0, spread);
        let mut link = Link::new(spec);
        let base = link.peek_arrival(Nanos::ZERO, 100);
        match link.admit(Nanos::ZERO, 100, &mut rng()) {
            Admission::Deliver { arrival, .. } => {
                assert!(arrival > base, "reordered packet must be delayed");
                assert!(arrival <= base + spread, "delay bounded by spread");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(link.reordered, 1);
    }

    #[test]
    fn straggle_shifts_every_delivery() {
        let extra = Nanos::from_micros(50);
        let clean = LinkSpec::clean(10_000_000_000, Nanos::from_micros(1));
        let mut fast = Link::new(clean);
        let mut slow = Link::new(clean.with_straggle(extra));
        let a = match fast.admit(Nanos::ZERO, 1250, &mut rng()) {
            Admission::Deliver { arrival, .. } => arrival,
            other => panic!("unexpected {other:?}"),
        };
        let b = match slow.admit(Nanos::ZERO, 1250, &mut rng()) {
            Admission::Deliver { arrival, .. } => arrival,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(b - a, extra);
    }

    #[test]
    fn bdp_matches_paper_scale() {
        // ~10 Gbps with 50us end-to-end delay: BDP = 62.5 KB; at
        // b = 180 bytes that needs ceil(BDP/b) = 348 slots; the paper
        // rounds to a power of two (512 at 100 Gbps, 128 at 10 Gbps
        // for their measured RTTs).
        let spec = LinkSpec::clean(10_000_000_000, Nanos::ZERO);
        assert_eq!(spec.bdp_bytes(Nanos::from_micros(50)), 62_500);
    }
}
