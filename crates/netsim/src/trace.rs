//! Simulation tracing.
//!
//! A [`TraceSink`] observes network-level events as they happen. The
//! built-in [`RateTrace`] buckets per-node send counts over fixed
//! windows — exactly the "packets sent per 10 ms" series of the
//! paper's Figure 6.

use crate::node::NodeId;
use crate::time::Nanos;

/// Reasons a packet never reached its destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Random in-flight loss (fault injection).
    Loss,
    /// Transmit queue overflow (tail drop).
    QueueFull,
    /// No route from the sender to the destination.
    NoRoute,
}

/// A network-level trace event.
#[derive(Debug, Clone, Copy)]
pub enum TraceEvent {
    /// A node handed a packet to its NIC.
    Sent {
        time: Nanos,
        src: NodeId,
        dst: NodeId,
        wire_bytes: usize,
    },
    /// A packet reached its final destination.
    Delivered {
        time: Nanos,
        src: NodeId,
        dst: NodeId,
        wire_bytes: usize,
    },
    /// A packet died in the network.
    Dropped {
        time: Nanos,
        src: NodeId,
        dst: NodeId,
        reason: DropReason,
    },
}

/// Observer of trace events.
pub trait TraceSink {
    fn record(&mut self, ev: &TraceEvent);
}

/// A sink that discards everything (the default).
#[derive(Debug, Default)]
pub struct NullTrace;

impl TraceSink for NullTrace {
    fn record(&mut self, _ev: &TraceEvent) {}
}

/// Buckets packets sent by one node into fixed time windows
/// (Figure 6's "packets per 10 ms" timeline).
#[derive(Debug)]
pub struct RateTrace {
    /// Node whose sends are counted.
    pub node: NodeId,
    /// Bucket width.
    pub bucket: Nanos,
    /// `counts[i]` = packets sent in `[i*bucket, (i+1)*bucket)`.
    pub counts: Vec<u64>,
}

impl RateTrace {
    pub fn new(node: NodeId, bucket: Nanos) -> Self {
        RateTrace {
            node,
            bucket,
            counts: Vec::new(),
        }
    }

    /// The time series as (bucket start, count) pairs.
    pub fn series(&self) -> impl Iterator<Item = (Nanos, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (Nanos(self.bucket.0 * i as u64), c))
    }
}

impl TraceSink for RateTrace {
    fn record(&mut self, ev: &TraceEvent) {
        if let TraceEvent::Sent { time, src, .. } = ev {
            if *src == self.node {
                let idx = (time.0 / self.bucket.0) as usize;
                if idx >= self.counts.len() {
                    self.counts.resize(idx + 1, 0);
                }
                self.counts[idx] += 1;
            }
        }
    }
}

/// A bounded in-memory event log, renderable as a tcpdump-style text
/// trace — the moral equivalent of the `--pcap` option smoltcp-style
/// stacks ship for debugging. Stops recording (and counts the
/// overflow) past `capacity`, so it is safe to attach to big runs.
#[derive(Debug)]
pub struct EventLog {
    capacity: usize,
    pub events: Vec<TraceEvent>,
    /// Events that arrived after the log filled.
    pub overflow: u64,
}

impl EventLog {
    pub fn new(capacity: usize) -> Self {
        EventLog {
            capacity,
            events: Vec::with_capacity(capacity.min(4096)),
            overflow: 0,
        }
    }

    /// Render one event as a trace line.
    pub fn format_event(ev: &TraceEvent) -> String {
        match ev {
            TraceEvent::Sent {
                time,
                src,
                dst,
                wire_bytes,
            } => format!("{time:>14} SEND {src} -> {dst} ({wire_bytes}B)"),
            TraceEvent::Delivered {
                time,
                src,
                dst,
                wire_bytes,
            } => format!("{time:>14} RECV {src} -> {dst} ({wire_bytes}B)"),
            TraceEvent::Dropped {
                time,
                src,
                dst,
                reason,
            } => format!("{time:>14} DROP {src} -> {dst} ({reason:?})"),
        }
    }

    /// The whole log as a text trace.
    pub fn render(&self) -> String {
        let mut out: String = self
            .events
            .iter()
            .map(|e| Self::format_event(e) + "\n")
            .collect();
        if self.overflow > 0 {
            out.push_str(&format!("... {} more events (log full)\n", self.overflow));
        }
        out
    }
}

impl TraceSink for EventLog {
    fn record(&mut self, ev: &TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(*ev);
        } else {
            self.overflow += 1;
        }
    }
}

/// Counts global sends/deliveries/drops; cheap enough to always enable.
#[derive(Debug, Default, Clone)]
pub struct CountingTrace {
    pub sent: u64,
    pub delivered: u64,
    pub dropped_loss: u64,
    pub dropped_queue: u64,
    pub bytes_delivered: u64,
    /// Packets the fault injector duplicated in flight (filled from
    /// per-link counters when the run ends).
    pub duplicated: u64,
    /// Packets the fault injector delayed out of order (per-link).
    pub reordered: u64,
    /// Deliveries that crossed a straggling link (per-link).
    pub straggled: u64,
}

impl CountingTrace {
    /// Total injected network faults of every kind — the scenario
    /// layer's "did the fault plan actually bite" oracle.
    pub fn injected_faults(&self) -> u64 {
        self.dropped_loss + self.duplicated + self.reordered + self.straggled
    }
}

impl TraceSink for CountingTrace {
    fn record(&mut self, ev: &TraceEvent) {
        match ev {
            TraceEvent::Sent { .. } => self.sent += 1,
            TraceEvent::Delivered { wire_bytes, .. } => {
                self.delivered += 1;
                self.bytes_delivered += *wire_bytes as u64;
            }
            TraceEvent::Dropped { reason, .. } => match reason {
                DropReason::Loss => self.dropped_loss += 1,
                DropReason::QueueFull => self.dropped_queue += 1,
                DropReason::NoRoute => {}
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_trace_buckets() {
        let mut rt = RateTrace::new(NodeId(3), Nanos::from_millis(10));
        for t in [0u64, 1, 9, 12, 25] {
            rt.record(&TraceEvent::Sent {
                time: Nanos::from_millis(t),
                src: NodeId(3),
                dst: NodeId(0),
                wire_bytes: 180,
            });
        }
        // A send from another node is ignored.
        rt.record(&TraceEvent::Sent {
            time: Nanos::ZERO,
            src: NodeId(1),
            dst: NodeId(0),
            wire_bytes: 180,
        });
        assert_eq!(rt.counts, vec![3, 1, 1]);
        let series: Vec<_> = rt.series().collect();
        assert_eq!(series[1], (Nanos::from_millis(10), 1));
    }

    #[test]
    fn event_log_records_and_overflows() {
        let mut log = EventLog::new(2);
        for i in 0..5u64 {
            log.record(&TraceEvent::Sent {
                time: Nanos(i),
                src: NodeId(0),
                dst: NodeId(1),
                wire_bytes: 180,
            });
        }
        assert_eq!(log.events.len(), 2);
        assert_eq!(log.overflow, 3);
        let text = log.render();
        assert!(text.contains("SEND n0 -> n1 (180B)"));
        assert!(text.contains("3 more events"));
    }

    #[test]
    fn event_log_formats_all_kinds() {
        let drop = TraceEvent::Dropped {
            time: Nanos::from_micros(5),
            src: NodeId(2),
            dst: NodeId(3),
            reason: DropReason::Loss,
        };
        assert!(EventLog::format_event(&drop).contains("DROP n2 -> n3 (Loss)"));
        let recv = TraceEvent::Delivered {
            time: Nanos(1),
            src: NodeId(0),
            dst: NodeId(1),
            wire_bytes: 64,
        };
        assert!(EventLog::format_event(&recv).contains("RECV"));
    }

    #[test]
    fn counting_trace_tallies() {
        let mut ct = CountingTrace::default();
        ct.record(&TraceEvent::Sent {
            time: Nanos::ZERO,
            src: NodeId(0),
            dst: NodeId(1),
            wire_bytes: 180,
        });
        ct.record(&TraceEvent::Delivered {
            time: Nanos(1),
            src: NodeId(0),
            dst: NodeId(1),
            wire_bytes: 180,
        });
        ct.record(&TraceEvent::Dropped {
            time: Nanos(2),
            src: NodeId(0),
            dst: NodeId(1),
            reason: DropReason::Loss,
        });
        assert_eq!((ct.sent, ct.delivered, ct.dropped_loss), (1, 1, 1));
        assert_eq!(ct.bytes_delivered, 180);
    }
}
