//! Simulated time.
//!
//! The simulator uses a 64-bit nanosecond clock. All protocol timing
//! (serialization delay, propagation delay, retransmission timeouts) is
//! expressed in [`Nanos`]. A `u64` nanosecond clock wraps after ~584
//! years of simulated time, which is far beyond any experiment here.

use core::fmt;
use serde::{Deserialize, Serialize};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Nanos(pub u64);

impl Nanos {
    /// The simulation epoch.
    pub const ZERO: Nanos = Nanos(0);

    /// Largest representable instant; used as a sentinel for "never".
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Construct from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Construct from whole microseconds.
    pub fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Construct from a floating-point number of seconds (rounds to ns).
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative duration");
        Nanos((s * 1e9).round() as u64)
    }

    /// This instant as floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This instant as floating-point milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: Nanos) -> Self {
        Nanos(self.0.saturating_add(d.0))
    }

    /// Saturating difference between two instants.
    pub fn saturating_sub(self, other: Nanos) -> Self {
        Nanos(self.0.saturating_sub(other.0))
    }

    /// Checked difference; `None` if `other` is later than `self`.
    pub fn checked_sub(self, other: Nanos) -> Option<Nanos> {
        self.0.checked_sub(other.0).map(Nanos)
    }
}

impl core::ops::Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl core::ops::AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl core::ops::Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl core::ops::Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// Time needed to serialize `bytes` onto a link of `bits_per_sec`.
///
/// This is the transmission (store-and-forward) delay component; the
/// propagation delay is a property of the [`crate::link::Link`].
pub fn tx_time(bytes: usize, bits_per_sec: u64) -> Nanos {
    debug_assert!(bits_per_sec > 0);
    // bytes * 8 / bps seconds => *1e9 ns. Use u128 to avoid overflow for
    // large transfers on slow links.
    let ns = (bytes as u128 * 8 * 1_000_000_000) / bits_per_sec as u128;
    Nanos(ns as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Nanos::from_secs(1), Nanos(1_000_000_000));
        assert_eq!(Nanos::from_millis(3), Nanos(3_000_000));
        assert_eq!(Nanos::from_micros(7), Nanos(7_000));
        assert_eq!(Nanos::from_secs_f64(0.5), Nanos(500_000_000));
    }

    #[test]
    fn arithmetic() {
        let a = Nanos(100);
        let b = Nanos(40);
        assert_eq!(a + b, Nanos(140));
        assert_eq!(a - b, Nanos(60));
        assert_eq!(a * 3, Nanos(300));
        assert_eq!(b.saturating_sub(a), Nanos(0));
        assert_eq!(a.checked_sub(b), Some(Nanos(60)));
        assert_eq!(b.checked_sub(a), None);
    }

    #[test]
    fn tx_time_10gbps() {
        // 1250 bytes at 10 Gbps = 1 microsecond.
        assert_eq!(tx_time(1250, 10_000_000_000), Nanos::from_micros(1));
        // 180-byte SwitchML packet at 10 Gbps = 144 ns.
        assert_eq!(tx_time(180, 10_000_000_000), Nanos(144));
    }

    #[test]
    fn tx_time_no_overflow_large() {
        // 1.5 GB at 1 Gbps = 12 seconds; must not overflow.
        let t = tx_time(1_500_000_000, 1_000_000_000);
        assert_eq!(t, Nanos::from_secs(12));
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", Nanos(5)), "5ns");
        assert_eq!(format!("{}", Nanos::from_micros(5)), "5.000us");
        assert_eq!(format!("{}", Nanos::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", Nanos::from_secs(5)), "5.000s");
    }
}
