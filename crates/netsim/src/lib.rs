//! # switchml-netsim
//!
//! A deterministic discrete-event network simulator: the substrate on
//! which the SwitchML protocol and the baseline collectives are
//! evaluated in lieu of the paper's physical testbed (Tofino switch,
//! DPDK hosts, 10/100 Gbps links).
//!
//! Design points:
//!
//! * **Sans-IO nodes** — protocol endpoints implement [`node::Node`]
//!   and only ever react to packets and timers; the same state machines
//!   also run over real threads/UDP in `switchml-transport`.
//! * **Deterministic** — one seeded RNG drives all fault injection;
//!   simultaneous events fire in insertion order. Same seed, same run.
//! * **Faithful link model** — per-link serialization (store and
//!   forward), propagation delay, finite tail-drop queues, uniform
//!   random loss and corruption (the paper's §5.5 experiment knobs).
//! * **Topologies** — the paper's single-rack star, plus the §6
//!   multi-rack hierarchy.
//!
//! ```
//! use switchml_netsim::prelude::*;
//!
//! let mut topo = Topology::new();
//! let (_switch, workers) = topo.star(8, LinkSpec::clean(10_000_000_000, Nanos::from_micros(1)));
//! assert_eq!(workers.len(), 8);
//! ```

pub mod event;
pub mod link;
pub mod node;
pub mod packet;
pub mod pcap;
pub mod sim;
pub mod time;
pub mod topology;
pub mod trace;

/// Convenient glob-import of the common types.
pub mod prelude {
    pub use crate::link::LinkSpec;
    pub use crate::node::{Node, NodeCtx, NodeId, TimerToken};
    pub use crate::packet::SimPacket;
    pub use crate::pcap::PcapCapture;
    pub use crate::sim::{SimConfig, SimReport, Simulator};
    pub use crate::time::{tx_time, Nanos};
    pub use crate::topology::Topology;
    pub use crate::trace::{CountingTrace, EventLog, RateTrace, TraceSink};
}
