//! The simulator driver.
//!
//! [`Simulator`] owns a [`Topology`], the registered [`Node`]s and the
//! event queue, and runs the discrete-event loop to completion. Runs
//! are deterministic: the only randomness (fault injection) comes from
//! a seeded RNG, and same-time events fire in insertion order.

use crate::event::{EventKind, EventQueue};
use crate::link::Admission;
use crate::node::{Node, NodeCtx, NodeId, TimerToken};
use crate::packet::SimPacket;
use crate::time::Nanos;
use crate::topology::Topology;
use crate::trace::{CountingTrace, DropReason, NullTrace, TraceEvent, TraceSink};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Global simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Seed for fault injection; same seed → same run.
    pub seed: u64,
    /// Per-hop processing latency at an intermediate (forwarding) node.
    /// A Tofino-class switch forwards in well under a microsecond.
    pub forward_latency: Nanos,
    /// Safety valve: abort after this many events.
    pub max_events: u64,
    /// Optional wall-clock (simulated) deadline.
    pub deadline: Option<Nanos>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xD15EA5E,
            forward_latency: Nanos(400),
            max_events: 2_000_000_000,
            deadline: None,
        }
    }
}

/// Result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// All participating nodes completed.
    pub finished: bool,
    /// Time of the last processed event.
    pub end_time: Nanos,
    /// Per-node completion time (None for infrastructure nodes or
    /// nodes that never completed).
    pub completion_times: Vec<Option<Nanos>>,
    /// Network-level packet counters.
    pub counters: CountingTrace,
    /// Number of events processed.
    pub events: u64,
}

impl SimReport {
    /// Latest completion among nodes that completed — the natural
    /// "job finished" time (e.g., tensor aggregation time measured at
    /// the slowest worker).
    pub fn last_completion(&self) -> Option<Nanos> {
        self.completion_times.iter().flatten().max().copied()
    }
}

/// Buffered side effects of one node callback; applied after the
/// callback returns to keep borrows simple and ordering explicit.
struct CtxBuf {
    now: Nanos,
    self_id: NodeId,
    sends: Vec<SimPacket>,
    timers: Vec<(Nanos, TimerToken)>,
    completed: bool,
}

impl NodeCtx for CtxBuf {
    fn now(&self) -> Nanos {
        self.now
    }
    fn self_id(&self) -> NodeId {
        self.self_id
    }
    fn send(&mut self, pkt: SimPacket) {
        self.sends.push(pkt);
    }
    fn set_timer(&mut self, delay: Nanos, token: TimerToken) {
        self.timers.push((self.now + delay, token));
    }
    fn complete(&mut self) {
        self.completed = true;
    }
}

/// The discrete-event simulator.
pub struct Simulator {
    topo: Topology,
    nodes: Vec<Option<Box<dyn Node>>>,
    queue: EventQueue,
    now: Nanos,
    rng: SmallRng,
    cfg: SimConfig,
    participating: Vec<bool>,
    completion_times: Vec<Option<Nanos>>,
    outstanding: usize,
}

impl Simulator {
    /// Create a simulator over a topology. Every node id reserved in
    /// the topology must be bound with [`Simulator::bind`] before
    /// [`Simulator::run`].
    pub fn new(topo: Topology, cfg: SimConfig) -> Self {
        let n = topo.node_count();
        Simulator {
            topo,
            nodes: (0..n).map(|_| None).collect(),
            queue: EventQueue::new(),
            now: Nanos::ZERO,
            rng: SmallRng::seed_from_u64(cfg.seed),
            cfg,
            participating: vec![false; n],
            completion_times: vec![None; n],
            outstanding: 0,
        }
    }

    /// Attach the protocol implementation for a node id.
    pub fn bind(&mut self, id: NodeId, node: Box<dyn Node>) {
        assert!(self.nodes[id.0].is_none(), "node {id} bound twice");
        if node.participates_in_completion() {
            self.participating[id.0] = true;
            self.outstanding += 1;
        }
        self.nodes[id.0] = Some(node);
    }

    /// Access a bound node after (or before) a run, e.g. to read
    /// results out of a worker. Panics if the id was never bound.
    pub fn node(&self, id: NodeId) -> &dyn Node {
        self.nodes[id.0].as_deref().expect("node not bound")
    }

    /// Mutable access to a bound node.
    pub fn node_mut(&mut self, id: NodeId) -> &mut (dyn Node + '_) {
        self.nodes[id.0].as_deref_mut().expect("node not bound")
    }

    /// Take a node out of the simulator (consumes the binding).
    pub fn unbind(&mut self, id: NodeId) -> Box<dyn Node> {
        self.nodes[id.0].take().expect("node not bound")
    }

    /// The topology (for inspecting link counters after a run).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Current simulated time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Run to completion with no external trace sink.
    pub fn run(&mut self) -> SimReport {
        let mut null = NullTrace;
        self.run_traced(&mut null)
    }

    /// Run to completion, mirroring every network event into `sink`.
    pub fn run_traced(&mut self, sink: &mut dyn TraceSink) -> SimReport {
        let mut counters = CountingTrace::default();
        for i in 0..self.nodes.len() {
            assert!(
                self.nodes[i].is_some(),
                "node n{i} reserved in topology but never bound"
            );
        }

        // Start phase: every node gets on_start at t=0.
        for i in 0..self.nodes.len() {
            self.dispatch(NodeId(i), sink, &mut counters, |node, ctx| {
                node.on_start(ctx)
            });
        }

        let mut events = 0u64;
        while self.outstanding > 0 {
            let Some((time, kind)) = self.queue.pop() else {
                break;
            };
            debug_assert!(time >= self.now, "time went backwards");
            self.now = time;
            if let Some(deadline) = self.cfg.deadline {
                if self.now > deadline {
                    break;
                }
            }
            events += 1;
            if events > self.cfg.max_events {
                break;
            }
            match kind {
                EventKind::Arrival { at, pkt } => {
                    if at == pkt.dst {
                        let ev = TraceEvent::Delivered {
                            time: self.now,
                            src: pkt.src,
                            dst: pkt.dst,
                            wire_bytes: pkt.wire_bytes(),
                        };
                        sink.record(&ev);
                        counters.record(&ev);
                        self.dispatch(at, sink, &mut counters, |node, ctx| {
                            node.on_packet(pkt, ctx)
                        });
                    } else {
                        // Intermediate hop: forward after switch latency.
                        self.forward(at, pkt, sink, &mut counters);
                    }
                }
                EventKind::Timer { node, token } => {
                    self.dispatch(node, sink, &mut counters, |n, ctx| n.on_timer(token, ctx));
                }
            }
        }

        // Fold per-link fault counters into the global tally: these
        // faults fire inside link admission, where no trace event is
        // emitted.
        for (_, edge) in self.topo.edges() {
            counters.duplicated += edge.link.duplicated;
            counters.reordered += edge.link.reordered;
            if edge.link.spec.straggle_extra > Nanos::ZERO {
                counters.straggled += edge.link.sent;
            }
        }

        SimReport {
            finished: self.outstanding == 0,
            end_time: self.now,
            completion_times: self.completion_times.clone(),
            counters,
            events,
        }
    }

    /// Run a node callback and apply its buffered effects.
    fn dispatch<F>(
        &mut self,
        id: NodeId,
        sink: &mut dyn TraceSink,
        counters: &mut CountingTrace,
        f: F,
    ) where
        F: FnOnce(&mut dyn Node, &mut dyn NodeCtx),
    {
        let mut node = self.nodes[id.0].take().expect("node not bound");
        let mut ctx = CtxBuf {
            now: self.now,
            self_id: id,
            sends: Vec::new(),
            timers: Vec::new(),
            completed: false,
        };
        f(node.as_mut(), &mut ctx);
        self.nodes[id.0] = Some(node);

        for (when, token) in ctx.timers {
            self.queue.push(when, EventKind::Timer { node: id, token });
        }
        for pkt in ctx.sends {
            let ev = TraceEvent::Sent {
                time: self.now,
                src: pkt.src,
                dst: pkt.dst,
                wire_bytes: pkt.wire_bytes(),
            };
            sink.record(&ev);
            counters.record(&ev);
            self.transmit(id, pkt, Nanos::ZERO, sink, counters);
        }
        if ctx.completed && self.participating[id.0] && self.completion_times[id.0].is_none() {
            self.completion_times[id.0] = Some(self.now);
            self.outstanding -= 1;
        }
    }

    /// Forward a packet at an intermediate hop.
    fn forward(
        &mut self,
        at: NodeId,
        pkt: SimPacket,
        sink: &mut dyn TraceSink,
        counters: &mut CountingTrace,
    ) {
        let latency = self.cfg.forward_latency;
        self.transmit(at, pkt, latency, sink, counters);
    }

    /// Push a packet onto the link from `from` toward its next hop,
    /// applying admission (queueing + fault injection), and schedule
    /// the resulting arrival.
    fn transmit(
        &mut self,
        from: NodeId,
        mut pkt: SimPacket,
        extra_latency: Nanos,
        sink: &mut dyn TraceSink,
        counters: &mut CountingTrace,
    ) {
        if pkt.dst == from {
            // Loopback: a colocated process sending to itself skips the
            // NIC; charge one forwarding latency and deliver.
            let when = self.now + extra_latency + self.cfg.forward_latency;
            self.queue.push(when, EventKind::Arrival { at: from, pkt });
            return;
        }
        let Some(hop) = self.topo.next_hop(from, pkt.dst) else {
            let ev = TraceEvent::Dropped {
                time: self.now,
                src: pkt.src,
                dst: pkt.dst,
                reason: DropReason::NoRoute,
            };
            sink.record(&ev);
            counters.record(&ev);
            return;
        };
        let link_id = self
            .topo
            .link_between(from, hop)
            .expect("route exists but link missing");
        let wire = pkt.wire_bytes();
        let admit_time = self.now + extra_latency;
        let edge = self.topo.edge_mut(link_id);
        match edge.link.admit(admit_time, wire, &mut self.rng) {
            Admission::Deliver {
                arrival,
                corrupted,
                dup_arrival,
            } => {
                pkt.corrupted |= corrupted;
                if let Some(dup_at) = dup_arrival {
                    self.queue.push(
                        dup_at,
                        EventKind::Arrival {
                            at: hop,
                            pkt: pkt.clone(),
                        },
                    );
                }
                self.queue
                    .push(arrival, EventKind::Arrival { at: hop, pkt });
            }
            Admission::Lost => {
                let ev = TraceEvent::Dropped {
                    time: admit_time,
                    src: pkt.src,
                    dst: pkt.dst,
                    reason: DropReason::Loss,
                };
                sink.record(&ev);
                counters.record(&ev);
            }
            Admission::QueueFull => {
                let ev = TraceEvent::Dropped {
                    time: admit_time,
                    src: pkt.src,
                    dst: pkt.dst,
                    reason: DropReason::QueueFull,
                };
                sink.record(&ev);
                counters.record(&ev);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;
    use bytes::Bytes;
    use std::any::Any;

    /// Sends `count` packets to a peer, then completes when it has
    /// received `expect` packets back.
    struct Echoer {
        peer: NodeId,
        send_count: usize,
        expect: usize,
        received: usize,
        echo: bool,
    }

    impl Node for Echoer {
        fn on_start(&mut self, ctx: &mut dyn NodeCtx) {
            for _ in 0..self.send_count {
                ctx.send(SimPacket::new(
                    ctx.self_id(),
                    self.peer,
                    Bytes::from_static(b"ping"),
                    50,
                ));
            }
            if self.expect == 0 {
                ctx.complete();
            }
        }
        fn on_packet(&mut self, pkt: SimPacket, ctx: &mut dyn NodeCtx) {
            self.received += 1;
            if self.echo {
                ctx.send(SimPacket::new(ctx.self_id(), pkt.src, pkt.payload, 50));
            }
            if self.received >= self.expect && self.expect > 0 {
                ctx.complete();
            }
        }
        fn on_timer(&mut self, _token: TimerToken, _ctx: &mut dyn NodeCtx) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn any_node(_: &dyn Any) {}

    #[test]
    fn ping_pong_rtt() {
        let mut topo = Topology::new();
        let a = topo.add_node();
        let b = topo.add_node();
        // 10 Gbps, 1us propagation each way.
        topo.add_duplex_link(a, b, LinkSpec::clean(10_000_000_000, Nanos::from_micros(1)));
        let cfg = SimConfig {
            forward_latency: Nanos::ZERO,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(topo, cfg);
        sim.bind(
            a,
            Box::new(Echoer {
                peer: b,
                send_count: 1,
                expect: 1,
                received: 0,
                echo: false,
            }),
        );
        sim.bind(
            b,
            Box::new(Echoer {
                peer: a,
                send_count: 0,
                expect: 1,
                received: 0,
                echo: true,
            }),
        );
        let report = sim.run();
        assert!(report.finished);
        // One way: 54B at 10G = 43.2ns -> 43ns tx + 1000ns prop. Echo
        // adds the same again. Completion of `a` is at ~2086ns.
        let t = report.completion_times[a.0].unwrap();
        assert!(t >= Nanos(2080) && t <= Nanos(2095), "t = {t}");
        any_node(&());
    }

    #[test]
    fn forwarding_through_intermediate_hop() {
        let mut topo = Topology::new();
        let (sw, ws) = topo.star(2, LinkSpec::clean(10_000_000_000, Nanos::from_micros(1)));
        let cfg = SimConfig {
            forward_latency: Nanos(500),
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(topo, cfg);
        sim.bind(
            ws[0],
            Box::new(Echoer {
                peer: ws[1],
                send_count: 1,
                expect: 0,
                received: 0,
                echo: false,
            }),
        );
        sim.bind(
            ws[1],
            Box::new(Echoer {
                peer: ws[0],
                send_count: 0,
                expect: 1,
                received: 0,
                echo: false,
            }),
        );
        // The switch is a pure forwarder here: bind a no-op node.
        struct Noop;
        impl Node for Noop {
            fn on_start(&mut self, _: &mut dyn NodeCtx) {}
            fn on_packet(&mut self, _: SimPacket, _: &mut dyn NodeCtx) {}
            fn on_timer(&mut self, _: TimerToken, _: &mut dyn NodeCtx) {}
            fn participates_in_completion(&self) -> bool {
                false
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        sim.bind(sw, Box::new(Noop));
        let report = sim.run();
        assert!(report.finished);
        // Two hops + 500ns forwarding latency: >= 2.5us.
        let t = report.completion_times[ws[1].0].unwrap();
        assert!(t >= Nanos(2500), "t = {t}");
        assert_eq!(report.counters.delivered, 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut topo = Topology::new();
            let a = topo.add_node();
            let b = topo.add_node();
            topo.add_duplex_link(
                a,
                b,
                LinkSpec::clean(10_000_000_000, Nanos::from_micros(1)).with_loss(0.3),
            );
            let mut sim = Simulator::new(topo, SimConfig::default());
            sim.bind(
                a,
                Box::new(Echoer {
                    peer: b,
                    send_count: 100,
                    expect: 0,
                    received: 0,
                    echo: false,
                }),
            );
            sim.bind(
                b,
                Box::new(Echoer {
                    peer: a,
                    send_count: 0,
                    expect: 0,
                    received: 0,
                    echo: false,
                }),
            );
            let r = sim.run();
            (r.counters.delivered, r.counters.dropped_loss, r.end_time)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn duplication_delivers_both_copies() {
        let mut topo = Topology::new();
        let a = topo.add_node();
        let b = topo.add_node();
        topo.add_duplex_link(
            a,
            b,
            LinkSpec::clean(10_000_000_000, Nanos::from_micros(1)).with_duplication(1.0),
        );
        let mut sim = Simulator::new(topo, SimConfig::default());
        sim.bind(
            a,
            Box::new(Echoer {
                peer: b,
                send_count: 10,
                expect: 0,
                received: 0,
                echo: false,
            }),
        );
        sim.bind(
            b,
            Box::new(Echoer {
                peer: a,
                send_count: 0,
                expect: 20, // every packet arrives twice
                received: 0,
                echo: false,
            }),
        );
        let report = sim.run();
        assert!(report.finished);
        assert_eq!(report.counters.delivered, 20);
        assert_eq!(report.counters.duplicated, 10);
        assert!(report.counters.injected_faults() >= 10);
    }

    #[test]
    fn reordering_can_invert_arrival_order() {
        // Two spaced packets on a heavily reordering link: with a
        // spread far beyond the inter-send gap, some seed inverts them.
        let run = |seed: u64| {
            let spec = LinkSpec::clean(10_000_000_000, Nanos::ZERO)
                .with_reordering(0.5, Nanos::from_micros(100));
            let mut link = crate::link::Link::new(spec);
            let mut rng = SmallRng::seed_from_u64(seed);
            let a = match link.admit(Nanos::ZERO, 100, &mut rng) {
                Admission::Deliver { arrival, .. } => arrival,
                _ => unreachable!(),
            };
            let b = match link.admit(Nanos::from_micros(1), 100, &mut rng) {
                Admission::Deliver { arrival, .. } => arrival,
                _ => unreachable!(),
            };
            a > b
        };
        assert!(
            (0..64).any(run),
            "no seed inverted two packets despite 50% reorder at 100us spread"
        );
    }

    #[test]
    fn deadline_stops_run() {
        let mut topo = Topology::new();
        let a = topo.add_node();
        let b = topo.add_node();
        topo.add_duplex_link(a, b, LinkSpec::clean(1_000, Nanos::from_secs(10)));
        let cfg = SimConfig {
            deadline: Some(Nanos::from_secs(1)),
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(topo, cfg);
        sim.bind(
            a,
            Box::new(Echoer {
                peer: b,
                send_count: 1,
                expect: 1, // will never be satisfied
                received: 0,
                echo: false,
            }),
        );
        sim.bind(
            b,
            Box::new(Echoer {
                peer: a,
                send_count: 0,
                expect: 1,
                received: 0,
                echo: false,
            }),
        );
        let report = sim.run();
        assert!(!report.finished);
    }
}
