//! libpcap-format trace capture.
//!
//! Writes simulated packets as a standards-compliant pcap byte stream
//! (magic 0xA1B2C3D4, LINKTYPE_ETHERNET), wrapping each payload in a
//! synthesized Ethernet + IPv4 + UDP encapsulation whose addresses
//! encode the simulated node ids — so a run can be opened in
//! Wireshark/tcpdump for inspection, the workflow the smoltcp-style
//! stacks' `--pcap` option provides. Timestamps carry the simulated
//! clock (µs precision, the classic pcap unit, with the sub-µs
//! remainder dropped).

use crate::node::NodeId;
use crate::time::Nanos;
use crate::trace::{TraceEvent, TraceSink};

/// Global pcap file header (24 bytes), little-endian, LINKTYPE_ETHERNET.
const PCAP_MAGIC: u32 = 0xA1B2_C3D4;
const PCAP_VERSION: (u16, u16) = (2, 4);
const LINKTYPE_ETHERNET: u32 = 1;
/// UDP port that marks SwitchML traffic in captures.
pub const CAPTURE_UDP_PORT: u16 = 48_879; // 0xBEEF

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Synthesized MAC for a node: locally-administered prefix 02:53:4D
/// ("SM") + the node id.
fn mac_of(n: NodeId) -> [u8; 6] {
    let id = n.0 as u32;
    [
        0x02,
        0x53,
        0x4D,
        (id >> 16) as u8,
        (id >> 8) as u8,
        id as u8,
    ]
}

/// Synthesized IPv4 for a node: 10.83.x.y from the node id.
fn ip_of(n: NodeId) -> [u8; 4] {
    let id = n.0 as u32;
    [10, 83, (id >> 8) as u8, id as u8]
}

/// IPv4 header checksum (RFC 1071).
fn ipv4_checksum(header: &[u8]) -> u16 {
    let mut sum = 0u32;
    for pair in header.chunks(2) {
        let word = u16::from_be_bytes([pair[0], *pair.get(1).unwrap_or(&0)]);
        sum += word as u32;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Captures delivered (and optionally sent) packets into an in-memory
/// pcap byte stream. Write the result to a `.pcap` file and open it in
/// Wireshark.
#[derive(Debug)]
pub struct PcapCapture {
    buf: Vec<u8>,
    /// Capture Sent events too (duplicates Delivered at the other
    /// endpoint; off by default).
    pub capture_sends: bool,
    /// Packets recorded.
    pub frames: u64,
    /// Stop growing past this many bytes (safety for huge runs).
    pub max_bytes: usize,
}

impl PcapCapture {
    pub fn new() -> Self {
        let mut buf = Vec::with_capacity(4096);
        put_u32(&mut buf, PCAP_MAGIC);
        put_u16(&mut buf, PCAP_VERSION.0);
        put_u16(&mut buf, PCAP_VERSION.1);
        put_u32(&mut buf, 0); // thiszone
        put_u32(&mut buf, 0); // sigfigs
        put_u32(&mut buf, 65535); // snaplen
        put_u32(&mut buf, LINKTYPE_ETHERNET);
        PcapCapture {
            buf,
            capture_sends: false,
            frames: 0,
            max_bytes: 64 * 1024 * 1024,
        }
    }

    /// The pcap byte stream so far (header + records).
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consume into the full byte stream.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one synthesized frame. `wire_bytes` is used as the
    /// original ("wire") length; the captured body is a synthesized
    /// Ethernet/IP/UDP header trio plus a `wire_bytes`-sized dummy
    /// payload truncated to 64 bytes (protocol payloads are not routed
    /// through trace events, and the interesting fields — who, when,
    /// how big — are all in the headers).
    fn record(&mut self, time: Nanos, src: NodeId, dst: NodeId, wire_bytes: usize) {
        if self.buf.len() >= self.max_bytes {
            return;
        }
        let payload_len = wire_bytes.saturating_sub(14 + 20 + 8); // minus headers
        let captured_payload = payload_len.min(64);

        // Ethernet (14B).
        let mut frame = Vec::with_capacity(42 + captured_payload);
        frame.extend_from_slice(&mac_of(dst));
        frame.extend_from_slice(&mac_of(src));
        frame.extend_from_slice(&0x0800u16.to_be_bytes()); // IPv4

        // IPv4 (20B).
        let ip_total = 20 + 8 + payload_len;
        let mut ip = Vec::with_capacity(20);
        ip.push(0x45); // v4, IHL 5
        ip.push(0);
        ip.extend_from_slice(&(ip_total as u16).to_be_bytes());
        ip.extend_from_slice(&(self.frames as u16).to_be_bytes()); // id
        ip.extend_from_slice(&[0, 0]); // flags/frag
        ip.push(64); // TTL
        ip.push(17); // UDP
        ip.extend_from_slice(&[0, 0]); // checksum placeholder
        ip.extend_from_slice(&ip_of(src));
        ip.extend_from_slice(&ip_of(dst));
        let csum = ipv4_checksum(&ip);
        ip[10..12].copy_from_slice(&csum.to_be_bytes());
        frame.extend_from_slice(&ip);

        // UDP (8B), checksum 0 (legal for IPv4).
        frame.extend_from_slice(&CAPTURE_UDP_PORT.to_be_bytes());
        frame.extend_from_slice(&CAPTURE_UDP_PORT.to_be_bytes());
        frame.extend_from_slice(&((8 + payload_len) as u16).to_be_bytes());
        frame.extend_from_slice(&[0, 0]);
        frame.resize(frame.len() + captured_payload, 0xA5);

        // Record header: ts_sec, ts_usec, incl_len, orig_len.
        let secs = (time.0 / 1_000_000_000) as u32;
        let usecs = ((time.0 % 1_000_000_000) / 1_000) as u32;
        put_u32(&mut self.buf, secs);
        put_u32(&mut self.buf, usecs);
        put_u32(&mut self.buf, frame.len() as u32);
        put_u32(&mut self.buf, (14 + ip_total) as u32);
        self.buf.extend_from_slice(&frame);
        self.frames += 1;
    }
}

impl Default for PcapCapture {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink for PcapCapture {
    fn record(&mut self, ev: &TraceEvent) {
        match *ev {
            TraceEvent::Delivered {
                time,
                src,
                dst,
                wire_bytes,
            } => self.record(time, src, dst, wire_bytes),
            TraceEvent::Sent {
                time,
                src,
                dst,
                wire_bytes,
            } if self.capture_sends => self.record(time, src, dst, wire_bytes),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliver(cap: &mut PcapCapture, t: u64, s: usize, d: usize, bytes: usize) {
        TraceSink::record(
            cap,
            &TraceEvent::Delivered {
                time: Nanos(t),
                src: NodeId(s),
                dst: NodeId(d),
                wire_bytes: bytes,
            },
        );
    }

    #[test]
    fn header_is_valid_pcap() {
        let cap = PcapCapture::new();
        let b = cap.bytes();
        assert_eq!(b.len(), 24);
        assert_eq!(u32::from_le_bytes([b[0], b[1], b[2], b[3]]), 0xA1B2C3D4);
        assert_eq!(u16::from_le_bytes([b[4], b[5]]), 2);
        assert_eq!(u32::from_le_bytes([b[20], b[21], b[22], b[23]]), 1);
    }

    #[test]
    fn records_are_well_formed() {
        let mut cap = PcapCapture::new();
        deliver(&mut cap, 1_500_000, 1, 2, 180);
        assert_eq!(cap.frames, 1);
        let b = cap.bytes();
        let rec = &b[24..];
        let ts_sec = u32::from_le_bytes([rec[0], rec[1], rec[2], rec[3]]);
        let ts_usec = u32::from_le_bytes([rec[4], rec[5], rec[6], rec[7]]);
        assert_eq!((ts_sec, ts_usec), (0, 1500));
        let incl = u32::from_le_bytes([rec[8], rec[9], rec[10], rec[11]]) as usize;
        let orig = u32::from_le_bytes([rec[12], rec[13], rec[14], rec[15]]) as usize;
        assert_eq!(orig, 180);
        let frame = &rec[16..16 + incl];
        // Ethertype IPv4 at offset 12.
        assert_eq!(&frame[12..14], &[0x08, 0x00]);
        // IPv4 header checksum verifies (checksum over header == 0).
        let ip = &frame[14..34];
        assert_eq!(ipv4_checksum(ip), 0);
        // Protocol UDP, src ip encodes node 1.
        assert_eq!(ip[9], 17);
        assert_eq!(&ip[12..16], &[10, 83, 0, 1]);
        assert_eq!(&ip[16..20], &[10, 83, 0, 2]);
        // UDP ports.
        let udp = &frame[34..42];
        assert_eq!(u16::from_be_bytes([udp[0], udp[1]]), CAPTURE_UDP_PORT);
    }

    #[test]
    fn sends_only_captured_when_enabled() {
        let mut cap = PcapCapture::new();
        TraceSink::record(
            &mut cap,
            &TraceEvent::Sent {
                time: Nanos(0),
                src: NodeId(0),
                dst: NodeId(1),
                wire_bytes: 100,
            },
        );
        assert_eq!(cap.frames, 0);
        cap.capture_sends = true;
        TraceSink::record(
            &mut cap,
            &TraceEvent::Sent {
                time: Nanos(0),
                src: NodeId(0),
                dst: NodeId(1),
                wire_bytes: 100,
            },
        );
        assert_eq!(cap.frames, 1);
    }

    #[test]
    fn size_cap_respected() {
        let mut cap = PcapCapture::new();
        cap.max_bytes = 200;
        for i in 0..100 {
            deliver(&mut cap, i, 0, 1, 180);
        }
        assert!(cap.bytes().len() < 400);
        assert!(cap.frames < 100);
    }

    #[test]
    fn large_payload_truncated_but_wire_length_kept() {
        let mut cap = PcapCapture::new();
        deliver(&mut cap, 0, 0, 1, 1516);
        let rec = &cap.bytes()[24..];
        let incl = u32::from_le_bytes([rec[8], rec[9], rec[10], rec[11]]) as usize;
        let orig = u32::from_le_bytes([rec[12], rec[13], rec[14], rec[15]]) as usize;
        assert_eq!(orig, 1516);
        assert_eq!(incl, 14 + 20 + 8 + 64); // headers + truncated payload
    }
}
