//! Network topologies.
//!
//! A [`Topology`] is a set of nodes joined by directed links plus a
//! static routing table (shortest path, computed once). The paper's
//! testbed is a star: every worker has a full-duplex link to one
//! switch. §6 sketches a multi-rack hierarchy, which
//! [`Topology::hierarchy`] helps construct.

use crate::link::{Link, LinkSpec};
use crate::node::NodeId;

/// Index of a directed link in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub usize);

/// A directed adjacency: `from --link--> to`.
#[derive(Debug)]
pub struct Edge {
    pub from: NodeId,
    pub to: NodeId,
    pub link: Link,
}

/// The static structure of the simulated network.
#[derive(Debug, Default)]
pub struct Topology {
    node_count: usize,
    edges: Vec<Edge>,
    /// adjacency[from] = list of (neighbor, link id)
    adjacency: Vec<Vec<(NodeId, LinkId)>>,
    /// next_hop[from][dst] = neighbor on the shortest path, or None.
    next_hop: Vec<Vec<Option<NodeId>>>,
    routes_dirty: bool,
}

impl Topology {
    pub fn new() -> Self {
        Topology::default()
    }

    /// Reserve an id for a new node. Nodes themselves are registered
    /// with the simulator; the topology only tracks connectivity.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.node_count);
        self.node_count += 1;
        self.adjacency.push(Vec::new());
        self.routes_dirty = true;
        id
    }

    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Add a full-duplex link: two directed links with the same spec.
    pub fn add_duplex_link(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) {
        self.add_simplex_link(a, b, spec);
        self.add_simplex_link(b, a, spec);
    }

    /// Add one directed link.
    pub fn add_simplex_link(&mut self, from: NodeId, to: NodeId, spec: LinkSpec) {
        assert!(from.0 < self.node_count && to.0 < self.node_count);
        assert_ne!(from, to, "self-links are not allowed");
        let id = LinkId(self.edges.len());
        self.edges.push(Edge {
            from,
            to,
            link: Link::new(spec),
        });
        self.adjacency[from.0].push((to, id));
        self.routes_dirty = true;
    }

    /// The directed link from `from` to adjacent `to`, if any.
    pub fn link_between(&self, from: NodeId, to: NodeId) -> Option<LinkId> {
        self.adjacency[from.0]
            .iter()
            .find(|(n, _)| *n == to)
            .map(|(_, l)| *l)
    }

    pub fn edge(&self, id: LinkId) -> &Edge {
        &self.edges[id.0]
    }

    pub fn edge_mut(&mut self, id: LinkId) -> &mut Edge {
        &mut self.edges[id.0]
    }

    pub fn edges(&self) -> impl Iterator<Item = (LinkId, &Edge)> {
        self.edges.iter().enumerate().map(|(i, e)| (LinkId(i), e))
    }

    /// Recompute all-pairs next-hop routes (BFS per source; the graphs
    /// here are tiny). Called lazily by [`Topology::next_hop`].
    fn recompute_routes(&mut self) {
        let n = self.node_count;
        let mut table = vec![vec![None; n]; n];
        for src in 0..n {
            // BFS from src.
            let mut dist = vec![usize::MAX; n];
            let mut first_hop: Vec<Option<NodeId>> = vec![None; n];
            let mut queue = std::collections::VecDeque::new();
            dist[src] = 0;
            queue.push_back(src);
            while let Some(u) = queue.pop_front() {
                for &(v, _) in &self.adjacency[u] {
                    if dist[v.0] == usize::MAX {
                        dist[v.0] = dist[u] + 1;
                        first_hop[v.0] = if u == src { Some(v) } else { first_hop[u] };
                        queue.push_back(v.0);
                    }
                }
            }
            table[src] = first_hop;
        }
        self.next_hop = table;
        self.routes_dirty = false;
    }

    /// Next hop from `from` toward `dst`, or `None` if unreachable.
    pub fn next_hop(&mut self, from: NodeId, dst: NodeId) -> Option<NodeId> {
        if self.routes_dirty {
            self.recompute_routes();
        }
        self.next_hop[from.0][dst.0]
    }

    /// Build a star: returns (switch_id, worker_ids). `n` workers each
    /// get a duplex link to the switch with `spec`.
    pub fn star(&mut self, n: usize, spec: LinkSpec) -> (NodeId, Vec<NodeId>) {
        let switch = self.add_node();
        let workers: Vec<NodeId> = (0..n)
            .map(|_| {
                let w = self.add_node();
                self.add_duplex_link(w, switch, spec);
                w
            })
            .collect();
        (switch, workers)
    }

    /// Build a two-level hierarchy (§6): `racks` rack switches, each
    /// with `per_rack` workers, all rack switches connected to one root
    /// switch by `uplink` links. Returns (root, rack_switches, workers
    /// grouped by rack).
    pub fn hierarchy(
        &mut self,
        racks: usize,
        per_rack: usize,
        worker_spec: LinkSpec,
        uplink: LinkSpec,
    ) -> (NodeId, Vec<NodeId>, Vec<Vec<NodeId>>) {
        let root = self.add_node();
        let mut rack_ids = Vec::with_capacity(racks);
        let mut worker_ids = Vec::with_capacity(racks);
        for _ in 0..racks {
            let rack = self.add_node();
            self.add_duplex_link(rack, root, uplink);
            let ws: Vec<NodeId> = (0..per_rack)
                .map(|_| {
                    let w = self.add_node();
                    self.add_duplex_link(w, rack, worker_spec);
                    w
                })
                .collect();
            rack_ids.push(rack);
            worker_ids.push(ws);
        }
        (root, rack_ids, worker_ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Nanos;

    fn spec() -> LinkSpec {
        LinkSpec::clean(10_000_000_000, Nanos::from_micros(1))
    }

    #[test]
    fn star_routes_through_switch() {
        let mut t = Topology::new();
        let (sw, ws) = t.star(4, spec());
        assert_eq!(ws.len(), 4);
        // Worker to worker routes via the switch.
        assert_eq!(t.next_hop(ws[0], ws[3]), Some(sw));
        assert_eq!(t.next_hop(sw, ws[3]), Some(ws[3]));
        // Worker to switch is direct.
        assert_eq!(t.next_hop(ws[1], sw), Some(sw));
    }

    #[test]
    fn duplex_links_exist_both_ways() {
        let mut t = Topology::new();
        let (sw, ws) = t.star(2, spec());
        assert!(t.link_between(ws[0], sw).is_some());
        assert!(t.link_between(sw, ws[0]).is_some());
        assert!(t.link_between(ws[0], ws[1]).is_none());
    }

    #[test]
    fn hierarchy_routes() {
        let mut t = Topology::new();
        let (root, racks, workers) = t.hierarchy(2, 3, spec(), spec());
        assert_eq!(racks.len(), 2);
        assert_eq!(workers[0].len(), 3);
        // Cross-rack worker traffic: up to rack, root, down.
        let w_a = workers[0][0];
        let w_b = workers[1][2];
        assert_eq!(t.next_hop(w_a, w_b), Some(racks[0]));
        assert_eq!(t.next_hop(racks[0], w_b), Some(root));
        assert_eq!(t.next_hop(root, w_b), Some(racks[1]));
    }

    #[test]
    fn unreachable_is_none() {
        let mut t = Topology::new();
        let a = t.add_node();
        let b = t.add_node();
        assert_eq!(t.next_hop(a, b), None);
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_panics() {
        let mut t = Topology::new();
        let a = t.add_node();
        t.add_simplex_link(a, a, spec());
    }
}
