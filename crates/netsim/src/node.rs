//! Node abstraction.
//!
//! A node is a protocol endpoint (a worker, a switch, a parameter
//! server, …) attached to the simulated network. Nodes are sans-IO
//! state machines: the simulator calls into them with packets and timer
//! expirations, and they respond by queuing sends and arming timers on
//! the provided [`NodeCtx`].

use crate::packet::SimPacket;
use crate::time::Nanos;

/// Identifies a node in the simulation. Assigned densely from 0 by the
/// topology builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl core::fmt::Display for NodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An opaque timer token, echoed back to the node on expiry so it can
/// tell its timers apart (e.g., one retransmission timer per slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerToken(pub u64);

/// The interface a node uses to act on the world. Implemented by the
/// simulator; actions take effect when the callback returns.
pub trait NodeCtx {
    /// Current simulated time.
    fn now(&self) -> Nanos;
    /// This node's own id.
    fn self_id(&self) -> NodeId;
    /// Queue a packet for transmission on the link toward `pkt.dst`.
    /// Sends from the same callback are serialized in order onto the
    /// node's uplink (NIC model).
    fn send(&mut self, pkt: SimPacket);
    /// Arm a one-shot timer `delay` from now. Timers are not cancelable
    /// (the node is expected to ignore stale tokens), mirroring how
    /// lightweight timer wheels are used in high-rate packet loops.
    fn set_timer(&mut self, delay: Nanos, token: TimerToken);
    /// Signal that this node has finished its work. The simulation
    /// stops when every node that declared itself "completing" is done.
    fn complete(&mut self);
}

/// A protocol endpoint attached to the simulated network.
pub trait Node: std::any::Any {
    /// Called once at simulation start (time 0) so the node can send
    /// its initial window.
    fn on_start(&mut self, ctx: &mut dyn NodeCtx);
    /// A packet addressed to this node has been delivered.
    fn on_packet(&mut self, pkt: SimPacket, ctx: &mut dyn NodeCtx);
    /// A timer armed via [`NodeCtx::set_timer`] has fired.
    fn on_timer(&mut self, token: TimerToken, ctx: &mut dyn NodeCtx);
    /// Whether the simulation should wait for this node to call
    /// [`NodeCtx::complete`] before declaring the run finished.
    /// Infrastructure nodes (switches, parameter servers) return false.
    fn participates_in_completion(&self) -> bool {
        true
    }
    /// Downcast support, so results and counters can be read back out
    /// of the simulator after a run.
    fn as_any(&self) -> &dyn std::any::Any;
    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// A pure forwarding element (e.g. a non-programmable ToR switch on
/// the path of host-based collectives). Packets transiting it are
/// forwarded by the simulator core; it never terminates traffic.
#[derive(Debug, Default)]
pub struct Forwarder;

impl Node for Forwarder {
    fn on_start(&mut self, _ctx: &mut dyn NodeCtx) {}
    fn on_packet(&mut self, _pkt: SimPacket, _ctx: &mut dyn NodeCtx) {
        // A packet addressed *to* a forwarder is a configuration error;
        // silently ignoring would mask bugs, but panicking in a node
        // kills legitimate broadcast-style tests — so just drop it.
    }
    fn on_timer(&mut self, _token: TimerToken, _ctx: &mut dyn NodeCtx) {}
    fn participates_in_completion(&self) -> bool {
        false
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
