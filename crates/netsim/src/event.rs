//! The discrete-event queue.
//!
//! Events are totally ordered by `(time, sequence)`: ties in simulated
//! time break by insertion order, which makes every run with the same
//! seed bit-for-bit reproducible.

use crate::node::{NodeId, TimerToken};
use crate::packet::SimPacket;
use crate::time::Nanos;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug)]
pub enum EventKind {
    /// A packet arrives at `at` (either its final destination or an
    /// intermediate hop that must forward it).
    Arrival { at: NodeId, pkt: SimPacket },
    /// A timer armed by `node` expires.
    Timer { node: NodeId, token: TimerToken },
}

#[derive(Debug)]
struct Scheduled {
    time: Nanos,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic earliest-first event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        EventQueue::default()
    }

    pub fn push(&mut self, time: Nanos, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, kind });
    }

    pub fn pop(&mut self) -> Option<(Nanos, EventKind)> {
        self.heap.pop().map(|s| (s.time, s.kind))
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn earliest_first() {
        let mut q = EventQueue::new();
        q.push(
            Nanos(50),
            EventKind::Timer {
                node: NodeId(0),
                token: TimerToken(1),
            },
        );
        q.push(
            Nanos(10),
            EventKind::Timer {
                node: NodeId(0),
                token: TimerToken(2),
            },
        );
        let (t, k) = q.pop().unwrap();
        assert_eq!(t, Nanos(10));
        assert!(matches!(
            k,
            EventKind::Timer {
                token: TimerToken(2),
                ..
            }
        ));
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.push(
                Nanos(100),
                EventKind::Timer {
                    node: NodeId(0),
                    token: TimerToken(i),
                },
            );
        }
        for i in 0..10u64 {
            let (_, k) = q.pop().unwrap();
            match k {
                EventKind::Timer { token, .. } => assert_eq!(token, TimerToken(i)),
                _ => panic!(),
            }
        }
        assert!(q.is_empty());
    }
}
