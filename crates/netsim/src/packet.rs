//! Simulator packets.
//!
//! The simulator is payload-agnostic: a [`SimPacket`] carries opaque
//! bytes plus routing metadata. Protocol crates (switchml-core, the
//! baselines) serialize their own wire formats into the payload.

use crate::node::NodeId;
use bytes::Bytes;

/// A packet in flight in the simulator.
#[derive(Debug, Clone)]
pub struct SimPacket {
    /// Originating node.
    pub src: NodeId,
    /// Destination node (next hop is resolved by the topology).
    pub dst: NodeId,
    /// Opaque payload produced by the protocol layer.
    pub payload: Bytes,
    /// Bytes of header overhead *in addition to* the payload — models
    /// Ethernet/IP/UDP framing so goodput vs. line rate is accounted
    /// for the way the paper does (its 180-byte packets carry 128 bytes
    /// of vector data: a 28.9% header overhead at k = 32).
    pub header_bytes: usize,
    /// Set by the fault injector when the packet was corrupted in
    /// flight. Protocol layers discard corrupted packets, emulating a
    /// checksum check (§3.4: "A simple checksum can be used to detect
    /// corruption and discard corrupted packets").
    pub corrupted: bool,
}

impl SimPacket {
    /// Build a packet with the given framing overhead.
    pub fn new(src: NodeId, dst: NodeId, payload: Bytes, header_bytes: usize) -> Self {
        SimPacket {
            src,
            dst,
            payload,
            header_bytes,
            corrupted: false,
        }
    }

    /// Total on-the-wire size (headers + payload), which determines the
    /// serialization delay on a link.
    pub fn wire_bytes(&self) -> usize {
        self.header_bytes + self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_includes_headers() {
        let p = SimPacket::new(NodeId(0), NodeId(1), Bytes::from(vec![0u8; 128]), 52);
        assert_eq!(p.wire_bytes(), 180);
        assert!(!p.corrupted);
    }
}
