//! Property-based tests of the simulator's physical invariants.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use switchml_netsim::link::{Admission, Link, LinkSpec};
use switchml_netsim::time::{tx_time, Nanos};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// tx_time is additive: serializing two packets takes exactly the
    /// sum of their individual serialization times.
    #[test]
    fn tx_time_additive(a in 1usize..100_000, b in 1usize..100_000, bw in 1_000_000u64..200_000_000_000) {
        let t_ab = tx_time(a + b, bw);
        let t_sum = tx_time(a, bw) + tx_time(b, bw);
        // Integer truncation can differ by at most 1 ns.
        prop_assert!(t_ab.0.abs_diff(t_sum.0) <= 1);
    }

    /// A lossless link delivers in arrival order (FIFO) and never
    /// faster than bandwidth allows.
    #[test]
    fn link_is_fifo_and_rate_limited(
        sizes in prop::collection::vec(40usize..1500, 1..50),
        bw in 1_000_000_000u64..100_000_000_000,
    ) {
        let spec = LinkSpec::clean(bw, Nanos::from_micros(1)).with_queue_bytes(usize::MAX / 2);
        let mut link = Link::new(spec);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut last_arrival = Nanos::ZERO;
        let mut total_bytes = 0usize;
        for &s in &sizes {
            total_bytes += s;
            match link.admit(Nanos::ZERO, s, &mut rng) {
                Admission::Deliver { arrival, .. } => {
                    prop_assert!(arrival >= last_arrival, "reordering");
                    last_arrival = arrival;
                }
                other => prop_assert!(false, "unexpected {:?}", other),
            }
        }
        // Last arrival ≈ total serialization time + propagation, give
        // or take 1 ns of integer truncation per packet.
        let floor = tx_time(total_bytes, bw) + Nanos::from_micros(1);
        let slack = sizes.len() as u64;
        prop_assert!(
            last_arrival.0 + slack >= floor.0,
            "{last_arrival} < {floor}"
        );
        prop_assert!(last_arrival.0 <= floor.0 + slack);
    }

    /// Queue admission: with a finite queue, the backlog never exceeds
    /// capacity — drops begin exactly when it would.
    #[test]
    fn queue_never_overflows(
        qsize in 1500usize..20_000,
        n in 1usize..100,
    ) {
        let bw = 1_000_000_000u64;
        let spec = LinkSpec::clean(bw, Nanos::ZERO).with_queue_bytes(qsize);
        let mut link = Link::new(spec);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut accepted_bytes = 0usize;
        for _ in 0..n {
            match link.admit(Nanos::ZERO, 1500, &mut rng) {
                Admission::Deliver { .. } => accepted_bytes += 1500,
                Admission::QueueFull => {}
                Admission::Lost => prop_assert!(false, "lossless link lost a packet"),
            }
        }
        prop_assert!(accepted_bytes <= qsize, "{accepted_bytes} > {qsize}");
    }

    /// Loss injection is seed-deterministic.
    #[test]
    fn loss_is_deterministic(seed in any::<u64>(), p_pct in 1u32..99) {
        let run = || {
            let spec = LinkSpec::clean(10_000_000_000, Nanos::ZERO)
                .with_loss(p_pct as f64 / 100.0);
            let mut link = Link::new(spec);
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..200)
                .map(|i| {
                    matches!(
                        link.admit(Nanos::from_micros(i * 10), 100, &mut rng),
                        Admission::Lost
                    )
                })
                .collect::<Vec<bool>>()
        };
        prop_assert_eq!(run(), run());
    }
}

#[test]
fn bdp_scales_linearly() {
    let base = LinkSpec::clean(10_000_000_000, Nanos::from_micros(10));
    let b1 = base.bdp_bytes(Nanos::ZERO);
    let double_delay = LinkSpec::clean(10_000_000_000, Nanos::from_micros(20));
    assert_eq!(double_delay.bdp_bytes(Nanos::ZERO), 2 * b1);
    let double_bw = LinkSpec::clean(20_000_000_000, Nanos::from_micros(10));
    assert_eq!(double_bw.bdp_bytes(Nanos::ZERO), 2 * b1);
}
