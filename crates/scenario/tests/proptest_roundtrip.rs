//! Satellite: property-based serde round-trip for the scenario DSL.
//!
//! Any generated `Scenario` must survive `to_json_string` →
//! `from_json_str` unchanged, and — the stronger oracle — the reparsed
//! scenario must produce the *same outcome fingerprint* as the
//! original when run on the deterministic netsim transport. A lossy
//! field (silently dropped or defaulted during JSON round-trip) shows
//! up here as either a structural mismatch or a divergent run.
//!
//! Generation is constrained to small netsim-runnable scenarios so the
//! whole property (2 netsim runs per case) stays in the milliseconds.

use proptest::prelude::*;
use switchml_scenario::{run_scenario, JobSpec, Scenario, Transport};

/// Build a small plain-runner netsim scenario from generated knobs.
fn make_scenario(workers: usize, elems: usize, loss_pct: u8, k: usize, seed: u64) -> Scenario {
    Scenario::build("prop-roundtrip")
        .descr("generated scenario for serde round-trip property")
        .workers(workers)
        .k(k)
        .job(JobSpec {
            elems,
            ..JobSpec::default()
        })
        .loss(f64::from(loss_pct) / 100.0)
        .seed(seed)
        .finish()
        .expect("generated scenario must validate")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// serialize → reparse is the identity, both structurally and
    /// behaviorally (identical netsim outcome fingerprint).
    #[test]
    fn scenario_json_roundtrip_preserves_outcome(
        workers in 2usize..=4,
        elems in 64usize..=512,
        loss_pct in 0u8..=5,
        k in 4usize..=8,
        seed in 1u64..=1_000_000,
    ) {
        let sc = make_scenario(workers, elems, loss_pct, k, seed);
        prop_assert!(sc.supports(Transport::Netsim));

        let text = sc.to_json_string();
        let back = Scenario::from_json_str(&text)
            .expect("serialized scenario must reparse");
        prop_assert_eq!(&back, &sc);

        // Second round-trip is stable too (canonical form).
        let text2 = back.to_json_string();
        prop_assert_eq!(&text2, &text);

        let orig = run_scenario(&sc, Transport::Netsim)
            .expect("netsim run of original must be attemptable");
        let reparsed = run_scenario(&back, Transport::Netsim)
            .expect("netsim run of reparsed must be attemptable");
        prop_assert!(orig.passed(), "original violated: {:?}", orig.violations);
        prop_assert!(
            reparsed.passed(),
            "reparsed violated: {:?}",
            reparsed.violations
        );
        prop_assert_eq!(orig.fingerprint, reparsed.fingerprint);
    }
}
