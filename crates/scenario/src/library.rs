//! The standing scenario library: every named, curated experiment the
//! regression suite replays. Each scenario states its expectation
//! oracles explicitly; the suite (`tests/scenarios.rs` at the
//! workspace root, plus the `scenario suite` gate in `ci.sh`) runs
//! each one against every transport it supports.
//!
//! Conventions:
//! - Seeds are fixed so failures replay exactly.
//! - Kill/stall instants are microseconds; scenarios whose instants
//!   are only meaningful on one clock (simulated vs wall) narrow
//!   themselves with `only(...)`.
//! - Sizes are chosen so a fault scheduled mid-run actually lands
//!   mid-run on the slowest supported transport.

use crate::spec::{Expect, JobClass, RunnerKind, Scenario, Transport};

/// Every library scenario, in catalog order.
pub fn all() -> Vec<Scenario> {
    let build = |sc: Result<Scenario, String>| sc.expect("library scenario must validate");
    vec![
        // ------------------------------------------------ clean paths
        build(
            Scenario::build("smoke-2w")
                .descr("2 workers, clean fabric: the minimal end-to-end aggregation")
                .workers(2)
                .job_with(|j| j.elems = 1024)
                .expect(Expect::Completes)
                .expect(Expect::BitIdentical)
                .finish(),
        ),
        build(
            Scenario::build("hierarchy-2rack")
                .descr("2 racks x 2 workers through rack switches and a root (§6 hierarchy)")
                .racks(2)
                .workers(2)
                .job_with(|j| j.elems = 2048)
                .expect(Expect::Completes)
                .expect(Expect::BitIdentical)
                .finish(),
        ),
        // ------------------------------------- hierarchy on real sockets
        build(
            Scenario::build("hier-reactor-2x4")
                .descr("2 racks x 4 workers over real sockets: leaf re-aggregation, spine reduce")
                .runner(RunnerKind::Reactor { threads: 2 })
                .racks(2)
                .workers(4)
                .job_with(|j| j.elems = 2048)
                .expect(Expect::Completes)
                .expect(Expect::BitIdentical)
                .finish(),
        ),
        build(
            Scenario::build("hier-loss-both-hops")
                .descr("5% loss around spine and leaves: per-hop RTO domains recover both hops")
                .runner(RunnerKind::Reactor { threads: 2 })
                .racks(2)
                .workers(4)
                .job_with(|j| j.elems = 4096)
                .loss(0.05)
                .seed(77)
                .expect(Expect::BitIdentical)
                .expect(Expect::FaultsInjected)
                .expect(Expect::Retransmissions)
                .finish(),
        ),
        build(
            Scenario::build("hier-rack-kill-refence")
                .descr(
                    "leaf 1 dies at 1ms; the replacement fences its rack epoch, quiet rack idles",
                )
                .runner(RunnerKind::Reactor { threads: 2 })
                .racks(2)
                .workers(4)
                .topology_with(|t| t.k = 32)
                .job_with(|j| j.elems = 16384)
                .kill_rack_at_us(1, 1_000)
                .expect(Expect::BitIdentical)
                .expect(Expect::EpochAtLeast(1))
                .only(&[Transport::Channel])
                .finish(),
        ),
        // ------------------------------------------------ loss storms
        build(
            Scenario::build("loss-storm-5pct")
                .descr("5% loss on every data-plane link; recovery by retransmission")
                .workers(3)
                .job_with(|j| j.elems = 4096)
                .loss(0.05)
                .seed(7)
                .expect(Expect::BitIdentical)
                .expect(Expect::FaultsInjected)
                .expect(Expect::Retransmissions)
                .finish(),
        ),
        build(
            Scenario::build("dup-reorder-blitz")
                .descr("loss + duplication + §3.5-bounded reordering, all at once")
                .workers(3)
                .job_with(|j| j.elems = 4096)
                .loss(0.02)
                .dup(0.04)
                .reorder(0.08)
                .seed(11)
                .expect(Expect::BitIdentical)
                .expect(Expect::FaultsInjected)
                .finish(),
        ),
        build(
            Scenario::build("sharded-4core-loss")
                .descr("4 switch shards + per-core engines under 3% loss")
                .runner(RunnerKind::Sharded)
                .workers(2)
                .cores(4)
                .job_with(|j| j.elems = 4096)
                .loss(0.03)
                .seed(5)
                .expect(Expect::BitIdentical)
                .expect(Expect::FaultsInjected)
                .finish(),
        ),
        // ------------------------------------------------- stragglers
        build(
            Scenario::build("straggler-one-slow")
                .descr("one worker stalls 200us per send; completion is gated, not corrupted")
                .workers(3)
                .job_with(|j| j.elems = 2048)
                .straggler(1, 200)
                .expect(Expect::BitIdentical)
                .finish(),
        ),
        // ----------------------------------- crashes, no control plane
        build(
            Scenario::build("kill-no-ctrl-clean-degradation")
                .descr("worker crashes mid-run with no controller: error, never wrong numbers")
                .workers(3)
                .job_with(|j| j.elems = 32768)
                .kill_at_us(1, 500)
                .max_wall_ms(2_000)
                .expect(Expect::CleanDegradation)
                .only(&[Transport::Channel, Transport::Udp])
                .finish(),
        ),
        build(
            Scenario::build("kill-at-chunk-40")
                .descr("worker dies after exactly 40 data-plane sends (machine-speed independent)")
                .workers(3)
                .job_with(|j| j.elems = 4096)
                .kill_after_sends(1, 40)
                .max_wall_ms(2_000)
                .expect(Expect::CleanDegradation)
                .only(&[Transport::Channel, Transport::Udp])
                .finish(),
        ),
        // -------------------------------------------- controller runs
        build(
            Scenario::build("ctrl-shrink-on-kill")
                .descr("controller detects a crash by heartbeat silence, shrinks, survivors finish")
                .runner(RunnerKind::Ctrl)
                .workers(3)
                .job_with(|j| j.elems = 16384)
                .kill_at_us(1, 4_000)
                .loss(0.01)
                .seed(3)
                .expect(Expect::SurvivorsBitIdentical)
                .expect(Expect::EpochAtLeast(1))
                .only(&[Transport::Channel, Transport::Udp])
                .finish(),
        ),
        build(
            Scenario::build("ctrl-switch-restart-mid-churn")
                .descr("switch process reboots at 4ms (§5.4): in-place failover re-drives the rest")
                .runner(RunnerKind::Ctrl)
                .workers(2)
                .job_with(|j| j.elems = 16384)
                .switch_restart_ms(4)
                .loss(0.01)
                .seed(13)
                .expect(Expect::SurvivorsBitIdentical)
                .expect(Expect::EpochAtLeast(1))
                .only(&[Transport::Channel, Transport::Udp])
                .finish(),
        ),
        build(
            Scenario::build("cascading-failures")
                .descr("a worker crash then a switch restart, back to back, fenced by epoch bumps")
                .runner(RunnerKind::Ctrl)
                .workers(3)
                .job_with(|j| j.elems = 32768)
                .kill_at_us(1, 3_000)
                .switch_restart_ms(8)
                .loss(0.01)
                .seed(17)
                .expect(Expect::SurvivorsBitIdentical)
                // Kill-recovery and restart-recovery can coalesce into
                // one reconfiguration when the failure_timeout windows
                // overlap, so only one epoch bump is guaranteed.
                .expect(Expect::EpochAtLeast(1))
                .only(&[Transport::Channel, Transport::Udp])
                .finish(),
        ),
        // ------------------------------------------------ netsim ctrl
        build(
            Scenario::build("netsim-kill-shrink")
                .descr("8 simulated workers; one dies at t=25us; survivors agree bit-for-bit")
                .runner(RunnerKind::Ctrl)
                .workers(8)
                .job_with(|j| j.elems = 256)
                .kill_at_us(1, 25)
                .rto_us(300)
                .max_wall_ms(500)
                .expect(Expect::SurvivorsBitIdentical)
                .expect(Expect::EpochAtLeast(1))
                .only(&[Transport::Netsim])
                .finish(),
        ),
        build(
            Scenario::build("netsim-failover")
                .descr("standby switch takes over at t=100us; job completes under a bumped epoch")
                .runner(RunnerKind::Ctrl)
                .workers(4)
                // 512 elems keeps the stream in flight past the 100us
                // drain instant (the ctrl netsim suite's proven pair).
                .job_with(|j| j.elems = 512)
                .failover_us(100)
                .rto_us(300)
                .max_wall_ms(500)
                .expect(Expect::Completes)
                .expect(Expect::SurvivorsBitIdentical)
                .expect(Expect::EpochAtLeast(1))
                .only(&[Transport::Netsim])
                .finish(),
        ),
        // ---------------------------------------------------- reactor
        build(
            Scenario::build("reactor-64-virtual-workers")
                .descr("64 virtual workers multiplexed onto 4 reactor threads")
                .runner(RunnerKind::Reactor { threads: 4 })
                .workers(64)
                .job_with(|j| j.elems = 96)
                .expect(Expect::Completes)
                .expect(Expect::BitIdentical)
                .only(&[Transport::Channel])
                .finish(),
        ),
        build(
            Scenario::build("reactor-loss-adaptive-rto")
                .descr("reactor threads + Jacobson RTO under 5% loss")
                .runner(RunnerKind::Reactor { threads: 2 })
                .workers(3)
                .cores(2)
                .job_with(|j| j.elems = 4096)
                .loss(0.05)
                .seed(77)
                .expect(Expect::BitIdentical)
                .expect(Expect::FaultsInjected)
                .expect(Expect::Retransmissions)
                .finish(),
        ),
        build(
            Scenario::build("udp-gro-burst-loss")
                .descr("batch-preserving loss so UDP GSO/GRO stays engaged under 5% drops")
                .runner(RunnerKind::Reactor { threads: 2 })
                .workers(2)
                .cores(2)
                .job_with(|j| j.elems = 4096)
                .loss(0.05)
                .batch_loss()
                .seed(21)
                .expect(Expect::BitIdentical)
                .expect(Expect::FaultsInjected)
                .expect(Expect::Retransmissions)
                .only(&[Transport::Udp])
                .finish(),
        ),
        // ------------------------------------------------------ sched
        build(
            Scenario::build("sched-mixed-model-zoo")
                .descr("4 jobs of mixed size and priority arriving staggered at one switch")
                .runner(RunnerKind::Sched)
                .workers(2)
                .capacity(32)
                .job_with(|j| j.elems = 2048)
                .job_with(|j| {
                    j.elems = 8192;
                    j.arrival_ms = 3;
                    j.class = JobClass::High;
                    j.weight = 2;
                })
                .job_with(|j| {
                    j.elems = 16384;
                    j.arrival_ms = 6;
                })
                .job_with(|j| {
                    j.elems = 4096;
                    j.arrival_ms = 9;
                    j.class = JobClass::High;
                })
                .max_wall_ms(30_000)
                .expect(Expect::AllJobsComplete)
                .finish(),
        ),
        build(
            Scenario::build("sched-bursty-arrivals")
                .descr("6 jobs land at once on a tight pool; departures trigger repartitions")
                .runner(RunnerKind::Sched)
                .workers(2)
                .capacity(24)
                .job_with(|j| j.elems = 1024)
                .job_with(|j| j.elems = 2048)
                .job_with(|j| {
                    j.elems = 8192;
                    j.class = JobClass::High;
                })
                .job_with(|j| j.elems = 4096)
                .job_with(|j| j.elems = 2048)
                .job_with(|j| {
                    j.elems = 8192;
                    j.class = JobClass::High;
                })
                .max_wall_ms(30_000)
                .expect(Expect::AllJobsComplete)
                .expect(Expect::Resizes)
                .finish(),
        ),
        build(
            Scenario::build("sched-loss-under-preemption")
                .descr("10% loss storm on one tenant while a high-priority job preempts: isolation")
                .runner(RunnerKind::Sched)
                .workers(2)
                .capacity(32)
                .job_with(|j| {
                    j.elems = 16384;
                    j.quota = 16; // the noisy tenant cannot also hog the pool
                })
                .job_with(|j| {
                    j.elems = 8192;
                    j.arrival_ms = 4;
                })
                .job_with(|j| {
                    j.elems = 8192;
                    j.arrival_ms = 8;
                    j.class = JobClass::High;
                    j.weight = 2;
                })
                .loss(0.1)
                .target_job(0)
                .seed(9)
                .max_wall_ms(30_000)
                .expect(Expect::AllJobsComplete)
                .expect(Expect::FaultsInjected)
                .expect(Expect::ZeroQuietTenantFaults)
                .finish(),
        ),
    ]
}

/// Look a library scenario up by name.
pub fn find(name: &str) -> Option<Scenario> {
    all().into_iter().find(|sc| sc.name == name)
}

/// The UDP-tagged subset: the scenarios CI replays over real loopback
/// sockets under a hard time budget — the ones that exercise something
/// the channel transport cannot (GSO/GRO batching, kernel socket
/// timers) plus a loss storm and a membership shrink as smoke.
pub fn udp_subset() -> &'static [&'static str] {
    &[
        "loss-storm-5pct",
        "reactor-loss-adaptive-rto",
        "udp-gro-burst-loss",
        "ctrl-shrink-on-kill",
        "hier-reactor-2x4",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Transport;

    #[test]
    fn library_has_at_least_15_scenarios() {
        assert!(all().len() >= 15, "library shrank to {}", all().len());
    }

    #[test]
    fn names_are_unique_and_described() {
        let lib = all();
        let mut names: Vec<&str> = lib.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), lib.len(), "duplicate scenario names");
        for sc in &lib {
            assert!(!sc.descr.is_empty(), "{} has no description", sc.name);
            assert!(!sc.expect.is_empty(), "{} states no oracle", sc.name);
        }
    }

    #[test]
    fn every_scenario_validates_and_runs_somewhere() {
        for sc in all() {
            sc.validate().unwrap_or_else(|e| panic!("{}: {e}", sc.name));
            assert!(
                !sc.supported_transports().is_empty(),
                "{} supports no transport",
                sc.name
            );
        }
    }

    #[test]
    fn every_scenario_roundtrips_through_json() {
        for sc in all() {
            let text = sc.to_json_string();
            let back = Scenario::from_json_str(&text)
                .unwrap_or_else(|e| panic!("{}: reparse failed: {e}", sc.name));
            assert_eq!(sc, back, "{} changed across serialization", sc.name);
        }
    }

    #[test]
    fn udp_subset_names_exist_and_support_udp() {
        for name in udp_subset() {
            let sc = find(name).unwrap_or_else(|| panic!("udp subset names unknown '{name}'"));
            assert!(sc.supports(Transport::Udp), "{name} cannot run on udp");
        }
    }

    #[test]
    fn netsim_and_channel_coverage_exists() {
        let lib = all();
        let on = |t: Transport| lib.iter().filter(|s| s.supports(t)).count();
        assert!(on(Transport::Netsim) >= 5, "thin netsim coverage");
        assert!(on(Transport::Channel) >= 10, "thin channel coverage");
        assert!(on(Transport::Udp) >= 8, "thin udp coverage");
    }

    #[test]
    fn find_locates_by_name() {
        assert!(find("loss-storm-5pct").is_some());
        assert!(find("no-such-scenario").is_none());
    }
}
