//! Scenario execution: compile one declarative [`Scenario`] onto a
//! concrete transport × runner pair, run it, and evaluate every
//! expectation oracle.
//!
//! The mapping mirrors the conventions the hand-rolled chaos/sched
//! harnesses established (endpoint layouts, fault placement, the
//! data-plane-only fault rule for controller runs), so a scenario that
//! passes here is exercising exactly the code paths the old
//! command-line invocations did.

use std::time::Duration;

use switchml_baselines::run::{
    run_switchml, run_switchml_hierarchy, CollectiveOutcome, HierScenario, SwitchMLScenario,
};
use switchml_core::agg;
use switchml_core::config::{Protocol, RtoPolicy};
use switchml_ctrl::netsim::{run_ctrl, scenario_tensor, CtrlOutcome, CtrlScenario};
use switchml_ctrl::runner::{run_controlled, CtrlRunConfig, CtrlRunReport};
use switchml_ctrl::sched::{
    run_scheduled, sched_fabric_size, Class, SchedJob, SchedRunConfig, SchedRunReport, TenantSpec,
};
use switchml_netsim::prelude::Nanos;
use switchml_transport::channel::channel_fabric;
use switchml_transport::chaos::{
    chaos_fabric_data_plane, run_chaos, run_chaos_reactor, run_chaos_sharded, ChaosOutcome,
    ChaosSpec, KillAt,
};
use switchml_transport::faulty::{FaultyConfig, FaultyPort, FaultyStats};
use switchml_transport::hier::{hier_fabric_size, run_allreduce_hier, HierConfig};
use switchml_transport::runner::RunReport;
use switchml_transport::shard::sharded_fabric_size;
use switchml_transport::udp::udp_fabric;
use switchml_transport::{Port, RunConfig};

use crate::spec::{Expect, KillWhen, RunnerKind, Scenario, Transport};

/// Per-worker gradient magnitude: scenario tensors live in
/// `(-TENSOR_BOUND, TENSOR_BOUND)`, comfortably inside every runner's
/// Theorem-2 bound (16.0) and the Fixed32 range at f = 10⁴.
const TENSOR_BOUND: f64 = 8.0;

/// Bound on netsim's random reordering delay. A few packet times at
/// the default 10 Gbps link — late enough to invert adjacent arrivals,
/// early enough that the RTO (milliseconds) does not fire spuriously.
const REORDER_SPREAD: Nanos = Nanos(5_000);

/// The raw report the underlying runner produced, kept so callers
/// (CLI formatting, tests) can drill into runner-specific counters.
pub enum Detail {
    /// Plain/sharded/reactor data-plane run that completed.
    Run(RunReport),
    /// Controller-managed run on a real transport.
    Ctrl(CtrlRunReport),
    /// Multi-tenant scheduled churn on a real transport.
    Sched(SchedRunReport),
    /// Netsim collective (plain or hierarchical).
    NetsimCollective(CollectiveOutcome),
    /// Netsim control-plane scenario.
    NetsimCtrl(CtrlOutcome),
    /// The run produced no report (clean degradation or setup error).
    None,
}

impl std::fmt::Debug for Detail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Detail::Run(_) => "Run",
            Detail::Ctrl(_) => "Ctrl",
            Detail::Sched(_) => "Sched",
            Detail::NetsimCollective(_) => "NetsimCollective",
            Detail::NetsimCtrl(_) => "NetsimCtrl",
            Detail::None => "None",
        })
    }
}

/// What one scenario run produced, with every oracle evaluated.
pub struct ScenarioReport {
    pub scenario: String,
    pub transport: Transport,
    /// The run itself completed (all workers / survivors / jobs done).
    pub completed: bool,
    /// The runner's error when it did not complete.
    pub error: Option<String>,
    /// Every violated (or unevaluable) expectation, human-readable.
    /// Empty = the scenario passed.
    pub violations: Vec<String>,
    /// Order-independent digest of the observable outcome (results,
    /// survivor sets, epochs). Two runs of the same scenario on the
    /// same deterministic transport fingerprint identically; the
    /// proptest round-trip suite leans on this.
    pub fingerprint: u64,
    /// Wall clock (real transports) or simulated time (netsim), ms.
    pub wall_ms: u64,
    pub detail: Detail,
}

impl std::fmt::Debug for ScenarioReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioReport")
            .field("scenario", &self.scenario)
            .field("transport", &self.transport)
            .field("completed", &self.completed)
            .field("error", &self.error)
            .field("violations", &self.violations)
            .field("fingerprint", &format_args!("{:#018x}", self.fingerprint))
            .field("wall_ms", &self.wall_ms)
            .field("detail", &self.detail)
            .finish()
    }
}

impl ScenarioReport {
    /// Every stated expectation held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line outcome for catalogs and CLI output.
    pub fn summary(&self) -> String {
        format!(
            "{} [{}]: {}{} ({} ms, fp {:#018x})",
            self.scenario,
            self.transport.name(),
            if self.passed() { "PASS" } else { "FAIL" },
            if self.violations.is_empty() {
                String::new()
            } else {
                format!(" — {}", self.violations.join("; "))
            },
            self.wall_ms,
            self.fingerprint,
        )
    }
}

// ------------------------------------------------------------ fingerprint

/// FNV-1a, the workspace's convention for cheap stable digests.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x100_0000_01b3);
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn bool(&mut self, v: bool) {
        self.byte(v as u8);
    }

    fn f32s(&mut self, xs: &[f32]) {
        for x in xs {
            self.u64(x.to_bits() as u64);
        }
    }

    fn tensors(&mut self, ts: &[Vec<f32>]) {
        self.u64(ts.len() as u64);
        for t in ts {
            self.f32s(t);
        }
    }
}

fn fingerprint(completed: bool, detail: &Detail) -> u64 {
    let mut h = Fnv::new();
    h.bool(completed);
    match detail {
        Detail::Run(r) => {
            for tensors in &r.results {
                h.tensors(tensors);
            }
        }
        Detail::Ctrl(r) => {
            h.u64(r.final_n as u64);
            h.u64(r.final_epoch as u64);
            for res in &r.results {
                match res {
                    Some(tensors) => {
                        h.bool(true);
                        h.tensors(tensors);
                    }
                    None => h.bool(false),
                }
            }
        }
        Detail::Sched(r) => {
            for o in &r.outcomes {
                h.bool(o.admitted);
                h.bool(o.completed_at.is_some());
                h.bool(o.results_identical);
                h.u64(o.final_epoch as u64);
            }
        }
        Detail::NetsimCollective(o) => {
            h.bool(o.verified);
            h.u64(o.max_tat.0);
            h.u64(o.total_retx);
            for t in &o.worker0_results {
                h.f32s(t);
            }
        }
        Detail::NetsimCtrl(o) => {
            for (j, per_worker) in o.results.iter().enumerate() {
                h.u64(o.final_n[j] as u64);
                h.u64(o.final_epoch[j] as u64);
                for res in per_worker {
                    match res {
                        Some(tensors) => {
                            h.bool(true);
                            h.tensors(tensors);
                        }
                        None => h.bool(false),
                    }
                }
            }
        }
        Detail::None => h.bool(false),
    }
    h.0
}

// ------------------------------------------------------------- execution

/// Run `sc` on transport `t` and evaluate its oracles.
///
/// `Err` means the scenario could not be *attempted* (unsupported
/// transport/runner combination, or the environment refused — e.g. no
/// UDP sockets). Everything the run itself reveals — including clean
/// degradation and violated expectations — lands in the returned
/// [`ScenarioReport`].
pub fn run_scenario(sc: &Scenario, t: Transport) -> Result<ScenarioReport, String> {
    sc.validate()?;
    if !sc.supports(t) {
        return Err(format!(
            "scenario '{}' does not support transport '{}' (supported: {})",
            sc.name,
            t.name(),
            sc.supported_transports()
                .iter()
                .map(|t| t.name())
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    match t {
        Transport::Netsim => match sc.runner {
            RunnerKind::Ctrl => Ok(netsim_ctrl(sc, t)),
            _ => Ok(netsim_collective(sc, t)),
        },
        Transport::Channel | Transport::Udp => match sc.runner {
            RunnerKind::Plain | RunnerKind::Sharded | RunnerKind::Reactor { .. } => {
                transport_dataplane(sc, t)
            }
            RunnerKind::Ctrl => transport_ctrl(sc, t),
            RunnerKind::Sched => transport_sched(sc, t),
        },
    }
}

fn base_proto(sc: &Scenario) -> Protocol {
    let rto_ns = sc.rto_us * 1_000;
    Protocol {
        n_workers: sc.total_workers(),
        k: sc.topology.k,
        pool_size: sc.topology.pool_size,
        rto_ns,
        rto_policy: rto_policy_of(sc, rto_ns),
        scaling_factor: 10_000.0,
        ..Protocol::default()
    }
}

/// The concrete timer policy for a scenario's base RTO.
fn rto_policy_of(sc: &Scenario, rto_ns: u64) -> RtoPolicy {
    match sc.rto_mode {
        crate::spec::RtoMode::Adaptive => RtoPolicy::Adaptive {
            min_ns: (rto_ns / 4).max(1),
            max_ns: rto_ns * 32,
        },
        crate::spec::RtoMode::Backoff => RtoPolicy::ExponentialBackoff {
            max_ns: rto_ns * 32,
        },
        crate::spec::RtoMode::Fixed => RtoPolicy::Fixed,
    }
}

/// Per-worker tensor sets for a single-job run: one deterministic
/// tensor per worker, distinct per (worker, element).
fn single_job_updates(sc: &Scenario) -> Vec<Vec<Vec<f32>>> {
    let elems = sc.jobs[0].elems;
    (0..sc.total_workers())
        .map(|w| vec![scenario_tensor(w, elems, TENSOR_BOUND)])
        .collect()
}

/// Probabilistic fault layer from the plan. `batch_loss` keeps burst
/// I/O on the inner transport's batch path (UDP GSO/GRO stays on) at
/// the cost of being send-side loss only.
fn fault_config(sc: &Scenario) -> FaultyConfig {
    let f = &sc.faults;
    if f.batch_loss {
        FaultyConfig::batch_loss_only(f.loss)
    } else {
        FaultyConfig {
            send_drop: f.loss,
            recv_drop: f.loss,
            dup: f.dup,
            reorder: f.reorder,
            ..FaultyConfig::default()
        }
    }
}

/// Chaos schedule with worker indices mapped to fabric endpoints via
/// `ep_of`. `script_kills = false` leaves kills out (the ctrl runner
/// scripts the crash itself so the controller observes it).
fn chaos_spec(sc: &Scenario, script_kills: bool, ep_of: impl Fn(usize) -> usize) -> ChaosSpec {
    let f = &sc.faults;
    ChaosSpec {
        seed: f.seed,
        fault: fault_config(sc),
        stragglers: f
            .stragglers
            .iter()
            .map(|&(w, us)| (ep_of(w), Duration::from_micros(us)))
            .collect(),
        kills: if script_kills {
            f.kills
                .iter()
                .map(|&(w, when)| {
                    let at = match when {
                        KillWhen::ElapsedUs(us) => KillAt::Elapsed(Duration::from_micros(us)),
                        KillWhen::AfterSends(n) => KillAt::AfterSends(n),
                    };
                    (ep_of(w), at)
                })
                .collect()
        } else {
            Vec::new()
        },
    }
}

fn unsupported(e: &Expect, family: &str) -> String {
    format!("{e:?}: oracle not measurable on the {family} runner")
}

// ------------------------------------------- plain / sharded / reactor

fn transport_dataplane(sc: &Scenario, t: Transport) -> Result<ScenarioReport, String> {
    if sc.topology.racks > 1 {
        return transport_hier(sc, t);
    }
    let topo = &sc.topology;
    let (n, cores) = (topo.workers, topo.cores);
    let proto = base_proto(sc);
    let updates = single_job_updates(sc);

    let plain = matches!(sc.runner, RunnerKind::Plain);
    let size = if plain {
        n + 1
    } else {
        sharded_fabric_size(n, cores)
    };
    // Worker w's core-0 endpoint: w+1 on the plain fabric, past the
    // switch shards on a sharded one.
    let spec = chaos_spec(sc, true, |w| if plain { w + 1 } else { cores + w * cores });
    let run_cfg = RunConfig {
        n_cores: if plain { 1 } else { cores },
        max_wall: sc.max_wall(),
        burst: sc.burst,
    };

    fn drive<P: Port + 'static>(
        ports: Vec<P>,
        sc: &Scenario,
        updates: Vec<Vec<Vec<f32>>>,
        proto: &Protocol,
        cfg: &RunConfig,
        spec: &ChaosSpec,
    ) -> switchml_core::error::Result<ChaosOutcome> {
        match sc.runner {
            RunnerKind::Plain => run_chaos(ports, updates, proto, cfg, spec),
            RunnerKind::Sharded => run_chaos_sharded(ports, updates, proto, cfg, spec),
            RunnerKind::Reactor { threads } => {
                run_chaos_reactor(ports, updates, proto, cfg, spec, threads)
            }
            _ => unreachable!("dataplane families only"),
        }
    }

    let outcome = match t {
        Transport::Channel => drive(channel_fabric(size), sc, updates, &proto, &run_cfg, &spec),
        Transport::Udp => {
            let ports = udp_fabric(size).map_err(|e| format!("udp fabric: {e}"))?;
            drive(ports, sc, updates, &proto, &run_cfg, &spec)
        }
        Transport::Netsim => unreachable!(),
    };

    let mut violations = Vec::new();
    let (completed, error, detail) = match outcome {
        Ok(ChaosOutcome::BitIdentical(r)) => (true, None, Detail::Run(*r)),
        Ok(ChaosOutcome::CleanDegradation(e)) => (false, Some(e.to_string()), Detail::None),
        Err(e) => {
            // The chaos harness returns Err only for silent corruption
            // or a harness fault — never acceptable, oracle or not.
            violations.push(format!("run failed: {e}"));
            (false, Some(e.to_string()), Detail::None)
        }
    };
    let (retx, faults, wall_ms) = match &detail {
        Detail::Run(r) => (
            r.worker_stats.iter().map(|s| s.retx).sum::<u64>(),
            r.transport_stats.injected_faults(),
            r.wall.as_millis() as u64,
        ),
        _ => (0, 0, 0),
    };
    for e in &sc.expect {
        let ok = match e {
            // The harness already held completion to the bit-identical
            // bar, so these two coincide here.
            Expect::Completes | Expect::BitIdentical => completed,
            Expect::CleanDegradation => !completed && error.is_some(),
            Expect::FaultsInjected => faults > 0,
            Expect::Retransmissions => retx > 0,
            Expect::WallUnderMs(ms) => completed && wall_ms <= *ms,
            other => {
                violations.push(unsupported(other, "plain/sharded/reactor"));
                continue;
            }
        };
        if !ok {
            violations.push(format!(
                "{e:?} violated (completed={completed}, faults={faults}, retx={retx})"
            ));
        }
    }
    Ok(ScenarioReport {
        scenario: sc.name.clone(),
        transport: t,
        completed,
        error,
        violations,
        fingerprint: fingerprint(completed, &detail),
        wall_ms,
        detail,
    })
}

// ------------------------------------------------------- hierarchy (tree)

/// Two-level tree on a real transport: spine + per-rack leaves over
/// the reactor data plane ([`run_allreduce_hier`]). Probabilistic
/// faults wrap the switch endpoints (spine and every leaf) so both the
/// worker↔leaf and leaf↔spine hops see them; the scripted rack kill is
/// the leaf runner's own (`HierConfig::kill_leaf`), giving the
/// replacement leaf + epoch-fence recovery path, not a dead worker.
fn transport_hier(sc: &Scenario, t: Transport) -> Result<ScenarioReport, String> {
    let topo = &sc.topology;
    let (racks, wpr) = (topo.racks, topo.workers);
    let n = sc.total_workers();
    let proto = base_proto(sc);
    let updates = single_job_updates(sc);
    let f = &sc.faults;

    // supports() admits no stragglers/kills on the hier arm, so the
    // spec carries only the probabilistic layer.
    let spec = chaos_spec(sc, false, |w| w);
    let run_cfg = RunConfig {
        n_cores: 1,
        max_wall: sc.max_wall(),
        burst: sc.burst,
    };
    let hier_cfg = HierConfig {
        n_threads: match sc.runner {
            RunnerKind::Reactor { threads } => threads,
            _ => unreachable!("validated: hierarchy runs on the reactor runner"),
        },
        kill_leaf: f
            .kill_rack
            .map(|(rack, us)| (rack, Duration::from_micros(us))),
        ..HierConfig::new(racks, wpr)
    };

    let size = hier_fabric_size(racks, wpr);
    fn drive<P: Port + 'static>(
        base: Vec<P>,
        spec: &ChaosSpec,
        n_switch_endpoints: usize,
        updates: Vec<Vec<Vec<f32>>>,
        proto: &Protocol,
        cfg: &RunConfig,
        hier: &HierConfig,
    ) -> switchml_core::error::Result<RunReport> {
        let (ports, _) = chaos_fabric_data_plane(base, n_switch_endpoints, spec);
        run_allreduce_hier(ports, updates, proto, cfg, hier)
    }
    let result = match t {
        Transport::Channel => drive(
            channel_fabric(size),
            &spec,
            1 + racks,
            updates.clone(),
            &proto,
            &run_cfg,
            &hier_cfg,
        ),
        Transport::Udp => {
            let base = udp_fabric(size).map_err(|e| format!("udp fabric: {e}"))?;
            drive(
                base,
                &spec,
                1 + racks,
                updates.clone(),
                &proto,
                &run_cfg,
                &hier_cfg,
            )
        }
        Transport::Netsim => unreachable!(),
    };

    let mut violations = Vec::new();
    let (completed, error, detail) = match result {
        Ok(r) => (true, None, Detail::Run(r)),
        Err(e) => (false, Some(e.to_string()), Detail::None),
    };

    // The flat chaos harness checks bit-identity internally; the hier
    // runner returns raw results, so hold them to the same bar here.
    let mut reference_match = false;
    let (mut retx, mut faults, mut max_epoch, mut wall_ms) = (0u64, 0u64, 0u32, 0u64);
    if let Detail::Run(r) = &detail {
        faults = r.transport_stats.injected_faults();
        wall_ms = r.wall.as_millis() as u64;
        // Worker-hop retransmissions plus the leaf→spine hop's own.
        retx = r.worker_stats.iter().map(|s| s.retx).sum::<u64>();
        if let Some(h) = &r.hier {
            retx += h.leaf_up_stats.iter().map(|s| s.retx).sum::<u64>();
            max_epoch = h.rack_epochs.iter().map(|&e| e as u32).max().unwrap_or(0);
        }
        match agg::allreduce(&updates, &proto) {
            Ok(reference) => {
                reference_match = r.results.iter().all(|tensors| {
                    tensors.iter().zip(&reference).all(|(got, want)| {
                        got.iter()
                            .map(|v| v.to_bits())
                            .eq(want.iter().map(|v| v.to_bits()))
                    })
                });
                if !reference_match {
                    violations.push(
                        "hierarchical results differ from the sequential reference — silent \
                         corruption"
                            .into(),
                    );
                }
            }
            Err(e) => violations.push(format!("reference allreduce failed: {e}")),
        }
    }

    for e in &sc.expect {
        let ok = match e {
            Expect::Completes => completed,
            Expect::BitIdentical => completed && reference_match,
            Expect::CleanDegradation => !completed && error.is_some(),
            Expect::EpochAtLeast(k) => max_epoch >= *k,
            Expect::FaultsInjected => faults > 0,
            Expect::Retransmissions => retx > 0,
            Expect::WallUnderMs(ms) => completed && wall_ms <= *ms,
            other => {
                violations.push(unsupported(other, "hierarchy"));
                continue;
            }
        };
        if !ok {
            violations.push(format!(
                "{e:?} violated (completed={completed}, {racks}x{wpr}={n}, epoch={max_epoch}, \
                 faults={faults}, retx={retx})"
            ));
        }
    }
    Ok(ScenarioReport {
        scenario: sc.name.clone(),
        transport: t,
        completed,
        error,
        violations,
        fingerprint: fingerprint(completed, &detail),
        wall_ms,
        detail,
    })
}

// ------------------------------------------------------------------ ctrl

fn transport_ctrl(sc: &Scenario, t: Transport) -> Result<ScenarioReport, String> {
    let topo = &sc.topology;
    let n = topo.workers;
    let proto = base_proto(sc);
    let updates = single_job_updates(sc);
    let f = &sc.faults;

    // Probabilistic faults hit only the data plane (switch endpoint 0)
    // so control traffic stays a reliable RPC; the crash is the
    // controller's to observe, so it is scripted via the run config,
    // not the chaos layer.
    let spec = chaos_spec(sc, false, |w| w + 1);
    let kill = f.kills.first().map(|&(w, when)| match when {
        KillWhen::ElapsedUs(us) => (w as u16, Duration::from_micros(us)),
        KillWhen::AfterSends(_) => unreachable!("validated: ctrl kills are ElapsedUs"),
    });
    let cfg = CtrlRunConfig {
        max_wall: sc.max_wall(),
        n_cores: topo.cores,
        kill,
        switch_restart: f.switch_restart_ms.map(Duration::from_millis),
        ..CtrlRunConfig::default()
    };

    fn drive<P: Port + 'static>(
        base: Vec<P>,
        spec: &ChaosSpec,
        updates: Vec<Vec<Vec<f32>>>,
        proto: &Protocol,
        cfg: &CtrlRunConfig,
    ) -> switchml_core::error::Result<CtrlRunReport> {
        let (ports, _) = chaos_fabric_data_plane(base, 1, spec);
        run_controlled(ports, updates, proto, cfg)
    }

    let result = match t {
        Transport::Channel => drive(channel_fabric(n + 2), &spec, updates.clone(), &proto, &cfg),
        Transport::Udp => {
            let base = udp_fabric(n + 2).map_err(|e| format!("udp fabric: {e}"))?;
            drive(base, &spec, updates.clone(), &proto, &cfg)
        }
        Transport::Netsim => unreachable!(),
    };

    let mut violations = Vec::new();
    let (completed, error, detail) = match result {
        Ok(r) => (true, None, Detail::Ctrl(r)),
        Err(e) => (false, Some(e.to_string()), Detail::None),
    };

    // Survivor agreement is the §5.4 bar: every surviving worker holds
    // the same bits across any number of reconfigurations; with no
    // shrink, those bits must equal the sequential reference.
    let mut survivors_identical = true;
    let mut reference_match = false;
    let (mut final_n, mut final_epoch, mut retx, mut faults, mut wall_ms) = (0, 0, 0, 0, 0);
    if let Detail::Ctrl(r) = &detail {
        final_n = r.final_n;
        final_epoch = r.final_epoch;
        retx = r.worker_stats.iter().map(|s| s.retx).sum::<u64>();
        faults = r.transport_stats.injected_faults();
        wall_ms = r.wall.as_millis() as u64;
        let survivors: Vec<&Vec<Vec<f32>>> = r.results.iter().flatten().collect();
        if survivors.is_empty() {
            survivors_identical = false;
            violations.push("no surviving worker produced results".into());
        } else {
            survivors_identical = survivors.iter().all(|t| *t == survivors[0]);
            if !survivors_identical {
                violations.push("survivor results differ — silent corruption".into());
            }
            if r.final_n == n {
                match agg::allreduce(&updates, &proto) {
                    Ok(reference) => {
                        reference_match = survivors[0].iter().zip(&reference).all(|(got, want)| {
                            got.iter()
                                .map(|v| v.to_bits())
                                .eq(want.iter().map(|v| v.to_bits()))
                        });
                        if !reference_match {
                            violations.push(
                                "full membership finished but differs from the sequential \
                                 reference"
                                    .into(),
                            );
                        }
                    }
                    Err(e) => violations.push(format!("reference allreduce failed: {e}")),
                }
            }
        }
    }

    for e in &sc.expect {
        let ok = match e {
            Expect::Completes => completed,
            Expect::SurvivorsBitIdentical => completed && survivors_identical,
            Expect::BitIdentical => completed && final_n == n && reference_match,
            Expect::CleanDegradation => !completed && error.is_some(),
            Expect::EpochAtLeast(k) => final_epoch >= *k,
            Expect::FaultsInjected => faults > 0,
            Expect::Retransmissions => retx > 0,
            Expect::WallUnderMs(ms) => completed && wall_ms <= *ms,
            other => {
                violations.push(unsupported(other, "ctrl"));
                continue;
            }
        };
        if !ok {
            violations.push(format!(
                "{e:?} violated (completed={completed}, survivors={final_n}/{n}, \
                 epoch={final_epoch}, faults={faults}, retx={retx})"
            ));
        }
    }
    Ok(ScenarioReport {
        scenario: sc.name.clone(),
        transport: t,
        completed,
        error,
        violations,
        fingerprint: fingerprint(completed, &detail),
        wall_ms,
        detail,
    })
}

// ----------------------------------------------------------------- sched

fn transport_sched(sc: &Scenario, t: Transport) -> Result<ScenarioReport, String> {
    let topo = &sc.topology;
    let workers = topo.workers;
    let proto = base_proto(sc);
    let f = &sc.faults;

    let jobs: Vec<SchedJob> = sc
        .jobs
        .iter()
        .enumerate()
        .map(|(j, spec)| SchedJob {
            tenant: TenantSpec {
                job: j as u8,
                class: match spec.class {
                    crate::spec::JobClass::High => Class::High,
                    crate::spec::JobClass::BestEffort => Class::BestEffort,
                },
                weight: spec.weight.max(1),
                quota: spec.quota,
                min_slots: spec.min_slots.max(1),
            },
            updates: (0..workers)
                .map(|w| vec![scenario_tensor(j * workers + w, spec.elems, TENSOR_BOUND)])
                .collect(),
            submit_at: Duration::from_millis(spec.arrival_ms),
        })
        .collect();
    let size = sched_fabric_size(&jobs);
    let cfg = SchedRunConfig {
        max_wall: sc.max_wall(),
        n_cores: topo.cores,
        capacity: topo.capacity,
        ..SchedRunConfig::default()
    };

    // Endpoint layout: 0 = switch, each job's workers in submission
    // order, last = controller. The loss storm is aimed at the target
    // job's worker endpoints (all workers when no target is named).
    let noisy: std::ops::RangeInclusive<usize> = match f.target_job {
        Some(j) => {
            let start = 1 + j as usize * workers;
            start..=start + workers - 1
        }
        None => 1..=size - 2,
    };

    fn storm_fabric<P: Port + 'static>(
        ports: Vec<P>,
        noisy: std::ops::RangeInclusive<usize>,
        loss: f64,
        seed: u64,
    ) -> Vec<FaultyPort<P>> {
        let stats = std::sync::Arc::new(FaultyStats::default());
        ports
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                let fc = if loss > 0.0 && noisy.contains(&i) {
                    FaultyConfig::loss_only(loss)
                } else {
                    FaultyConfig::default()
                };
                FaultyPort::new(
                    p,
                    fc,
                    seed.wrapping_mul(31) + i as u64,
                    std::sync::Arc::clone(&stats),
                )
            })
            .collect()
    }

    let result = match t {
        Transport::Channel => run_scheduled(
            storm_fabric(channel_fabric(size), noisy, f.loss, f.seed),
            jobs,
            &proto,
            &cfg,
        ),
        Transport::Udp => {
            let ports = udp_fabric(size).map_err(|e| format!("udp fabric: {e}"))?;
            run_scheduled(
                storm_fabric(ports, noisy, f.loss, f.seed),
                jobs,
                &proto,
                &cfg,
            )
        }
        Transport::Netsim => unreachable!(),
    };

    let mut violations = Vec::new();
    let (completed, error, detail) = match result {
        Ok(r) => (r.all_complete(), None, Detail::Sched(r)),
        Err(e) => (false, Some(e.to_string()), Detail::None),
    };

    let p99 = |mut xs: Vec<Duration>| -> Option<Duration> {
        if xs.is_empty() {
            return None;
        }
        xs.sort();
        let idx = ((xs.len() as f64) * 0.99).ceil() as usize;
        Some(xs[idx.saturating_sub(1).min(xs.len() - 1)])
    };

    let mut wall_ms = 0;
    for e in &sc.expect {
        let Detail::Sched(r) = &detail else {
            violations.push(format!("{e:?} violated (run failed before reporting)"));
            continue;
        };
        wall_ms = r.wall.as_millis() as u64;
        let ok = match e {
            Expect::Completes | Expect::AllJobsComplete => completed,
            // The storm targets worker endpoints, whose counters are
            // harvested per-job; transport_stats only covers the
            // switch and controller ports.
            Expect::FaultsInjected => {
                r.transport_stats.injected_faults()
                    + r.outcomes.iter().map(|o| o.injected_faults).sum::<u64>()
                    > 0
            }
            Expect::Retransmissions => {
                r.outcomes.iter().map(|o| o.worker_stats.retx).sum::<u64>() > 0
            }
            Expect::ZeroQuietTenantFaults => r
                .outcomes
                .iter()
                .filter(|o| Some(o.job) != f.target_job)
                .all(|o| o.injected_faults == 0),
            Expect::Resizes => r.outcomes.iter().map(|o| o.resizes as u64).sum::<u64>() > 0,
            Expect::EpochAtLeast(k) => r.outcomes.iter().map(|o| o.final_epoch).max() >= Some(*k),
            Expect::WallUnderMs(ms) => completed && wall_ms <= *ms,
            Expect::P99FirstAggregateUnderMs(ms) => {
                let p = p99(r
                    .outcomes
                    .iter()
                    .filter_map(|o| o.first_aggregate)
                    .collect());
                completed && p.is_some_and(|d| d.as_millis() as u64 <= *ms)
            }
            other => {
                violations.push(unsupported(other, "sched"));
                continue;
            }
        };
        if !ok {
            violations.push(format!("{e:?} violated (completed={completed})"));
        }
    }
    Ok(ScenarioReport {
        scenario: sc.name.clone(),
        transport: t,
        completed,
        error,
        violations,
        fingerprint: fingerprint(completed, &detail),
        wall_ms,
        detail,
    })
}

// ---------------------------------------------------------------- netsim

fn netsim_collective(sc: &Scenario, t: Transport) -> ScenarioReport {
    let topo = &sc.topology;
    let elems = sc.jobs[0].elems;
    let rto_ns = sc.rto_us * 1_000;
    let rto_policy = rto_policy_of(sc, rto_ns);
    let deadline = Some(Nanos::from_millis(sc.max_wall_ms));

    let f = &sc.faults;
    let result = if topo.racks > 1 {
        let mut h = HierScenario::new(topo.racks, topo.workers, elems);
        h.proto.k = topo.k;
        h.proto.pool_size = topo.pool_size;
        h.proto.rto_ns = rto_ns;
        h.proto.rto_policy = rto_policy;
        h.worker_link = h.worker_link.with_loss(f.loss);
        h.seed = f.seed;
        h.deadline = deadline;
        run_switchml_hierarchy(&h)
    } else {
        let mut s = SwitchMLScenario::new(topo.workers, elems);
        s.proto.k = topo.k;
        s.proto.pool_size = topo.pool_size;
        s.proto.rto_ns = rto_ns;
        s.proto.rto_policy = rto_policy;
        s.link = s
            .link
            .with_loss(f.loss)
            .with_duplication(f.dup)
            .with_reordering(f.reorder, REORDER_SPREAD);
        s.stragglers = f
            .stragglers
            .iter()
            .map(|&(w, us)| (w, Nanos::from_micros(us)))
            .collect();
        s.n_cores = topo.cores;
        s.seed = f.seed;
        s.deadline = deadline;
        run_switchml(&s)
    };

    let mut violations = Vec::new();
    let (completed, error, detail) = match result {
        Ok(o) => (o.verified, None, Detail::NetsimCollective(o)),
        Err(e) => (false, Some(e.to_string()), Detail::None),
    };
    let (faults, retx, wall_ms) = match &detail {
        Detail::NetsimCollective(o) => (
            o.report.counters.injected_faults(),
            o.total_retx,
            o.max_tat.0 / 1_000_000,
        ),
        _ => (0, 0, 0),
    };
    for e in &sc.expect {
        let ok = match e {
            Expect::Completes => completed,
            // Netsim's verification is the exact element-wise sum
            // (quantization-tolerance aware), the simulator's
            // equivalent of the bit-identity bar.
            Expect::BitIdentical => completed,
            Expect::FaultsInjected => faults > 0,
            Expect::Retransmissions => retx > 0,
            Expect::WallUnderMs(ms) => completed && wall_ms <= *ms,
            other => {
                violations.push(unsupported(other, "netsim collective"));
                continue;
            }
        };
        if !ok {
            violations.push(format!(
                "{e:?} violated (completed={completed}, faults={faults}, retx={retx}, \
                 sim_ms={wall_ms})"
            ));
        }
    }
    ScenarioReport {
        scenario: sc.name.clone(),
        transport: t,
        completed,
        error,
        violations,
        fingerprint: fingerprint(completed, &detail),
        wall_ms,
        detail,
    }
}

fn netsim_ctrl(sc: &Scenario, t: Transport) -> ScenarioReport {
    let topo = &sc.topology;
    let f = &sc.faults;
    let cs = CtrlScenario {
        n_workers: topo.workers,
        n_jobs: sc.jobs.len(),
        n_switches: if f.failover_us.is_some() { 2 } else { 1 },
        elems: sc.jobs[0].elems,
        k: topo.k,
        pool_size: topo.pool_size,
        n_cores: topo.cores,
        loss: f.loss,
        seed: f.seed,
        rto_us: sc.rto_us,
        fail_worker: f.kills.first().map(|&(w, when)| match when {
            KillWhen::ElapsedUs(us) => (w, us),
            KillWhen::AfterSends(_) => unreachable!("validated: ctrl kills are ElapsedUs"),
        }),
        fail_over: f.failover_us.map(|us| (us, 0, 1)),
        deadline_ms: sc.max_wall_ms,
        ..CtrlScenario::default()
    };
    let o = run_ctrl(&cs);

    let mut violations = Vec::new();
    let completed = o.finished;
    let n = topo.workers;

    let mut survivors_identical = true;
    for (j, per_worker) in o.results.iter().enumerate() {
        let survivors: Vec<&Vec<Vec<f32>>> = per_worker.iter().flatten().collect();
        if survivors.is_empty() {
            survivors_identical = false;
            violations.push(format!("job {j}: no surviving worker produced results"));
        } else if !survivors.iter().all(|t| *t == survivors[0]) {
            survivors_identical = false;
            violations.push(format!(
                "job {j}: survivor results differ — silent corruption"
            ));
        }
    }
    let max_epoch = o.final_epoch.iter().copied().max().unwrap_or(0);
    let full_membership = o.final_n.iter().all(|&fnl| fnl == n);
    let dropped = o.report.counters.dropped_loss;
    let wall_ms = o.report.end_time.0 / 1_000_000;

    for e in &sc.expect {
        let ok = match e {
            Expect::Completes => completed,
            Expect::SurvivorsBitIdentical => completed && survivors_identical,
            Expect::BitIdentical => completed && survivors_identical && full_membership,
            Expect::EpochAtLeast(k) => max_epoch >= *k,
            Expect::FaultsInjected => dropped > 0,
            Expect::WallUnderMs(ms) => completed && wall_ms <= *ms,
            other => {
                violations.push(unsupported(other, "netsim ctrl"));
                continue;
            }
        };
        if !ok {
            violations.push(format!(
                "{e:?} violated (completed={completed}, final_n={:?}, epoch={max_epoch}, \
                 dropped={dropped})",
                o.final_n
            ));
        }
    }
    let detail = Detail::NetsimCtrl(o);
    ScenarioReport {
        scenario: sc.name.clone(),
        transport: t,
        completed,
        error: if completed {
            None
        } else {
            Some("simulation did not converge within the deadline".into())
        },
        violations,
        fingerprint: fingerprint(completed, &detail),
        wall_ms,
        detail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::JobClass;

    fn small(name: &str) -> crate::spec::ScenarioBuilder {
        Scenario::build(name).workers(2).job_with(|j| j.elems = 256)
    }

    #[test]
    fn netsim_plain_clean_passes() {
        let sc = small("netsim-clean")
            .expect(Expect::Completes)
            .expect(Expect::BitIdentical)
            .finish()
            .unwrap();
        let r = run_scenario(&sc, Transport::Netsim).unwrap();
        assert!(r.passed(), "{:?}", r.violations);
        assert!(r.completed);
    }

    #[test]
    fn netsim_fingerprint_is_deterministic() {
        let sc = Scenario::build("netsim-fp")
            .workers(2)
            .job_with(|j| j.elems = 2048)
            .loss(0.05)
            .expect(Expect::Completes)
            .expect(Expect::FaultsInjected)
            .expect(Expect::Retransmissions)
            .finish()
            .unwrap();
        let a = run_scenario(&sc, Transport::Netsim).unwrap();
        let b = run_scenario(&sc, Transport::Netsim).unwrap();
        assert!(a.passed(), "{:?}", a.violations);
        assert_eq!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn channel_plain_loss_is_bit_identical() {
        let sc = small("chan-loss")
            .loss(0.05)
            .seed(7)
            .expect(Expect::BitIdentical)
            .expect(Expect::FaultsInjected)
            .finish()
            .unwrap();
        let r = run_scenario(&sc, Transport::Channel).unwrap();
        assert!(r.passed(), "{:?}", r.violations);
    }

    #[test]
    fn channel_kill_degrades_cleanly() {
        // Large enough that the stream is still in flight at kill time.
        let sc = Scenario::build("chan-kill")
            .workers(2)
            .job_with(|j| j.elems = 32768)
            .kill_at_us(1, 500)
            .max_wall_ms(2_000)
            .expect(Expect::CleanDegradation)
            .only(&[Transport::Channel, Transport::Udp])
            .finish()
            .unwrap();
        let r = run_scenario(&sc, Transport::Channel).unwrap();
        assert!(r.passed(), "{:?}", r.violations);
        assert!(!r.completed);
    }

    #[test]
    fn channel_ctrl_shrinks_on_kill() {
        let sc = Scenario::build("chan-ctrl-kill")
            .workers(3)
            .job_with(|j| j.elems = 16384)
            .runner(RunnerKind::Ctrl)
            .kill_at_us(1, 4_000)
            .expect(Expect::SurvivorsBitIdentical)
            .expect(Expect::EpochAtLeast(1))
            .only(&[Transport::Channel, Transport::Udp])
            .finish()
            .unwrap();
        let r = run_scenario(&sc, Transport::Channel).unwrap();
        assert!(r.passed(), "{:?}", r.violations);
        match &r.detail {
            Detail::Ctrl(rep) => assert_eq!(rep.final_n, 2),
            other => panic!("expected ctrl detail, got {other:?}"),
        }
    }

    #[test]
    fn channel_sched_two_tenants_complete() {
        let sc = Scenario::build("chan-sched")
            .runner(RunnerKind::Sched)
            .workers(2)
            .capacity(32)
            .job_with(|j| j.elems = 512)
            .job_with(|j| {
                j.elems = 512;
                j.arrival_ms = 2;
                j.class = JobClass::High;
            })
            .expect(Expect::AllJobsComplete)
            .finish()
            .unwrap();
        let r = run_scenario(&sc, Transport::Channel).unwrap();
        assert!(r.passed(), "{:?}", r.violations);
    }

    #[test]
    fn unsupported_transport_is_an_error() {
        // Batch-preserving loss is a real-transport (GSO/GRO) concept.
        let sc = small("no-netsim").loss(0.05).batch_loss().finish().unwrap();
        assert!(run_scenario(&sc, Transport::Netsim).is_err());
    }

    #[test]
    fn netsim_dup_reorder_straggler_all_inject() {
        let sc = Scenario::build("netsim-blitz")
            .workers(2)
            .job_with(|j| j.elems = 2048)
            .dup(0.05)
            .reorder(0.05)
            .straggler(1, 200)
            .seed(11)
            .expect(Expect::BitIdentical)
            .expect(Expect::FaultsInjected)
            .finish()
            .unwrap();
        let r = run_scenario(&sc, Transport::Netsim).unwrap();
        assert!(r.passed(), "{:?}", r.violations);
    }

    #[test]
    fn channel_hier_reactor_matches_reference() {
        let sc = Scenario::build("chan-hier")
            .runner(RunnerKind::Reactor { threads: 2 })
            .racks(2)
            .workers(2)
            .job_with(|j| j.elems = 512)
            .expect(Expect::Completes)
            .expect(Expect::BitIdentical)
            .finish()
            .unwrap();
        let r = run_scenario(&sc, Transport::Channel).unwrap();
        assert!(r.passed(), "{:?}", r.violations);
        match &r.detail {
            Detail::Run(rep) => {
                let h = rep.hier.as_ref().expect("hier counters present");
                assert_eq!((h.racks, h.workers_per_rack), (2, 2));
            }
            other => panic!("expected run detail, got {other:?}"),
        }
    }

    #[test]
    fn channel_hier_rack_kill_fences_epoch() {
        let sc = Scenario::build("chan-hier-kill")
            .runner(RunnerKind::Reactor { threads: 2 })
            .racks(2)
            .workers(2)
            .topology_with(|t| t.k = 32)
            .job_with(|j| j.elems = 16384)
            .kill_rack_at_us(1, 1_000)
            .expect(Expect::BitIdentical)
            .expect(Expect::EpochAtLeast(1))
            .only(&[Transport::Channel])
            .finish()
            .unwrap();
        let r = run_scenario(&sc, Transport::Channel).unwrap();
        assert!(r.passed(), "{:?}", r.violations);
    }

    #[test]
    fn netsim_ctrl_kill_shrinks() {
        let sc = Scenario::build("netsim-ctrl-kill")
            .runner(RunnerKind::Ctrl)
            .workers(4)
            .job_with(|j| j.elems = 256)
            .kill_at_us(1, 25)
            .rto_us(300)
            .max_wall_ms(500)
            .expect(Expect::SurvivorsBitIdentical)
            .expect(Expect::EpochAtLeast(1))
            .only(&[Transport::Netsim])
            .finish()
            .unwrap();
        let r = run_scenario(&sc, Transport::Netsim).unwrap();
        assert!(r.passed(), "{:?}", r.violations);
        match &r.detail {
            Detail::NetsimCtrl(o) => assert_eq!(o.final_n[0], 3),
            other => panic!("expected netsim ctrl detail, got {other:?}"),
        }
    }
}
