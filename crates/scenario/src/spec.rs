//! The scenario vocabulary: topology, workloads, faults, and
//! expectations as plain composable values.
//!
//! A [`Scenario`] is a complete, declarative description of one
//! experiment from the paper's evaluation matrix (§6): *what* runs
//! (topology + jobs), *what goes wrong* (the fault plan), and *what
//! must hold afterwards* (the expectation oracles). It says nothing
//! about *how* to run — the same value executes against the netsim
//! simulator, the in-memory channel fabric, or real UDP sockets, and
//! against the plain, sharded, reactor, ctrl, and sched runners
//! (see [`crate::run`]).

use std::time::Duration;

/// Which fabric carries the packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transport {
    /// Discrete-event simulator (`switchml-netsim`): deterministic,
    /// simulated time.
    Netsim,
    /// In-memory crossbeam channels: real threads, hermetic.
    Channel,
    /// UDP loopback sockets: real datagrams, real kernel.
    Udp,
}

impl Transport {
    pub const ALL: [Transport; 3] = [Transport::Netsim, Transport::Channel, Transport::Udp];

    pub fn name(&self) -> &'static str {
        match self {
            Transport::Netsim => "netsim",
            Transport::Channel => "channel",
            Transport::Udp => "udp",
        }
    }

    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "netsim" => Ok(Transport::Netsim),
            "channel" => Ok(Transport::Channel),
            "udp" => Ok(Transport::Udp),
            other => Err(format!("unknown transport '{other}' (netsim|channel|udp)")),
        }
    }
}

/// Which driver owns the run loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunnerKind {
    /// One switch thread + one thread per worker.
    Plain,
    /// Per-core switch shards + per-(worker, core) engine threads.
    Sharded,
    /// Run-to-completion reactor: `threads` OS threads own all engines.
    Reactor { threads: usize },
    /// Controller-managed single job: failure detection,
    /// shrink-and-resume, switch restart.
    Ctrl,
    /// Multi-tenant slot scheduler over a churning job population.
    Sched,
}

impl RunnerKind {
    pub fn name(&self) -> String {
        match self {
            RunnerKind::Plain => "plain".into(),
            RunnerKind::Sharded => "sharded".into(),
            RunnerKind::Reactor { threads } => format!("reactor:{threads}"),
            RunnerKind::Ctrl => "ctrl".into(),
            RunnerKind::Sched => "sched".into(),
        }
    }

    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "plain" => Ok(RunnerKind::Plain),
            "sharded" => Ok(RunnerKind::Sharded),
            "ctrl" => Ok(RunnerKind::Ctrl),
            "sched" => Ok(RunnerKind::Sched),
            other => {
                if let Some(t) = other.strip_prefix("reactor:") {
                    let threads: usize =
                        t.parse().map_err(|_| format!("bad thread count '{t}'"))?;
                    if threads == 0 {
                        return Err("reactor needs >= 1 thread".into());
                    }
                    Ok(RunnerKind::Reactor { threads })
                } else {
                    Err(format!(
                        "unknown runner '{other}' (plain|sharded|reactor:N|ctrl|sched)"
                    ))
                }
            }
        }
    }
}

/// The physical shape of the deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Workers per job (per rack, when `racks > 1`).
    pub workers: usize,
    /// Engine shards (cores) per worker, and switch shards.
    pub cores: usize,
    /// Racks in a two-level hierarchy; `1` = flat. Hierarchy runs on
    /// the netsim plain runner and the reactor transport runner.
    pub racks: usize,
    /// Elements per packet `k`.
    pub k: usize,
    /// Aggregator pool slots per job.
    pub pool_size: usize,
    /// Slot capacity handed to the scheduler ([`RunnerKind::Sched`]).
    pub capacity: u32,
}

impl Default for Topology {
    fn default() -> Self {
        Topology {
            workers: 2,
            cores: 1,
            racks: 1,
            k: 8,
            pool_size: 16,
            capacity: 64,
        }
    }
}

/// Priority class of a job ([`RunnerKind::Sched`] only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobClass {
    High,
    BestEffort,
}

impl JobClass {
    pub fn name(&self) -> &'static str {
        match self {
            JobClass::High => "high",
            JobClass::BestEffort => "best-effort",
        }
    }

    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "high" => Ok(JobClass::High),
            "best-effort" => Ok(JobClass::BestEffort),
            other => Err(format!("unknown class '{other}' (high|best-effort)")),
        }
    }
}

/// One workload: a job with a size, a priority, and an arrival time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSpec {
    /// Tensor elements per worker.
    pub elems: usize,
    /// Arrival relative to run start, milliseconds (sched runner;
    /// other runners require 0).
    pub arrival_ms: u64,
    pub class: JobClass,
    /// Max-min weight within the class (>= 1).
    pub weight: u32,
    /// Slot cap; 0 = uncapped.
    pub quota: u32,
    /// Guaranteed slot floor.
    pub min_slots: u32,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            elems: 4096,
            arrival_ms: 0,
            class: JobClass::BestEffort,
            weight: 1,
            quota: 0,
            min_slots: 1,
        }
    }
}

/// Retransmission-timer policy (§5.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtoMode {
    /// Jacobson/Karels adaptive RTO, clamped to `[rto/4, rto*32]`.
    Adaptive,
    /// Fixed base with exponential backoff up to `rto*32`.
    Backoff,
    /// Fixed timeout.
    Fixed,
}

impl RtoMode {
    pub fn name(&self) -> &'static str {
        match self {
            RtoMode::Adaptive => "adaptive",
            RtoMode::Backoff => "backoff",
            RtoMode::Fixed => "fixed",
        }
    }

    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "adaptive" => Ok(RtoMode::Adaptive),
            "backoff" => Ok(RtoMode::Backoff),
            "fixed" => Ok(RtoMode::Fixed),
            other => Err(format!(
                "unknown rto mode '{other}' (adaptive|backoff|fixed)"
            )),
        }
    }
}

/// When a scripted worker crash takes effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillWhen {
    /// Wall-clock (or simulated-time) microseconds into the run.
    ElapsedUs(u64),
    /// After the worker completes this many data-plane sends — "kill
    /// at chunk N" in the unit a schedule can count deterministically,
    /// independent of machine speed. Plain/sharded/reactor runners
    /// only (the scripted-port layer does the counting).
    AfterSends(u64),
}

/// Everything that goes wrong, as one declarative plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for every probabilistic layer; the whole schedule is a
    /// pure function of the scenario (faults replay exactly).
    pub seed: u64,
    /// Loss probability. Transport runners apply it on both the send
    /// and receive side of switch endpoints (the chaos-harness
    /// convention); netsim applies it to worker links; the sched
    /// runner aims a send-side storm at [`FaultPlan::target_job`].
    pub loss: f64,
    /// Duplication probability (transport runners only).
    pub dup: f64,
    /// Bounded-reordering probability, applied only where §3.5 allows
    /// (switch→worker results; transport runners only).
    pub reorder: f64,
    /// Keep faulty burst I/O on the inner transport's batch path so
    /// UDP GSO/GRO stays engaged; restricts the plan to send-side
    /// loss only (see `FaultyConfig::preserve_batches`).
    pub batch_loss: bool,
    /// `(worker, stall_us)`: delay every send from this worker.
    pub stragglers: Vec<(usize, u64)>,
    /// `(worker, when)`: scripted crashes.
    pub kills: Vec<(usize, KillWhen)>,
    /// `(rack, at_us)`: crash the rack's leaf switch this many
    /// microseconds in (hierarchy on the reactor transport runner).
    /// The replacement leaf bumps the rack epoch and re-drives only
    /// its own rack.
    pub kill_rack: Option<(usize, u64)>,
    /// Restart the switch this many milliseconds in (ctrl runner on a
    /// real transport): pool state and admissions are lost, the
    /// controller fails every job over in place.
    pub switch_restart_ms: Option<u64>,
    /// Drain switch 0 onto switch 1 at this simulated microsecond
    /// (netsim ctrl runner; implies two switches).
    pub failover_us: Option<u64>,
    /// Aim the loss storm at this job's workers only (sched runner).
    pub target_job: Option<u8>,
}

/// An expectation oracle: a property the completed run must satisfy.
/// Every scenario states its oracles explicitly; the runner evaluates
/// them and reports violations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Expect {
    /// The run completed (no error, within the wall budget).
    Completes,
    /// Every worker's final tensors are bit-identical to the lossless
    /// sequential reference (netsim: the exact-sum verification).
    BitIdentical,
    /// Every *surviving* worker agrees bit-for-bit (the §5.4
    /// consistency bar under shrink-and-resume).
    SurvivorsBitIdentical,
    /// The run must NOT complete: a reported error, never silently
    /// wrong numbers (a kill without a control plane).
    CleanDegradation,
    /// The fault plan actually hit: at least one fault was injected.
    FaultsInjected,
    /// Loss was recovered the paper's way: retransmissions > 0.
    Retransmissions,
    /// Every admitted job drained to completion with agreeing results
    /// (sched quiescence).
    AllJobsComplete,
    /// Tenants outside [`FaultPlan::target_job`] absorbed zero
    /// injected faults (the isolation ledger).
    ZeroQuietTenantFaults,
    /// The scheduler repartitioned at least one running job
    /// (preemption / departure rebalancing happened).
    Resizes,
    /// The final epoch reached at least this value (reconfigurations
    /// happened and were fenced).
    EpochAtLeast(u32),
    /// Wall clock (netsim: simulated completion time) under this
    /// bound, milliseconds.
    WallUnderMs(u64),
    /// p99 admission-to-first-aggregate across admitted jobs under
    /// this bound, milliseconds (sched runner).
    P99FirstAggregateUnderMs(u64),
}

/// One complete, named experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    pub name: String,
    /// One-line description for catalogs.
    pub descr: String,
    pub runner: RunnerKind,
    pub topology: Topology,
    pub jobs: Vec<JobSpec>,
    pub faults: FaultPlan,
    pub expect: Vec<Expect>,
    /// Wall-clock budget for real-transport runs, milliseconds.
    pub max_wall_ms: u64,
    /// Base retransmission timeout, microseconds.
    pub rto_us: u64,
    /// Retransmission-timer policy.
    pub rto_mode: RtoMode,
    /// Send burst per engine poll on the transport runners.
    pub burst: usize,
    /// Restrict to these transports. `None` derives support from the
    /// scenario's features ([`Scenario::supports`]); a library
    /// scenario narrows this when an instant (e.g. a kill time) is
    /// only meaningful on one clock.
    pub only_transports: Option<Vec<Transport>>,
}

impl Scenario {
    /// Start building a scenario with this name.
    pub fn build(name: &str) -> ScenarioBuilder {
        ScenarioBuilder::new(name)
    }

    /// Workers per job (flat) or total across racks (hierarchy).
    pub fn total_workers(&self) -> usize {
        self.topology.workers * self.topology.racks
    }

    /// Can this scenario run on `t`? Derived from its features, then
    /// narrowed by [`Scenario::only_transports`].
    pub fn supports(&self, t: Transport) -> bool {
        if let Some(only) = &self.only_transports {
            if !only.contains(&t) {
                return false;
            }
        }
        let f = &self.faults;
        match t {
            Transport::Netsim => {
                // Link-level fault injection covers loss, duplication,
                // reordering, and per-worker straggle; it still has no
                // hook for send-count kills, batch shaping, switch
                // restarts, or rack-switch crashes.
                if f.batch_loss || f.switch_restart_ms.is_some() || f.kill_rack.is_some() {
                    return false;
                }
                // Per-worker straggler links, and the §3.5 fault
                // placement for dup/reorder (results only), exist only
                // on the single-rack star; the hierarchy's duplex
                // links cannot separate the two directions.
                if (f.dup != 0.0 || f.reorder != 0.0 || !f.stragglers.is_empty())
                    && self.topology.racks != 1
                {
                    return false;
                }
                match self.runner {
                    RunnerKind::Plain => f.kills.is_empty() && f.failover_us.is_none(),
                    RunnerKind::Sharded => {
                        self.topology.racks == 1 && f.kills.is_empty() && f.failover_us.is_none()
                    }
                    RunnerKind::Ctrl => {
                        // The netsim ctrl scenario wires loss only.
                        self.topology.racks == 1
                            && f.dup == 0.0
                            && f.reorder == 0.0
                            && f.stragglers.is_empty()
                            && f.kills.len() <= 1
                            && f.kills
                                .iter()
                                .all(|(_, w)| matches!(w, KillWhen::ElapsedUs(_)))
                            && self
                                .jobs
                                .iter()
                                .all(|j| j.arrival_ms == 0 && j.elems == self.jobs[0].elems)
                    }
                    RunnerKind::Reactor { .. } | RunnerKind::Sched => false,
                }
            }
            Transport::Channel | Transport::Udp => {
                // Switch failover is simulator-only.
                if f.failover_us.is_some() {
                    return false;
                }
                if self.topology.racks != 1 {
                    // Hierarchy on a real transport runs on the reactor
                    // data plane: one job, loss faults (plain or
                    // batch-preserving) plus the scripted rack kill.
                    return matches!(self.runner, RunnerKind::Reactor { .. })
                        && self.jobs.len() == 1
                        && f.switch_restart_ms.is_none()
                        && f.kills.is_empty()
                        && f.stragglers.is_empty()
                        && f.dup == 0.0
                        && f.reorder == 0.0;
                }
                match self.runner {
                    RunnerKind::Plain | RunnerKind::Sharded | RunnerKind::Reactor { .. } => {
                        self.jobs.len() == 1 && f.switch_restart_ms.is_none()
                    }
                    RunnerKind::Ctrl => {
                        self.jobs.len() == 1
                            && f.kills.len() <= 1
                            && f.kills
                                .iter()
                                .all(|(_, w)| matches!(w, KillWhen::ElapsedUs(_)))
                            && !f.batch_loss
                    }
                    RunnerKind::Sched => {
                        f.kills.is_empty()
                            && f.stragglers.is_empty()
                            && f.dup == 0.0
                            && f.reorder == 0.0
                            && !f.batch_loss
                            && f.switch_restart_ms.is_none()
                    }
                }
            }
        }
    }

    /// Every transport this scenario can run on, in canonical order.
    pub fn supported_transports(&self) -> Vec<Transport> {
        Transport::ALL
            .into_iter()
            .filter(|t| self.supports(*t))
            .collect()
    }

    /// Structural validity: every internal cross-reference holds and
    /// the scenario runs on at least one transport.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("scenario needs a name".into());
        }
        let t = &self.topology;
        if t.workers < 1 || t.cores < 1 || t.racks < 1 || t.k < 1 || t.pool_size < 1 {
            return Err("topology: workers/cores/racks/k/pool_size must be >= 1".into());
        }
        if t.cores > t.pool_size {
            return Err(format!("{} cores need >= {} pool slots", t.cores, t.cores));
        }
        if self.jobs.is_empty() {
            return Err("at least one job".into());
        }
        for (name, p) in [
            ("loss", self.faults.loss),
            ("dup", self.faults.dup),
            ("reorder", self.faults.reorder),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("faults.{name} = {p} is not a probability"));
            }
        }
        if self.faults.batch_loss && (self.faults.dup != 0.0 || self.faults.reorder != 0.0) {
            return Err("batch_loss supports send-side loss only".into());
        }
        let n = self.total_workers();
        for &(w, _) in &self.faults.stragglers {
            if w >= n {
                return Err(format!("straggler worker {w} >= {n} workers"));
            }
        }
        for &(w, _) in &self.faults.kills {
            if w >= n {
                return Err(format!("killed worker {w} >= {n} workers"));
            }
        }
        if let Some(j) = self.faults.target_job {
            if (j as usize) >= self.jobs.len() {
                return Err(format!("target_job {j} >= {} jobs", self.jobs.len()));
            }
        }
        match self.runner {
            RunnerKind::Sched => {}
            _ => {
                if self.jobs.iter().any(|j| j.arrival_ms != 0) {
                    return Err("staggered arrivals need the sched runner".into());
                }
            }
        }
        if matches!(self.runner, RunnerKind::Reactor { threads: 0 }) {
            return Err("reactor needs >= 1 thread".into());
        }
        if self.topology.racks > 1
            && !matches!(self.runner, RunnerKind::Plain | RunnerKind::Reactor { .. })
        {
            return Err("hierarchy (racks > 1) runs on the plain or reactor runners only".into());
        }
        if let Some((rack, _)) = self.faults.kill_rack {
            if self.topology.racks < 2 {
                return Err("kill_rack needs a hierarchy (racks > 1)".into());
            }
            if rack >= self.topology.racks {
                return Err(format!(
                    "kill_rack rack {rack} >= {} racks",
                    self.topology.racks
                ));
            }
        }
        if self
            .faults
            .kills
            .iter()
            .any(|(_, w)| matches!(w, KillWhen::AfterSends(_)))
            && matches!(self.runner, RunnerKind::Ctrl | RunnerKind::Sched)
        {
            return Err("AfterSends kills need the plain/sharded/reactor runners".into());
        }
        if self.rto_us == 0 || self.max_wall_ms == 0 || self.burst == 0 {
            return Err("rto_us, max_wall_ms and burst must be nonzero".into());
        }
        if self.supported_transports().is_empty() {
            return Err(format!(
                "scenario '{}' is runnable on no transport (features conflict)",
                self.name
            ));
        }
        Ok(())
    }

    /// Wall-clock budget as a [`Duration`].
    pub fn max_wall(&self) -> Duration {
        Duration::from_millis(self.max_wall_ms)
    }
}

/// Fluent constructor for [`Scenario`] (the logos-style builder):
/// every setter returns `self`, [`ScenarioBuilder::finish`] validates.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    sc: Scenario,
}

impl ScenarioBuilder {
    pub fn new(name: &str) -> Self {
        ScenarioBuilder {
            sc: Scenario {
                name: name.to_string(),
                descr: String::new(),
                runner: RunnerKind::Plain,
                topology: Topology::default(),
                jobs: Vec::new(),
                faults: FaultPlan {
                    seed: 1,
                    ..FaultPlan::default()
                },
                expect: Vec::new(),
                max_wall_ms: 10_000,
                rto_us: 2_000,
                rto_mode: RtoMode::Adaptive,
                burst: 8,
                only_transports: None,
            },
        }
    }

    pub fn descr(mut self, d: &str) -> Self {
        self.sc.descr = d.to_string();
        self
    }

    pub fn runner(mut self, r: RunnerKind) -> Self {
        self.sc.runner = r;
        self
    }

    pub fn topology_with(mut self, f: impl FnOnce(&mut Topology)) -> Self {
        f(&mut self.sc.topology);
        self
    }

    pub fn workers(mut self, n: usize) -> Self {
        self.sc.topology.workers = n;
        self
    }

    pub fn cores(mut self, n: usize) -> Self {
        self.sc.topology.cores = n;
        self
    }

    pub fn racks(mut self, n: usize) -> Self {
        self.sc.topology.racks = n;
        self
    }

    pub fn pool(mut self, n: usize) -> Self {
        self.sc.topology.pool_size = n;
        self
    }

    pub fn k(mut self, n: usize) -> Self {
        self.sc.topology.k = n;
        self
    }

    pub fn capacity(mut self, n: u32) -> Self {
        self.sc.topology.capacity = n;
        self
    }

    /// Add one job.
    pub fn job(mut self, j: JobSpec) -> Self {
        self.sc.jobs.push(j);
        self
    }

    /// Add a default job customized in place.
    pub fn job_with(mut self, f: impl FnOnce(&mut JobSpec)) -> Self {
        let mut j = JobSpec::default();
        f(&mut j);
        self.sc.jobs.push(j);
        self
    }

    pub fn seed(mut self, s: u64) -> Self {
        self.sc.faults.seed = s;
        self
    }

    pub fn loss(mut self, p: f64) -> Self {
        self.sc.faults.loss = p;
        self
    }

    pub fn dup(mut self, p: f64) -> Self {
        self.sc.faults.dup = p;
        self
    }

    pub fn reorder(mut self, p: f64) -> Self {
        self.sc.faults.reorder = p;
        self
    }

    pub fn batch_loss(mut self) -> Self {
        self.sc.faults.batch_loss = true;
        self
    }

    pub fn straggler(mut self, worker: usize, stall_us: u64) -> Self {
        self.sc.faults.stragglers.push((worker, stall_us));
        self
    }

    pub fn kill_at_us(mut self, worker: usize, at_us: u64) -> Self {
        self.sc
            .faults
            .kills
            .push((worker, KillWhen::ElapsedUs(at_us)));
        self
    }

    pub fn kill_after_sends(mut self, worker: usize, sends: u64) -> Self {
        self.sc
            .faults
            .kills
            .push((worker, KillWhen::AfterSends(sends)));
        self
    }

    pub fn kill_rack_at_us(mut self, rack: usize, at_us: u64) -> Self {
        self.sc.faults.kill_rack = Some((rack, at_us));
        self
    }

    pub fn switch_restart_ms(mut self, ms: u64) -> Self {
        self.sc.faults.switch_restart_ms = Some(ms);
        self
    }

    pub fn failover_us(mut self, us: u64) -> Self {
        self.sc.faults.failover_us = Some(us);
        self
    }

    pub fn target_job(mut self, j: u8) -> Self {
        self.sc.faults.target_job = Some(j);
        self
    }

    pub fn expect(mut self, e: Expect) -> Self {
        self.sc.expect.push(e);
        self
    }

    pub fn max_wall_ms(mut self, ms: u64) -> Self {
        self.sc.max_wall_ms = ms;
        self
    }

    pub fn rto_us(mut self, us: u64) -> Self {
        self.sc.rto_us = us;
        self
    }

    pub fn fixed_rto(mut self) -> Self {
        self.sc.rto_mode = RtoMode::Fixed;
        self
    }

    pub fn rto_mode(mut self, m: RtoMode) -> Self {
        self.sc.rto_mode = m;
        self
    }

    pub fn burst(mut self, n: usize) -> Self {
        self.sc.burst = n;
        self
    }

    /// Narrow to these transports (overrides feature derivation).
    pub fn only(mut self, ts: &[Transport]) -> Self {
        self.sc.only_transports = Some(ts.to_vec());
        self
    }

    /// Validate and produce the scenario. A builder without jobs gets
    /// one default job.
    pub fn finish(mut self) -> Result<Scenario, String> {
        if self.sc.jobs.is_empty() {
            self.sc.jobs.push(JobSpec::default());
        }
        if self.sc.expect.is_empty() {
            self.sc.expect.push(Expect::Completes);
        }
        self.sc.validate()?;
        Ok(self.sc)
    }
}
