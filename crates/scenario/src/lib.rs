//! Declarative scenario DSL and chaos lab.
//!
//! One vocabulary — topology, workload, fault plan, expectations —
//! compiled down to every transport (netsim, channel, UDP) and every
//! runner (plain, sharded, reactor, ctrl, sched) the workspace has.
//! A [`Scenario`] is a plain value: build it with [`Scenario::build`],
//! serialize it to a `.scenario` JSON file, hand it to
//! [`run_scenario`], and check the [`ScenarioReport`] it produces.
//!
//! The standing regression suite lives in [`library`]: named, curated
//! scenarios (loss storms, stragglers, kills mid-chunk, switch
//! failover, multi-tenant churn) that CI replays against every
//! transport each scenario supports.

mod json;
pub mod library;
mod run;
mod spec;

pub use run::{run_scenario, Detail, ScenarioReport};
pub use spec::{
    Expect, FaultPlan, JobClass, JobSpec, KillWhen, RtoMode, RunnerKind, Scenario, ScenarioBuilder,
    Topology, Transport,
};
