//! `.scenario` files: hand-rolled JSON (de)serialization over the
//! vendored [`serde_json`] shim, following the same discipline as the
//! checker's `.trace` headers — explicit field-by-field conversion
//! with defaults for absent keys, so old files keep parsing as the
//! vocabulary grows.

use serde_json::{json, Value};

use crate::spec::{
    Expect, FaultPlan, JobClass, JobSpec, KillWhen, RtoMode, RunnerKind, Scenario, Topology,
    Transport,
};

fn expect_name(e: &Expect) -> String {
    match e {
        Expect::Completes => "completes".into(),
        Expect::BitIdentical => "bit-identical".into(),
        Expect::SurvivorsBitIdentical => "survivors-bit-identical".into(),
        Expect::CleanDegradation => "clean-degradation".into(),
        Expect::FaultsInjected => "faults-injected".into(),
        Expect::Retransmissions => "retransmissions".into(),
        Expect::AllJobsComplete => "all-jobs-complete".into(),
        Expect::ZeroQuietTenantFaults => "zero-quiet-tenant-faults".into(),
        Expect::Resizes => "resizes".into(),
        Expect::EpochAtLeast(n) => format!("epoch-at-least:{n}"),
        Expect::WallUnderMs(ms) => format!("wall-under-ms:{ms}"),
        Expect::P99FirstAggregateUnderMs(ms) => format!("p99-first-aggregate-under-ms:{ms}"),
    }
}

impl Expect {
    /// The oracle's catalog spelling — the same string the `.scenario`
    /// format uses, for CLI listings and experiment tables.
    pub fn label(&self) -> String {
        expect_name(self)
    }
}

fn parse_expect(s: &str) -> Result<Expect, String> {
    if let Some(n) = s.strip_prefix("epoch-at-least:") {
        return n
            .parse()
            .map(Expect::EpochAtLeast)
            .map_err(|_| format!("bad epoch '{n}'"));
    }
    if let Some(n) = s.strip_prefix("wall-under-ms:") {
        return n
            .parse()
            .map(Expect::WallUnderMs)
            .map_err(|_| format!("bad bound '{n}'"));
    }
    if let Some(n) = s.strip_prefix("p99-first-aggregate-under-ms:") {
        return n
            .parse()
            .map(Expect::P99FirstAggregateUnderMs)
            .map_err(|_| format!("bad bound '{n}'"));
    }
    match s {
        "completes" => Ok(Expect::Completes),
        "bit-identical" => Ok(Expect::BitIdentical),
        "survivors-bit-identical" => Ok(Expect::SurvivorsBitIdentical),
        "clean-degradation" => Ok(Expect::CleanDegradation),
        "faults-injected" => Ok(Expect::FaultsInjected),
        "retransmissions" => Ok(Expect::Retransmissions),
        "all-jobs-complete" => Ok(Expect::AllJobsComplete),
        "zero-quiet-tenant-faults" => Ok(Expect::ZeroQuietTenantFaults),
        "resizes" => Ok(Expect::Resizes),
        other => Err(format!("unknown expectation '{other}'")),
    }
}

impl Scenario {
    /// The scenario as a JSON value (the `.scenario` file format).
    pub fn to_json(&self) -> Value {
        let t = &self.topology;
        let f = &self.faults;
        let jobs: Vec<Value> = self
            .jobs
            .iter()
            .map(|j| {
                json!({
                    "elems": j.elems as u64,
                    "arrival_ms": j.arrival_ms,
                    "class": j.class.name(),
                    "weight": j.weight,
                    "quota": j.quota,
                    "min_slots": j.min_slots,
                })
            })
            .collect();
        let stragglers: Vec<Value> = f
            .stragglers
            .iter()
            .map(|&(w, us)| json!({"worker": w as u64, "stall_us": us}))
            .collect();
        let kills: Vec<Value> = f
            .kills
            .iter()
            .map(|&(w, when)| match when {
                KillWhen::ElapsedUs(us) => json!({"worker": w as u64, "at_us": us}),
                KillWhen::AfterSends(n) => json!({"worker": w as u64, "after_sends": n}),
            })
            .collect();
        let expect: Vec<Value> = self
            .expect
            .iter()
            .map(|e| Value::Str(expect_name(e)))
            .collect();
        let mut faults = vec![
            ("seed".to_string(), json!(f.seed)),
            ("loss".to_string(), json!(f.loss)),
            ("dup".to_string(), json!(f.dup)),
            ("reorder".to_string(), json!(f.reorder)),
            ("batch_loss".to_string(), json!(f.batch_loss)),
            ("stragglers".to_string(), Value::Array(stragglers)),
            ("kills".to_string(), Value::Array(kills)),
        ];
        if let Some((rack, us)) = f.kill_rack {
            faults.push((
                "kill_rack".to_string(),
                json!({"rack": rack as u64, "at_us": us}),
            ));
        }
        if let Some(ms) = f.switch_restart_ms {
            faults.push(("switch_restart_ms".to_string(), json!(ms)));
        }
        if let Some(us) = f.failover_us {
            faults.push(("failover_us".to_string(), json!(us)));
        }
        if let Some(j) = f.target_job {
            faults.push(("target_job".to_string(), json!(j as u64)));
        }
        let mut root = vec![
            ("name".to_string(), json!(self.name.as_str())),
            ("descr".to_string(), json!(self.descr.as_str())),
            ("runner".to_string(), json!(self.runner.name())),
            (
                "topology".to_string(),
                json!({
                    "workers": t.workers as u64,
                    "cores": t.cores as u64,
                    "racks": t.racks as u64,
                    "k": t.k as u64,
                    "pool_size": t.pool_size as u64,
                    "capacity": t.capacity,
                }),
            ),
            ("jobs".to_string(), Value::Array(jobs)),
            ("faults".to_string(), Value::Object(faults)),
            ("expect".to_string(), Value::Array(expect)),
            ("max_wall_ms".to_string(), json!(self.max_wall_ms)),
            ("rto_us".to_string(), json!(self.rto_us)),
            ("rto_mode".to_string(), json!(self.rto_mode.name())),
            ("burst".to_string(), json!(self.burst as u64)),
        ];
        if let Some(only) = &self.only_transports {
            root.push((
                "only_transports".to_string(),
                Value::Array(only.iter().map(|t| json!(t.name())).collect()),
            ));
        }
        Value::Object(root)
    }

    /// Parse a scenario from its JSON value. Missing optional keys
    /// take the builder defaults; the result is validated.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let need_str = |key: &str| -> Result<String, String> {
            v.get(key)
                .as_str()
                .map(|s| s.to_string())
                .ok_or_else(|| format!("scenario: missing or non-string '{key}'"))
        };
        let opt_u64 = |val: &Value, key: &str, default: u64| -> Result<u64, String> {
            let f = val.get(key);
            if f.is_null() {
                return Ok(default);
            }
            f.as_u64()
                .ok_or_else(|| format!("scenario: '{key}' must be an integer"))
        };
        let opt_f64 = |val: &Value, key: &str, default: f64| -> Result<f64, String> {
            let f = val.get(key);
            if f.is_null() {
                return Ok(default);
            }
            f.as_f64()
                .ok_or_else(|| format!("scenario: '{key}' must be a number"))
        };
        let opt_bool = |val: &Value, key: &str, default: bool| -> Result<bool, String> {
            let f = val.get(key);
            if f.is_null() {
                return Ok(default);
            }
            f.as_bool()
                .ok_or_else(|| format!("scenario: '{key}' must be a bool"))
        };

        let name = need_str("name")?;
        let descr = v.get("descr").as_str().unwrap_or("").to_string();
        let runner = RunnerKind::parse(&need_str("runner")?)?;

        let td = Topology::default();
        let tv = v.get("topology");
        let topology = Topology {
            workers: opt_u64(tv, "workers", td.workers as u64)? as usize,
            cores: opt_u64(tv, "cores", td.cores as u64)? as usize,
            racks: opt_u64(tv, "racks", td.racks as u64)? as usize,
            k: opt_u64(tv, "k", td.k as u64)? as usize,
            pool_size: opt_u64(tv, "pool_size", td.pool_size as u64)? as usize,
            capacity: opt_u64(tv, "capacity", td.capacity as u64)? as u32,
        };

        let jd = JobSpec::default();
        let mut jobs = Vec::new();
        if let Some(arr) = v.get("jobs").as_array() {
            for jv in arr {
                let class = match jv.get("class").as_str() {
                    Some(s) => JobClass::parse(s)?,
                    None => jd.class,
                };
                jobs.push(JobSpec {
                    elems: opt_u64(jv, "elems", jd.elems as u64)? as usize,
                    arrival_ms: opt_u64(jv, "arrival_ms", jd.arrival_ms)?,
                    class,
                    weight: opt_u64(jv, "weight", jd.weight as u64)? as u32,
                    quota: opt_u64(jv, "quota", jd.quota as u64)? as u32,
                    min_slots: opt_u64(jv, "min_slots", jd.min_slots as u64)? as u32,
                });
            }
        }
        if jobs.is_empty() {
            jobs.push(jd);
        }

        let fv = v.get("faults");
        let mut stragglers = Vec::new();
        if let Some(arr) = fv.get("stragglers").as_array() {
            for sv in arr {
                stragglers.push((
                    opt_u64(sv, "worker", 0)? as usize,
                    opt_u64(sv, "stall_us", 0)?,
                ));
            }
        }
        let mut kills = Vec::new();
        if let Some(arr) = fv.get("kills").as_array() {
            for kv in arr {
                let w = opt_u64(kv, "worker", 0)? as usize;
                let when = if !kv.get("after_sends").is_null() {
                    KillWhen::AfterSends(opt_u64(kv, "after_sends", 0)?)
                } else if !kv.get("at_us").is_null() {
                    KillWhen::ElapsedUs(opt_u64(kv, "at_us", 0)?)
                } else {
                    return Err("scenario: kill needs 'at_us' or 'after_sends'".into());
                };
                kills.push((w, when));
            }
        }
        let faults = FaultPlan {
            seed: opt_u64(fv, "seed", 1)?,
            loss: opt_f64(fv, "loss", 0.0)?,
            dup: opt_f64(fv, "dup", 0.0)?,
            reorder: opt_f64(fv, "reorder", 0.0)?,
            batch_loss: opt_bool(fv, "batch_loss", false)?,
            stragglers,
            kills,
            kill_rack: {
                let kr = fv.get("kill_rack");
                if kr.is_null() {
                    None
                } else {
                    Some((opt_u64(kr, "rack", 0)? as usize, opt_u64(kr, "at_us", 0)?))
                }
            },
            switch_restart_ms: if fv.get("switch_restart_ms").is_null() {
                None
            } else {
                Some(opt_u64(fv, "switch_restart_ms", 0)?)
            },
            failover_us: if fv.get("failover_us").is_null() {
                None
            } else {
                Some(opt_u64(fv, "failover_us", 0)?)
            },
            target_job: if fv.get("target_job").is_null() {
                None
            } else {
                Some(opt_u64(fv, "target_job", 0)? as u8)
            },
        };

        let mut expect = Vec::new();
        if let Some(arr) = v.get("expect").as_array() {
            for ev in arr {
                let s = ev
                    .as_str()
                    .ok_or_else(|| "scenario: expectations are strings".to_string())?;
                expect.push(parse_expect(s)?);
            }
        }
        if expect.is_empty() {
            expect.push(Expect::Completes);
        }

        let only_transports = if v.get("only_transports").is_null() {
            None
        } else {
            let arr = v
                .get("only_transports")
                .as_array()
                .ok_or_else(|| "scenario: 'only_transports' must be an array".to_string())?;
            let mut ts = Vec::new();
            for tv in arr {
                let s = tv
                    .as_str()
                    .ok_or_else(|| "scenario: transports are strings".to_string())?;
                ts.push(Transport::parse(s)?);
            }
            Some(ts)
        };

        let sc = Scenario {
            name,
            descr,
            runner,
            topology,
            jobs,
            faults,
            expect,
            max_wall_ms: opt_u64(v, "max_wall_ms", 10_000)?,
            rto_us: opt_u64(v, "rto_us", 2_000)?,
            rto_mode: match v.get("rto_mode").as_str() {
                Some(s) => RtoMode::parse(s)?,
                None => RtoMode::Adaptive,
            },
            burst: opt_u64(v, "burst", 8)? as usize,
            only_transports,
        };
        sc.validate()?;
        Ok(sc)
    }

    /// Pretty `.scenario` file text.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.to_json().write_pretty(&mut out, 0);
        out
    }

    /// Parse `.scenario` file text.
    pub fn from_json_str(s: &str) -> Result<Self, String> {
        let v: Value = serde_json::from_str(s).map_err(|e| e.to_string())?;
        Scenario::from_json(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Expect;

    #[test]
    fn roundtrip_full_featured() {
        let sc = Scenario::build("rt")
            .descr("round trip")
            .runner(RunnerKind::Reactor { threads: 3 })
            .workers(4)
            .cores(2)
            .pool(32)
            .k(16)
            .loss(0.05)
            .seed(9)
            .straggler(1, 250)
            .kill_after_sends(2, 40)
            .expect(Expect::CleanDegradation)
            .expect(Expect::FaultsInjected)
            .expect(Expect::WallUnderMs(9_000))
            .max_wall_ms(9_000)
            .finish()
            .unwrap();
        let text = sc.to_json_string();
        let back = Scenario::from_json_str(&text).unwrap();
        assert_eq!(sc, back);
    }

    #[test]
    fn roundtrip_sched_with_target() {
        let sc = Scenario::build("rt-sched")
            .runner(RunnerKind::Sched)
            .workers(2)
            .capacity(32)
            .job_with(|j| j.elems = 2048)
            .job_with(|j| {
                j.elems = 8192;
                j.arrival_ms = 4;
                j.class = JobClass::High;
                j.weight = 2;
            })
            .loss(0.1)
            .target_job(0)
            .expect(Expect::AllJobsComplete)
            .expect(Expect::ZeroQuietTenantFaults)
            .finish()
            .unwrap();
        let back = Scenario::from_json_str(&sc.to_json_string()).unwrap();
        assert_eq!(sc, back);
    }

    #[test]
    fn missing_optional_keys_take_defaults() {
        let v: Value = serde_json::from_str(r#"{"name": "minimal", "runner": "plain"}"#).unwrap();
        let sc = Scenario::from_json(&v).unwrap();
        assert_eq!(sc.jobs.len(), 1);
        assert_eq!(sc.topology.workers, 2);
        assert_eq!(sc.expect, vec![Expect::Completes]);
        assert_eq!(sc.rto_us, 2_000);
    }

    #[test]
    fn bad_expectation_rejected() {
        let v: Value =
            serde_json::from_str(r#"{"name": "x", "runner": "plain", "expect": ["nonsense"]}"#)
                .unwrap();
        assert!(Scenario::from_json(&v).is_err());
    }
}
