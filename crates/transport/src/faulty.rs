//! Full fault-injecting transport wrapper: send-side loss, recv-side
//! loss, duplication, and bounded reordering — each with its own
//! probability, all deterministic per seed. [`crate::lossy`] remains
//! the loss-only convenience layer on top of this.
//!
//! Reordering is bounded the way real fabrics reorder: a held datagram
//! is released after at most [`FaultyConfig::reorder_span`] subsequent
//! sends, so the protocol's one-phase-lag assumption (§3.5 — a packet
//! never survives past its slot's reuse) stays realistic. Unbounded
//! holding is the model checker's job (`switchml-check`), not the
//! threaded fabric's.

use crate::port::Port;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

/// Per-fault probabilities and bounds. All probabilities default to
/// zero: a default `FaultyPort` is a transparent wrapper.
#[derive(Debug, Clone, Copy)]
pub struct FaultyConfig {
    /// P(an outgoing datagram is silently dropped).
    pub send_drop: f64,
    /// P(an arriving datagram is dropped before the caller sees it).
    pub recv_drop: f64,
    /// P(an outgoing datagram is sent twice).
    pub dup: f64,
    /// P(an outgoing datagram is held back and released later).
    pub reorder: f64,
    /// A held datagram is released after at most this many subsequent
    /// sends on the same port.
    pub reorder_span: u32,
    /// Cap on concurrently held datagrams per port; when full,
    /// reordering is skipped rather than queued unboundedly.
    pub max_held: usize,
    /// Keep burst I/O on the inner transport's *batch* path: dropped
    /// frames are filtered out of an outgoing burst (the survivors go
    /// down in one `send_batch`) and burst receives delegate straight
    /// to the inner `recv_batch`. Kernel offloads that only engage on
    /// whole bursts — UDP GSO/GRO super-datagrams — keep engaging
    /// under injected loss. Restricted to send-side loss only
    /// (`recv_drop`/`dup`/`reorder` must be zero): those faults
    /// reshape a burst in ways a pass-through cannot express.
    pub preserve_batches: bool,
}

impl Default for FaultyConfig {
    fn default() -> Self {
        FaultyConfig {
            send_drop: 0.0,
            recv_drop: 0.0,
            dup: 0.0,
            reorder: 0.0,
            reorder_span: 3,
            max_held: 8,
            preserve_batches: false,
        }
    }
}

impl FaultyConfig {
    /// Send-side loss only — what [`crate::lossy::lossy_fabric`] uses.
    pub fn loss_only(p: f64) -> Self {
        FaultyConfig {
            send_drop: p,
            ..FaultyConfig::default()
        }
    }

    /// Send-side loss that filters whole bursts instead of shaping
    /// frame by frame, so GSO/GRO stays engaged underneath.
    pub fn batch_loss_only(p: f64) -> Self {
        FaultyConfig {
            send_drop: p,
            preserve_batches: true,
            ..FaultyConfig::default()
        }
    }

    fn validate(&self) {
        for (name, p) in [
            ("send_drop", self.send_drop),
            ("recv_drop", self.recv_drop),
            ("dup", self.dup),
            ("reorder", self.reorder),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} = {p} not a probability");
        }
        if self.preserve_batches {
            assert!(
                self.recv_drop == 0.0 && self.dup == 0.0 && self.reorder == 0.0,
                "preserve_batches supports send-side loss only"
            );
        }
    }
}

/// Shared fault statistics across all wrapped ports of one fabric.
#[derive(Debug, Default)]
pub struct FaultyStats {
    inner: Mutex<Counters>,
}

#[derive(Debug, Default, Clone, Copy)]
struct Counters {
    sent: u64,
    dropped: u64,
    duplicated: u64,
    reordered: u64,
    recv_dropped: u64,
}

impl FaultyStats {
    pub fn sent(&self) -> u64 {
        self.inner.lock().sent
    }
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }
    pub fn duplicated(&self) -> u64 {
        self.inner.lock().duplicated
    }
    pub fn reordered(&self) -> u64 {
        self.inner.lock().reordered
    }
    pub fn recv_dropped(&self) -> u64 {
        self.inner.lock().recv_dropped
    }
}

struct Held {
    to: usize,
    data: Vec<u8>,
    /// Released when this reaches zero; decremented on every send.
    countdown: u32,
}

/// A port with configurable, seed-deterministic fault injection.
pub struct FaultyPort<P: Port> {
    inner: P,
    cfg: FaultyConfig,
    rng: SmallRng,
    held: Vec<Held>,
    stats: Arc<FaultyStats>,
    /// This port's own share of the fabric-wide counters. `stats()`
    /// reports these — the shared [`FaultyStats`] covers the whole
    /// fabric, so surfacing it per port would multiply-count faults
    /// when a runner merges every port's `PortStats`.
    local: Counters,
}

impl<P: Port> FaultyPort<P> {
    pub fn new(inner: P, cfg: FaultyConfig, seed: u64, stats: Arc<FaultyStats>) -> Self {
        cfg.validate();
        FaultyPort {
            inner,
            cfg,
            rng: SmallRng::seed_from_u64(seed),
            held: Vec::new(),
            stats,
            local: Counters::default(),
        }
    }

    fn roll(&mut self, p: f64) -> bool {
        p > 0.0 && self.rng.gen_bool(p)
    }

    /// Age held datagrams by one send and release the expired ones.
    fn tick_held(&mut self) {
        let mut i = 0;
        while i < self.held.len() {
            if self.held[i].countdown == 0 {
                let h = self.held.swap_remove(i);
                self.inner.send(h.to, &h.data);
            } else {
                self.held[i].countdown -= 1;
                i += 1;
            }
        }
    }
}

/// Wrap every port of a fabric with the same fault configuration.
/// Each port gets a distinct RNG stream derived from `seed`, so the
/// whole fabric's behavior is a pure function of `(cfg, seed)`.
pub fn faulty_fabric<P: Port>(
    ports: Vec<P>,
    cfg: FaultyConfig,
    seed: u64,
) -> (Vec<FaultyPort<P>>, Arc<FaultyStats>) {
    let stats = Arc::new(FaultyStats::default());
    let wrapped = ports
        .into_iter()
        .enumerate()
        .map(|(i, port)| {
            FaultyPort::new(port, cfg, seed.wrapping_add(i as u64), Arc::clone(&stats))
        })
        .collect();
    (wrapped, stats)
}

impl<P: Port> Drop for FaultyPort<P> {
    /// Reordering bounds delay; it must not turn into loss when the
    /// port closes with datagrams still held back.
    fn drop(&mut self) {
        for h in std::mem::take(&mut self.held) {
            self.inner.send(h.to, &h.data);
        }
    }
}

impl<P: Port> Port for FaultyPort<P> {
    fn n_endpoints(&self) -> usize {
        self.inner.n_endpoints()
    }

    fn index(&self) -> usize {
        self.inner.index()
    }

    fn send(&mut self, to: usize, data: &[u8]) {
        self.stats.inner.lock().sent += 1;
        self.local.sent += 1;
        if self.roll(self.cfg.send_drop) {
            self.stats.inner.lock().dropped += 1;
            self.local.dropped += 1;
            self.tick_held();
            return;
        }
        if self.roll(self.cfg.reorder) && self.held.len() < self.cfg.max_held {
            self.stats.inner.lock().reordered += 1;
            self.local.reordered += 1;
            self.held.push(Held {
                to,
                data: data.to_vec(),
                countdown: self.cfg.reorder_span,
            });
        } else {
            self.inner.send(to, data);
            if self.roll(self.cfg.dup) {
                self.stats.inner.lock().duplicated += 1;
                self.local.duplicated += 1;
                self.inner.send(to, data);
            }
        }
        self.tick_held();
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Option<(usize, Vec<u8>)> {
        loop {
            let got = self.inner.recv_timeout(timeout)?;
            if self.roll(self.cfg.recv_drop) {
                self.stats.inner.lock().recv_dropped += 1;
                self.local.recv_dropped += 1;
                continue;
            }
            return Some(got);
        }
    }

    // Without `preserve_batches`, send_batch / recv_batch route every
    // frame through this wrapper's faulty send / recv_timeout (the
    // trait-default discipline), so burst I/O sees exactly the same
    // fault schedule as per-datagram I/O. With it, bursts stay bursts:
    // survivors of a send-side roll go down in one inner `send_batch`
    // and receives delegate wholesale, keeping GSO/GRO engaged.

    fn send_batch(&mut self, dests: &[usize], frames: &[Vec<u8>]) {
        debug_assert_eq!(dests.len(), frames.len());
        if !self.cfg.preserve_batches {
            for (&to, frame) in dests.iter().zip(frames) {
                self.send(to, frame);
            }
            return;
        }
        // One roll per frame (same RNG discipline as per-frame sends),
        // then the survivors in a single inner batch.
        let mut drops = 0u64;
        let mut kept_dests: Vec<usize> = Vec::with_capacity(dests.len());
        let mut kept_frames: Vec<Vec<u8>> = Vec::with_capacity(frames.len());
        for (&to, frame) in dests.iter().zip(frames) {
            if self.roll(self.cfg.send_drop) {
                drops += 1;
            } else {
                kept_dests.push(to);
                kept_frames.push(frame.clone());
            }
        }
        {
            let mut s = self.stats.inner.lock();
            s.sent += dests.len() as u64;
            s.dropped += drops;
        }
        self.local.sent += dests.len() as u64;
        self.local.dropped += drops;
        if drops == 0 {
            self.inner.send_batch(dests, frames);
        } else if !kept_dests.is_empty() {
            self.inner.send_batch(&kept_dests, &kept_frames);
        }
    }

    fn recv_batch(&mut self, bufs: &mut crate::port::BurstBuf, timeout: Duration) -> usize {
        if self.cfg.preserve_batches {
            // recv_drop is zero by validation; delegate so the inner
            // transport's multi-frame path (GRO) stays on.
            return self.inner.recv_batch(bufs, timeout);
        }
        bufs.clear();
        let mut wait = timeout;
        while !bufs.is_full() {
            let got = {
                let slot = bufs.next_slot();
                self.recv_into(slot, wait)
            };
            match got {
                Some(from) => bufs.commit_next(from),
                None => break,
            }
            wait = Duration::ZERO;
        }
        bufs.len()
    }

    fn stats(&self) -> crate::port::PortStats {
        let mut s = self.inner.stats();
        s.injected_send_drops += self.local.dropped;
        s.injected_recv_drops += self.local.recv_dropped;
        s.injected_dups += self.local.duplicated;
        s.injected_reorders += self.local.reordered;
        s
    }

    fn timeout_granule(&self) -> Option<Duration> {
        self.inner.timeout_granule()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::channel_fabric;
    use crate::runner::{run_allreduce, RunConfig};
    use switchml_core::config::Protocol;

    fn chaos() -> FaultyConfig {
        FaultyConfig {
            send_drop: 0.03,
            recv_drop: 0.03,
            dup: 0.05,
            reorder: 0.1,
            reorder_span: 3,
            max_held: 8,
            ..FaultyConfig::default()
        }
    }

    /// `preserve_batches` loss: every staged frame either arrives or
    /// is counted dropped, batches go down the inner batch path, and
    /// the schedule is still a pure function of the seed.
    #[test]
    fn batch_preserving_loss_filters_bursts() {
        use crate::port::{BurstBuf, TxBatch};
        let run = |seed: u64| {
            let (mut ports, stats) =
                faulty_fabric(channel_fabric(2), FaultyConfig::batch_loss_only(0.2), seed);
            let mut rx = ports.pop().unwrap();
            let mut tx = ports.pop().unwrap();
            let mut batch = TxBatch::new(4);
            for i in 0..300u16 {
                batch.push(1).extend_from_slice(&i.to_be_bytes());
                if batch.len() == 10 {
                    batch.flush(&mut tx);
                }
            }
            batch.flush(&mut tx);
            let mut bufs = BurstBuf::new(16, 4);
            let mut seen = Vec::new();
            while rx.recv_batch(&mut bufs, Duration::from_millis(5)) > 0 {
                for (_, frame) in bufs.iter() {
                    seen.push(u16::from_be_bytes([frame[0], frame[1]]));
                }
            }
            assert_eq!(seen.len() as u64 + stats.dropped(), 300);
            assert!((20..=120).contains(&stats.dropped()), "{}", stats.dropped());
            // Loss only, in-order transport: survivors sorted + unique.
            assert!(seen.windows(2).all(|w| w[0] < w[1]));
            seen
        };
        assert_eq!(run(77), run(77), "schedule must be seed-deterministic");
    }

    /// Push a fixed workload through a 2-port faulty fabric and record
    /// exactly what the receiver sees.
    fn observe(cfg: FaultyConfig, seed: u64) -> Vec<Vec<u8>> {
        let (mut ports, _stats) = faulty_fabric(channel_fabric(2), cfg, seed);
        let mut rx = ports.pop().unwrap();
        let mut tx = ports.pop().unwrap();
        for i in 0..200u8 {
            tx.send(1, &[i]);
        }
        drop(tx); // flush any still-held datagrams
        let mut seen = Vec::new();
        while let Some((_, data)) = rx.recv_timeout(Duration::from_millis(1)) {
            seen.push(data);
        }
        seen
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let a = observe(chaos(), 1234);
        let b = observe(chaos(), 1234);
        assert_eq!(a, b, "identical seeds must inject identical faults");
        let c = observe(chaos(), 5678);
        assert_ne!(a, c, "different seeds should differ somewhere");
    }

    #[test]
    fn duplicates_and_reorders_show_up() {
        let cfg = FaultyConfig {
            dup: 0.3,
            reorder: 0.3,
            ..FaultyConfig::default()
        };
        let (mut ports, stats) = faulty_fabric(channel_fabric(2), cfg, 7);
        let mut rx = ports.pop().unwrap();
        let mut tx = ports.pop().unwrap();
        for i in 0..200u8 {
            tx.send(1, &[i]);
        }
        drop(tx); // flush any still-held datagrams
        let mut seen = Vec::new();
        while let Some((_, data)) = rx.recv_timeout(Duration::from_millis(1)) {
            seen.push(data[0]);
        }
        assert!(stats.duplicated() > 0, "no duplicates at p=0.3");
        assert!(stats.reordered() > 0, "no reorders at p=0.3");
        // No loss configured: everything sent arrives (held packets
        // release within reorder_span sends), plus the duplicates.
        assert_eq!(seen.len() as u64, 200 + stats.duplicated());
        assert!(
            seen.windows(2).any(|w| w[0] > w[1]),
            "reordering never changed arrival order"
        );
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 200, "a datagram went missing");
    }

    /// The trait's default `recv_batch` over a faulty port: burst
    /// receive must see the same loss discipline as per-datagram
    /// receive — nothing delivered twice, everything either delivered
    /// or counted as recv-dropped.
    #[test]
    fn recv_batch_under_loss_uses_default_impl() {
        use crate::port::{BurstBuf, TxBatch};
        let cfg = FaultyConfig {
            recv_drop: 0.3,
            ..FaultyConfig::default()
        };
        let (mut ports, stats) = faulty_fabric(channel_fabric(2), cfg, 31);
        let mut rx = ports.pop().unwrap();
        let mut tx = ports.pop().unwrap();
        let mut batch = TxBatch::new(4);
        for i in 0..300u16 {
            batch.push(1).extend_from_slice(&i.to_be_bytes());
            if batch.len() == 10 {
                batch.flush(&mut tx);
            }
        }
        batch.flush(&mut tx);
        let mut bufs = BurstBuf::new(16, 4);
        let mut seen = Vec::new();
        let mut multi_frame_bursts = 0u32;
        loop {
            let n = rx.recv_batch(&mut bufs, Duration::from_millis(5));
            if n == 0 {
                break;
            }
            if n > 1 {
                multi_frame_bursts += 1;
            }
            for (from, frame) in bufs.iter() {
                assert_eq!(from, 0);
                seen.push(u16::from_be_bytes([frame[0], frame[1]]));
            }
        }
        assert_eq!(seen.len() as u64 + stats.recv_dropped(), 300);
        assert!((30..=160).contains(&stats.recv_dropped()));
        assert!(multi_frame_bursts > 0, "bursts never batched");
        // In-order channel + drops only: survivors stay sorted and
        // unique.
        assert!(seen.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn recv_drop_loses_datagrams() {
        let cfg = FaultyConfig {
            recv_drop: 0.5,
            ..FaultyConfig::default()
        };
        let (mut ports, stats) = faulty_fabric(channel_fabric(2), cfg, 21);
        let mut rx = ports.pop().unwrap();
        let mut tx = ports.pop().unwrap();
        for i in 0..200u8 {
            tx.send(1, &[i]);
        }
        let mut received = 0u64;
        while rx.recv_timeout(Duration::from_millis(1)).is_some() {
            received += 1;
        }
        assert_eq!(received + stats.recv_dropped(), 200);
        assert!((40..=160).contains(&stats.recv_dropped()));
    }

    /// The full allreduce must converge to the right sums through a
    /// fabric that drops (both sides), duplicates, and reorders —
    /// duplicates exercising the switch's `seen` bitmap and the
    /// workers' stale-result paths end to end.
    ///
    /// Reordering is only injected on the switch→worker result path.
    /// Holding a worker→switch *update* past its slot's phase boundary
    /// breaks Algorithm 3's bounded packet-lifetime assumption (§3.5's
    /// self-clocking argument): the next-phase contribution clears the
    /// stale update's `seen` bit, the late release then looks fresh
    /// and poisons the pool — the exact ABA schedule `switchml-check`
    /// ages out of its model (see its `world` module docs). The paper's
    /// rack fabric never does this; a faulty fabric that did would be
    /// testing a scenario outside the protocol's contract.
    #[test]
    fn allreduce_converges_under_chaos() {
        let n = 3;
        let elems = 400;
        let proto = Protocol {
            n_workers: n,
            k: 8,
            pool_size: 16,
            rto_ns: 2_000_000,
            scaling_factor: 10_000.0,
            ..Protocol::default()
        };
        let updates: Vec<Vec<Vec<f32>>> = (0..n)
            .map(|w| {
                vec![(0..elems)
                    .map(|i| (w + 1) as f32 + (i % 5) as f32 * 0.1)
                    .collect()]
            })
            .collect();
        let stats = Arc::new(FaultyStats::default());
        let worker_cfg = FaultyConfig {
            reorder: 0.0,
            ..chaos()
        };
        let ports: Vec<FaultyPort<_>> = channel_fabric(n + 1)
            .into_iter()
            .enumerate()
            .map(|(i, port)| {
                let cfg = if i == 0 { chaos() } else { worker_cfg };
                FaultyPort::new(port, cfg, 99 + i as u64, Arc::clone(&stats))
            })
            .collect();
        let report = run_allreduce(ports, updates, &proto, &RunConfig::default()).unwrap();
        assert!(stats.dropped() + stats.recv_dropped() > 0, "no faults hit");
        assert!(stats.duplicated() > 0, "no duplicates hit");
        // The injected faults also surface per-port through `PortStats`
        // and sum to the fabric-wide totals in the run report.
        let t = &report.transport_stats;
        assert_eq!(t.injected_send_drops, stats.dropped());
        assert_eq!(t.injected_recv_drops, stats.recv_dropped());
        assert_eq!(t.injected_dups, stats.duplicated());
        assert_eq!(t.injected_reorders, stats.reordered());
        assert!(t.injected_faults() > 0);
        for r in &report.results {
            for (i, a) in r[0].iter().enumerate() {
                let want = (1..=n).map(|w| w as f32).sum::<f32>() + n as f32 * (i % 5) as f32 * 0.1;
                assert!((a - want).abs() < 0.01, "elem {i}: {a} vs {want}");
            }
        }
    }
}
