//! True multi-core sharded data plane: one thread per switch shard and
//! one thread per (worker, core), with no locks anywhere on the
//! aggregation path.
//!
//! The paper's design (§3.5) shards "slots and chunks of tensors across
//! cores without any shared state": the Tofino pipeline is naturally
//! parallel per packet, and the DPDK workers pin one slot range + one
//! contiguous chunk range to each core, with NIC Flow Director steering
//! each result packet back to the core that owns its slot. This module
//! reproduces that architecture in threads:
//!
//! * The switch becomes `n_cores` **shards**, each its own thread with
//!   its own [`ReliableSwitch`] and its own fabric endpoint. Shard `j`
//!   owns pool slots `[j·s/c, (j+1)·s/c)` — the identical partition the
//!   worker applies ([`switchml_core::worker::Worker::sharded`]), so a
//!   shard only ever receives updates for slots it owns and the shards
//!   never share a byte of state.
//! * Each worker becomes `n_cores` **core threads**, each driving a
//!   bare [`SlotEngine`] over its slot/chunk partition. The per-core
//!   endpoint plays the role of a Flow-Director-steered NIC queue:
//!   shard `j` multicasts results only to the `n` core-`j` endpoints,
//!   so a core thread receives exactly the results for slots it owns.
//!
//! The per-packet path is allocation-free in steady state on both
//! sides: core threads quantize with [`quantize_chunk`] into a reused
//! `i32` scratch, encode with [`encode_update_into`] into a reused wire
//! buffer, and parse results as borrowed [`PacketView`]s, dequantizing
//! straight into the core-local slice of the result tensor; shards
//! aggregate views into slot registers and encode responses from them
//! ([`switchml_core::switch::reliable::ReliableSwitch::on_view`]).
//!
//! ## Endpoint layout
//!
//! With `c = n_cores` and `n` workers, the fabric has `c·(n+1)`
//! endpoints: shard `j` is endpoint `j`, and worker `w`'s core `j` is
//! endpoint `c + w·c + j` (see [`shard_endpoint`] /
//! [`worker_core_endpoint`]).

use crate::port::{BurstBuf, IdleBackoff, Port, PortStats, TxBatch};
use crate::runner::{RunConfig, RunReport, SCRATCH_CAPACITY};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use switchml_core::config::{NumericMode, Protocol};
use switchml_core::error::{Error, Result};
use switchml_core::packet::{encode_update_into, PacketKind, PacketView, WireElems, WorkerId};
use switchml_core::quant::fixed::{dequantize_chunk, quantize_chunk};
use switchml_core::switch::reliable::ReliableSwitch;
use switchml_core::switch::{SwitchStats, WireAction};
use switchml_core::worker::engine::{
    EngineConfig, EngineStats, ResultOutcome, SendDescriptor, SlotEngine,
};

/// Fabric endpoint of switch shard `j`.
pub fn shard_endpoint(shard: usize) -> usize {
    shard
}

/// Fabric endpoint of worker `wid`'s core `core` (out of `n_cores`).
pub fn worker_core_endpoint(wid: usize, core: usize, n_cores: usize) -> usize {
    n_cores + wid * n_cores + core
}

/// Number of fabric endpoints a sharded run needs.
pub fn sharded_fabric_size(n_workers: usize, n_cores: usize) -> usize {
    n_cores * (n_workers + 1)
}

/// One switch shard: a full reliable switch whose traffic is restricted
/// (by the endpoint layout) to its slot range. Results go back to the
/// `n` core-`shard` worker endpoints — the multicast group of this
/// "queue".
pub(crate) fn shard_switch_loop<P: Port>(
    mut port: P,
    shard: usize,
    n_cores: usize,
    burst: usize,
    proto: &Protocol,
    stop: &AtomicBool,
    deadline: Instant,
) -> Result<(SwitchStats, PortStats)> {
    let n = proto.n_workers;
    let mut switch = ReliableSwitch::new(proto)?;
    // Debug builds audit every shard against the Algorithm 3
    // reference model (see `switchml_core::oracle`).
    #[cfg(debug_assertions)]
    let mut oracle = switchml_core::oracle::ReliableOracle::for_switch(&switch);
    // Burst-drained, allocation-free steady state: received frames
    // stay in `rxb`'s preallocated slots, responses are encoded into
    // `tx` and staged in `txb`, and the whole burst's responses go out
    // in one batched send.
    let mut rxb = BurstBuf::new(burst, SCRATCH_CAPACITY);
    let mut txb = TxBatch::new(SCRATCH_CAPACITY);
    let mut tx = Vec::with_capacity(SCRATCH_CAPACITY);
    // Reactor-style non-blocking poll (the `Duration::ZERO` contract):
    // the shard never parks inside the transport, so the same loop
    // shape serves blocking-averse hosts and lets the hierarchy's
    // leaf/spine loops share the pattern. A miss yields, a persistent
    // miss naps (bounded), so idle shards don't starve worker threads.
    let mut idle = IdleBackoff::new();
    while !stop.load(Ordering::Acquire) {
        if Instant::now() > deadline {
            return Err(Error::ProtocolViolation(format!(
                "switch shard {shard} exceeded the wall-clock budget"
            )));
        }
        if port.recv_batch(&mut rxb, Duration::ZERO) == 0 {
            idle.idle(None);
            continue;
        }
        idle.progress();
        txb.clear();
        for (_from, frame) in rxb.iter() {
            let Ok(view) = PacketView::parse(frame) else {
                continue; // corrupted / foreign datagram
            };
            let action = switch.on_view(&view, &mut tx)?;
            #[cfg(debug_assertions)]
            if view.kind() == switchml_core::packet::PacketKind::Update {
                if let Err(v) = oracle.observe_update(
                    view.wid(),
                    view.ver(),
                    view.idx(),
                    view.off(),
                    &view,
                    switchml_core::oracle::ObservedAction::of_wire(&action),
                    &switch,
                ) {
                    panic!("switch shard {shard} violated a protocol invariant: {v}");
                }
            }
            match action {
                WireAction::Multicast => {
                    for w in 0..n {
                        txb.push(worker_core_endpoint(w, shard, n_cores))
                            .extend_from_slice(&tx);
                    }
                }
                WireAction::Unicast(wid) => {
                    txb.push(worker_core_endpoint(wid as usize, shard, n_cores))
                        .extend_from_slice(&tx);
                }
                WireAction::Drop => {}
            }
        }
        txb.flush(&mut port);
    }
    Ok((switch.stats(), port.stats()))
}

/// Quantize + encode one update into a staged batch frame, entirely
/// within reused scratch buffers.
#[allow(clippy::too_many_arguments)]
pub(crate) fn stage_update(
    txb: &mut TxBatch,
    shard_ep: usize,
    wid: WorkerId,
    k: usize,
    data: &[f32],
    f: f64,
    qbuf: &mut [i32],
    d: SendDescriptor,
) {
    let off = d.off as usize;
    let n = k.min(data.len() - off);
    quantize_chunk(&data[off..off + n], f, &mut qbuf[..n]);
    // The wire format always carries exactly k elements; a ragged
    // final chunk is zero-padded (additive identity).
    qbuf[n..k].fill(0);
    let tx = txb.push(shard_ep);
    // Standalone sharded runs are job generation 0; epoch-bearing runs
    // (shrink-and-resume) go through switchml-ctrl, which restamps.
    encode_update_into(
        wid,
        d.ver,
        d.slot,
        d.off,
        0,
        d.retransmission,
        &qbuf[..k],
        tx,
    );
}

/// One worker core: drives a bare [`SlotEngine`] over its slot/chunk
/// partition, writing dequantized aggregates into a core-local result
/// slice covering elements `[elem_lo, elem_hi)` of the flattened
/// tensor. Returns that slice plus the engine's stats.
#[allow(clippy::too_many_arguments)]
fn core_loop<P: Port>(
    mut port: P,
    mut engine: SlotEngine,
    shard_ep: usize,
    wid: WorkerId,
    k: usize,
    burst: usize,
    data: &[f32],
    f: f64,
    elem_lo: usize,
    elem_hi: usize,
    deadline: Instant,
    epoch: Instant,
) -> Result<(Vec<f32>, EngineStats, PortStats)> {
    let now_ns = || epoch.elapsed().as_nanos() as u64;
    let mut local = vec![0.0f32; elem_hi - elem_lo];
    let mut qbuf = vec![0i32; k];
    let mut rxb = BurstBuf::new(burst, SCRATCH_CAPACITY);
    let mut txb = TxBatch::new(SCRATCH_CAPACITY);
    for d in engine.start(now_ns()) {
        stage_update(&mut txb, shard_ep, wid, k, data, f, &mut qbuf, d);
    }
    txb.flush(&mut port);
    while !engine.is_done() {
        if Instant::now() > deadline {
            return Err(Error::ProtocolViolation(format!(
                "worker {wid} core thread exceeded the wall-clock budget \
                 ({}/{} chunks done)",
                engine.completed_chunks(),
                engine.config().n_chunks
            )));
        }
        let wait = engine
            .next_deadline()
            .map(|d| d.saturating_sub(now_ns()))
            .unwrap_or(1_000_000)
            .clamp(1, 5_000_000); // poll at least every 5 ms
        if port.recv_batch(&mut rxb, Duration::from_nanos(wait)) > 0 {
            for (_from, frame) in rxb.iter() {
                let Ok(view) = PacketView::parse(frame) else {
                    continue;
                };
                // Defensive filters: only full-k results for slots this
                // core owns. The endpoint layout makes violations
                // impossible absent corruption.
                if view.kind() == PacketKind::Result
                    && engine.owns_slot(view.idx())
                    && view.k() == k
                {
                    match engine.on_result(view.idx(), view.ver(), view.off(), now_ns())? {
                        ResultOutcome::Accepted { off, next } => {
                            // A ragged final chunk only carries n live
                            // elements; the rest is padding.
                            let off = off as usize;
                            let n = k.min(data.len() - off);
                            view.overwrite_into(&mut qbuf[..k]);
                            dequantize_chunk(
                                &qbuf[..n],
                                f,
                                &mut local[off - elem_lo..off - elem_lo + n],
                            );
                            if let Some(d) = next {
                                stage_update(&mut txb, shard_ep, wid, k, data, f, &mut qbuf, d);
                            }
                        }
                        ResultOutcome::Stale => {}
                    }
                }
            }
        }
        let t = now_ns();
        if engine.next_deadline().is_some_and(|d| d <= t) {
            for d in engine.expired(t) {
                stage_update(&mut txb, shard_ep, wid, k, data, f, &mut qbuf, d);
            }
        }
        txb.flush(&mut port);
    }
    Ok((local, engine.stats(), port.stats()))
}

/// Run one all-reduce with `cfg.n_cores` switch shards and
/// `cfg.n_cores` threads per worker — the fully parallel counterpart of
/// [`crate::runner::run_allreduce`], which drives all of a worker's
/// engine shards from a single thread.
///
/// `ports` must hold [`sharded_fabric_size`] endpoints laid out as
/// described in the module docs (build one with e.g.
/// [`crate::channel::channel_fabric`] or [`sharded_channel_fabric`]).
/// Only [`NumericMode::Fixed32`] is supported: core threads quantize
/// directly from the flattened tensor rather than going through a
/// [`switchml_core::worker::stream::TensorStream`].
pub fn run_allreduce_sharded<P: Port + 'static>(
    ports: Vec<P>,
    updates: Vec<Vec<Vec<f32>>>,
    proto: &Protocol,
    cfg: &RunConfig,
) -> Result<RunReport> {
    let proto = &crate::runner::resolve_run_proto(proto, &ports)?;
    let n = proto.n_workers;
    let c = cfg.n_cores;
    if proto.mode != NumericMode::Fixed32 {
        return Err(Error::InvalidConfig(
            "sharded runner supports Fixed32 only".into(),
        ));
    }
    if c == 0 {
        return Err(Error::InvalidConfig("n_cores must be > 0".into()));
    }
    if c > proto.pool_size {
        return Err(Error::InvalidConfig(format!(
            "{c} cores need at least {c} pool slots"
        )));
    }
    if updates.len() != n {
        return Err(Error::InvalidConfig(format!(
            "need {} update sets, got {}",
            n,
            updates.len()
        )));
    }
    if ports.len() != sharded_fabric_size(n, c) {
        return Err(Error::InvalidConfig(format!(
            "need {} ports ({c} shards + {n}×{c} worker cores), got {}",
            sharded_fabric_size(n, c),
            ports.len()
        )));
    }
    let shapes: Vec<usize> = updates[0].iter().map(|t| t.len()).collect();
    for (w, tensors) in updates.iter().enumerate() {
        let s: Vec<usize> = tensors.iter().map(|t| t.len()).collect();
        if s != shapes {
            return Err(Error::InvalidConfig(format!(
                "worker {w}'s tensor shapes disagree with worker 0's"
            )));
        }
    }

    // Flatten each worker's tensors into one contiguous stream, shared
    // read-only across its core threads.
    let flat: Vec<Arc<Vec<f32>>> = updates
        .into_iter()
        .map(|tensors| Arc::new(tensors.into_iter().flatten().collect::<Vec<f32>>()))
        .collect();
    let total: usize = shapes.iter().sum();
    let total_chunks = (total as u64).div_ceil(proto.k as u64);
    let k = proto.k;
    let f = proto.scaling_factor;
    let s = proto.pool_size;

    let t0 = Instant::now();
    let epoch = t0;
    let deadline = t0 + cfg.max_wall;
    let stop = Arc::new(AtomicBool::new(false));

    let mut ports = ports;
    // Peel off per-worker core ports (endpoints c..c·(n+1)), then the
    // shard ports (endpoints 0..c).
    let mut core_ports: Vec<Vec<P>> = Vec::with_capacity(n);
    let mut rest = ports.split_off(c);
    for _ in 0..n {
        let tail = rest.split_off(c);
        core_ports.push(rest);
        rest = tail;
    }
    let shard_ports = ports;

    std::thread::scope(|scope| {
        let shard_handles: Vec<_> = shard_ports
            .into_iter()
            .enumerate()
            .map(|(j, port)| {
                let stop = Arc::clone(&stop);
                let proto = proto.clone();
                let burst = cfg.burst;
                scope.spawn(move || shard_switch_loop(port, j, c, burst, &proto, &stop, deadline))
            })
            .collect();

        // handles[w][j] drives worker w's core j.
        let mut core_handles: Vec<Vec<_>> = Vec::with_capacity(n);
        for (w, worker_ports) in core_ports.into_iter().enumerate() {
            let mut per_core = Vec::with_capacity(c);
            for (j, port) in worker_ports.into_iter().enumerate() {
                let data = Arc::clone(&flat[w]);
                // The same partition Worker::sharded applies: slots and
                // chunks both split j·x/c contiguously, so core j's
                // slots all live on shard j.
                let slot_lo = j * s / c;
                let slot_hi = (j + 1) * s / c;
                let chunk_lo = (j as u64) * total_chunks / c as u64;
                let chunk_hi = (j as u64 + 1) * total_chunks / c as u64;
                let ecfg = EngineConfig {
                    wid: w as WorkerId,
                    k,
                    slot_base: slot_lo as u32,
                    n_slots: slot_hi - slot_lo,
                    chunk_base: chunk_lo,
                    n_chunks: chunk_hi - chunk_lo,
                    rto: Some(proto.rto_ns),
                    rto_policy: proto.rto_policy,
                };
                let elem_lo = (chunk_lo as usize * k).min(total);
                let elem_hi = (chunk_hi as usize * k).min(total);
                let burst = cfg.burst;
                per_core.push(scope.spawn(move || {
                    let engine = SlotEngine::new(ecfg)?;
                    core_loop(
                        port,
                        engine,
                        shard_endpoint(j),
                        w as WorkerId,
                        k,
                        burst,
                        &data,
                        f,
                        elem_lo,
                        elem_hi,
                        deadline,
                        epoch,
                    )
                }));
            }
            core_handles.push(per_core);
        }

        let mut results = Vec::with_capacity(n);
        let mut worker_stats = Vec::with_capacity(n);
        let mut transport_stats = PortStats::default();
        let mut first_err = None;
        for per_core in core_handles {
            let mut flat_result = vec![0.0f32; total];
            let mut stats = EngineStats::default();
            let mut elem_base = 0usize;
            for (j, h) in per_core.into_iter().enumerate() {
                let chunk_lo = (j as u64) * total_chunks / c as u64;
                let chunk_hi = (j as u64 + 1) * total_chunks / c as u64;
                let lo = (chunk_lo as usize * k).min(total);
                let hi = (chunk_hi as usize * k).min(total);
                debug_assert_eq!(lo, elem_base);
                match h.join().expect("worker core thread panicked") {
                    Ok((local, st, ps)) => {
                        flat_result[lo..hi].copy_from_slice(&local);
                        stats.merge(st);
                        transport_stats.merge(ps);
                    }
                    Err(e) => first_err = first_err.or(Some(e)),
                }
                elem_base = hi;
            }
            // Split the flattened sum back into the caller's tensors.
            let mut tensors = Vec::with_capacity(shapes.len());
            let mut off = 0usize;
            for &len in &shapes {
                tensors.push(flat_result[off..off + len].to_vec());
                off += len;
            }
            results.push(tensors);
            worker_stats.push(stats);
        }
        stop.store(true, Ordering::Release);
        let mut switch_stats = SwitchStats::default();
        for h in shard_handles {
            let (st, ps) = h.join().expect("switch shard thread panicked")?;
            switch_stats.merge(st);
            transport_stats.merge(ps);
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        Ok(RunReport {
            results,
            worker_stats,
            switch_stats,
            transport_stats,
            reactor: None,
            hier: None,
            wall: t0.elapsed(),
        })
    })
}

/// Convenience: an in-memory fabric sized for a sharded run.
pub fn sharded_channel_fabric(
    n_workers: usize,
    n_cores: usize,
) -> Vec<crate::channel::ChannelPort> {
    crate::channel::channel_fabric(sharded_fabric_size(n_workers, n_cores))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lossy::lossy_fabric;
    use crate::runner::run_allreduce;
    use crate::udp::udp_fabric;

    fn proto(n: usize) -> Protocol {
        Protocol {
            n_workers: n,
            k: 8,
            pool_size: 16,
            rto_ns: 2_000_000, // 2 ms real time
            scaling_factor: 10_000.0,
            ..Protocol::default()
        }
    }

    fn updates(n: usize, elems: usize) -> Vec<Vec<Vec<f32>>> {
        (0..n)
            .map(|w| {
                vec![(0..elems)
                    .map(|i| (w + 1) as f32 + (i % 5) as f32 * 0.1)
                    .collect()]
            })
            .collect()
    }

    fn check(report: &RunReport, n: usize, elems: usize) {
        let want: Vec<f32> = (0..elems)
            .map(|i| (1..=n).map(|w| w as f32).sum::<f32>() + n as f32 * (i % 5) as f32 * 0.1)
            .collect();
        for r in &report.results {
            assert_eq!(r.len(), 1);
            for (a, b) in r[0].iter().zip(&want) {
                assert!((a - b).abs() < 0.01, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn sharded_allreduce_2_workers_4_cores() {
        let n = 2;
        let c = 4;
        let elems = 1000;
        let ports = sharded_channel_fabric(n, c);
        let cfg = RunConfig {
            n_cores: c,
            ..RunConfig::default()
        };
        let report = run_allreduce_sharded(ports, updates(n, elems), &proto(n), &cfg).unwrap();
        check(&report, n, elems);
        assert_eq!(report.worker_stats.len(), n);
        // Every chunk completes exactly once, summed across shards.
        assert_eq!(report.switch_stats.completions as usize, elems.div_ceil(8));
    }

    #[test]
    fn sharded_matches_single_core_runner() {
        // n_cores = 1 degenerates to the plain runner's topology (one
        // shard, one thread per worker); results must agree exactly —
        // quantization is deterministic.
        let n = 3;
        let elems = 333; // ragged final chunk
        let p = proto(n);
        let cfg = RunConfig {
            n_cores: 1,
            ..RunConfig::default()
        };
        let sharded =
            run_allreduce_sharded(sharded_channel_fabric(n, 1), updates(n, elems), &p, &cfg)
                .unwrap();
        let plain = run_allreduce(
            crate::channel::channel_fabric(n + 1),
            updates(n, elems),
            &p,
            &cfg,
        )
        .unwrap();
        assert_eq!(sharded.results[0], plain.results[0]);
        check(&sharded, n, elems);
    }

    #[test]
    fn sharded_allreduce_with_loss_recovers() {
        let n = 2;
        let c = 2;
        let elems = 400;
        let (ports, stats) = lossy_fabric(sharded_channel_fabric(n, c), 0.05, 77);
        let cfg = RunConfig {
            n_cores: c,
            ..RunConfig::default()
        };
        let report = run_allreduce_sharded(ports, updates(n, elems), &proto(n), &cfg).unwrap();
        check(&report, n, elems);
        assert!(stats.dropped() > 0, "5% loss should drop something");
        let retx: u64 = report.worker_stats.iter().map(|s| s.retx).sum();
        assert!(retx > 0, "losses must trigger retransmissions");
    }

    #[test]
    fn sharded_udp_smoke() {
        let n = 2;
        let c = 2;
        let elems = 256;
        let ports = udp_fabric(sharded_fabric_size(n, c)).unwrap();
        let cfg = RunConfig {
            n_cores: c,
            ..RunConfig::default()
        };
        let report = run_allreduce_sharded(ports, updates(n, elems), &proto(n), &cfg).unwrap();
        check(&report, n, elems);
    }

    #[test]
    fn multi_tensor_shapes_roundtrip() {
        let n = 2;
        let c = 2;
        // Two tensors of different sizes; the flatten/split must be
        // invisible to the caller.
        let updates: Vec<Vec<Vec<f32>>> = (0..n)
            .map(|w| {
                vec![
                    vec![(w + 1) as f32; 37],
                    (0..100).map(|i| (w as f32) + i as f32 * 0.01).collect(),
                ]
            })
            .collect();
        let cfg = RunConfig {
            n_cores: c,
            ..RunConfig::default()
        };
        let report =
            run_allreduce_sharded(sharded_channel_fabric(n, c), updates, &proto(n), &cfg).unwrap();
        for r in &report.results {
            assert_eq!(r.len(), 2);
            assert_eq!(r[0].len(), 37);
            assert_eq!(r[1].len(), 100);
            for &x in &r[0] {
                assert!((x - 3.0).abs() < 0.01); // 1 + 2
            }
            for (i, &x) in r[1].iter().enumerate() {
                let want = 1.0 + 2.0 * i as f32 * 0.01;
                assert!((x - want).abs() < 0.01, "elem {i}: {x} vs {want}");
            }
        }
    }

    #[test]
    fn misconfiguration_rejected() {
        let n = 2;
        let cfg = RunConfig {
            n_cores: 2,
            ..RunConfig::default()
        };
        // Wrong port count.
        assert!(run_allreduce_sharded(
            sharded_channel_fabric(n, 1),
            updates(n, 16),
            &proto(n),
            &cfg
        )
        .is_err());
        // Non-Fixed32 mode.
        let p16 = Protocol {
            mode: NumericMode::Float16,
            ..proto(n)
        };
        assert!(
            run_allreduce_sharded(sharded_channel_fabric(n, 2), updates(n, 16), &p16, &cfg)
                .is_err()
        );
        // More cores than pool slots.
        let big = RunConfig {
            n_cores: 32,
            ..RunConfig::default()
        };
        assert!(run_allreduce_sharded(
            sharded_channel_fabric(n, 32),
            updates(n, 16),
            &proto(n),
            &big
        )
        .is_err());
        // Mismatched tensor shapes across workers.
        let bad = vec![vec![vec![1.0f32; 8]], vec![vec![1.0f32; 9]]];
        assert!(run_allreduce_sharded(sharded_channel_fabric(n, 2), bad, &proto(n), &cfg).is_err());
    }
}
