//! UDP loopback transport: the protocol over real sockets.
//!
//! Each endpoint binds an ephemeral 127.0.0.1 socket; the fabric
//! builder exchanges addresses up front (the static rack wiring of the
//! paper's deployment). UDP gives exactly the delivery model SwitchML
//! assumes — unordered, unreliable datagrams — so the worker-driven
//! retransmission path is exercised for real whenever the kernel
//! drops under load.
//!
//! ## The burst fast path
//!
//! The paper's end host reaches line rate only by amortizing
//! per-packet I/O cost: DPDK workers pull *bursts* of packets per core
//! (§5.2). The kernel-socket analogue has two layers, both used by
//! [`UdpPort::send_batch`]/[`UdpPort::recv_batch`] on 64-bit Linux
//! (declared directly against the C ABI below; other targets fall back
//! to the [`Port`] trait's per-datagram loop):
//!
//! * **`sendmmsg`/`recvmmsg`** — one syscall moves a whole burst,
//!   amortizing syscall entry and the per-call `recvmmsg` setup;
//! * **UDP GSO/GRO** — on virtualized hosts syscall entry is cheap and
//!   the dominant cost is the per-datagram traversal of the network
//!   stack itself. A run of equal-size frames to one destination is
//!   handed to the kernel as a *single* `UDP_SEGMENT` super-datagram
//!   (one skb through the stack, split at delivery), and a receiver
//!   whose burst capacity is at least [`GRO_MIN_BURST`] opts into
//!   `UDP_GRO`, so a whole train arrives in one `recvmsg` and is split
//!   in userspace. Either side degrades independently: a GSO train
//!   sent to a non-GRO socket is segmented by the kernel at delivery,
//!   and a GRO socket receives plain datagrams as trains of one.
//!
//! Three further per-packet costs are engineered away:
//!
//! * the kernel read timeout is **cached** and only re-armed when the
//!   requested timeout actually changes (the old code issued a
//!   `setsockopt` before *every* receive);
//! * sender lookup is a prebuilt `HashMap<SocketAddr, usize>` instead
//!   of a linear scan of the peer table, with a last-sender raw-bytes
//!   cache in front of it on the batch path;
//! * receives run **spin-then-block**: while traffic is flowing
//!   ("hot"), the port polls non-blocking (`MSG_DONTWAIT`) for a short
//!   spin budget before falling back to a blocking wait — so a loaded
//!   switch loop never touches the timeout machinery at all, and an
//!   idle one parks in the kernel instead of burning the CPU.

use crate::port::{BurstBuf, Port, PortStats};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::time::Duration;
use switchml_core::packet::{HEADER_LEN, MAX_K};

/// Largest datagram we expect (max-`k` packet + headroom).
const MAX_DATAGRAM: usize = HEADER_LEN + 4 * MAX_K + 36;

/// Most frames one `sendmmsg`/`recvmmsg` call moves; larger bursts
/// are split. Bounds the per-call stack arrays.
pub const MAX_WIRE_BURST: usize = 64;

/// Non-blocking polls attempted while "hot" before arming the blocking
/// timeout. Loopback delivery is synchronous, so a small budget is
/// enough to catch a peer that is actively transmitting.
const SPIN_POLLS: u32 = 32;

/// Read-timeout values are rounded *up* to this granularity before
/// arming, so retransmission-clock timeouts that differ by microseconds
/// hit the armed-value cache instead of issuing a `setsockopt`. The
/// worker re-checks its deadlines after every wake, so waking late by
/// less than one granule only delays a retransmission, never loses one.
const TIMEOUT_GRANULE: Duration = Duration::from_micros(100);

/// A `recv_batch` whose burst capacity reaches this threshold opts the
/// socket into `UDP_GRO`: below it, train delivery would mostly spill
/// into the leftover stage instead of amortizing anything.
pub const GRO_MIN_BURST: usize = 8;

/// Same-destination, equal-size runs of at least this length are sent
/// as one `UDP_SEGMENT` super-datagram.
const GSO_MIN_RUN: usize = 2;

/// Segments per GSO super-datagram, capped below the kernel's
/// `UDP_MAX_SEGMENTS`.
const MAX_GSO_SEGS: usize = 64;

/// A UDP payload (and therefore a GSO train) cannot exceed this.
const MAX_UDP_PAYLOAD: usize = 65_507;

/// One UDP endpoint of a loopback fabric.
pub struct UdpPort {
    index: usize,
    socket: UdpSocket,
    peers: Vec<SocketAddr>,
    /// O(1) sender lookup, built once by [`udp_fabric`].
    peer_index: HashMap<SocketAddr, usize>,
    #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
    peer_sa: Vec<mmsg::sockaddr_in>,
    /// Last sender resolved on the batch receive path, as raw
    /// `(sin_addr, sin_port)` → endpoint index. Datagrams arrive in
    /// runs from one peer (workers only hear their shard; shard bursts
    /// come from one worker's `TxBatch` flush), so an 8-byte compare
    /// resolves almost every frame without touching the `SocketAddr`
    /// hash map.
    #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
    last_sender: Option<((u32, u16), usize)>,
    /// `UDP_SEGMENT` sends are attempted until the kernel rejects one.
    #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
    gso_ok: bool,
    /// Staging for `UDP_GRO` trains; allocated on first opt-in.
    #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
    gro: Option<Box<GroStage>>,
    /// The `UDP_GRO` setsockopt is attempted at most once.
    #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
    gro_tried: bool,
    buf: Box<[u8; MAX_DATAGRAM]>,
    /// The read timeout currently armed in the kernel, if any.
    armed_timeout: Option<Duration>,
    /// `setsockopt(SO_RCVTIMEO)` calls actually issued.
    rearms: u64,
    send_errors: u64,
    /// Adaptive receive mode: the last receive returned data, so the
    /// next one spins before blocking.
    hot: bool,
}

/// One received `UDP_GRO` train (or plain datagram), handed out
/// segment by segment. `seg` is the kernel-reported `gso_size`; the
/// last segment may be shorter.
#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
struct GroStage {
    buf: [u8; MAX_UDP_PAYLOAD + 29],
    len: usize,
    off: usize,
    seg: usize,
    /// Resolved sender of the whole train (one train = one datagram on
    /// the wire = one source); `None` means the train was filtered.
    from: Option<usize>,
}

#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
impl GroStage {
    fn new() -> Box<Self> {
        Box::new(GroStage {
            buf: [0; MAX_UDP_PAYLOAD + 29],
            len: 0,
            off: 0,
            seg: 1,
            from: None,
        })
    }
}

/// Build a fabric of `n` UDP endpoints on loopback.
pub fn udp_fabric(n: usize) -> io::Result<Vec<UdpPort>> {
    let sockets: Vec<UdpSocket> = (0..n)
        .map(|_| UdpSocket::bind(("127.0.0.1", 0)))
        .collect::<io::Result<_>>()?;
    let peers: Vec<SocketAddr> = sockets
        .iter()
        .map(|s| s.local_addr())
        .collect::<io::Result<_>>()?;
    let peer_index: HashMap<SocketAddr, usize> = peers
        .iter()
        .enumerate()
        .map(|(i, &addr)| (addr, i))
        .collect();
    sockets
        .into_iter()
        .enumerate()
        .map(|(index, socket)| {
            Ok(UdpPort {
                index,
                socket,
                #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
                peer_sa: peers.iter().map(mmsg::sockaddr_of).collect(),
                #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
                last_sender: None,
                #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
                gso_ok: true,
                #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
                gro: None,
                #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
                gro_tried: false,
                peers: peers.clone(),
                peer_index: peer_index.clone(),
                buf: Box::new([0u8; MAX_DATAGRAM]),
                armed_timeout: None,
                rearms: 0,
                send_errors: 0,
                hot: false,
            })
        })
        .collect()
}

impl UdpPort {
    /// Arm the kernel read timeout, skipping the `setsockopt` when the
    /// (granule-rounded) value is already armed.
    fn arm_timeout(&mut self, timeout: Duration) -> io::Result<()> {
        // A zero timeout would mean "block forever" to the kernel;
        // rounding up to the granule also maximizes cache hits.
        let granule = TIMEOUT_GRANULE.as_nanos();
        let t =
            Duration::from_nanos(((timeout.as_nanos().max(1)).div_ceil(granule) * granule) as u64);
        if self.armed_timeout != Some(t) {
            self.socket.set_read_timeout(Some(t))?;
            self.armed_timeout = Some(t);
            self.rearms += 1;
        }
        Ok(())
    }

    /// `setsockopt(SO_RCVTIMEO)` calls issued so far — the cached-
    /// timeout invariant: steady-state loops with a fixed timeout must
    /// keep this at 1.
    pub fn timeout_rearms(&self) -> u64 {
        self.rearms
    }

    fn lookup(&self, addr: &SocketAddr) -> Option<usize> {
        self.peer_index.get(addr).copied()
    }

    fn recv_one(&mut self, timeout: Duration) -> Option<(usize, usize)> {
        // A port that has opted into GRO must keep receiving through
        // the train stage even on the scalar path, or a multi-segment
        // train would be truncated to one datagram.
        #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
        if self.gro.is_some() {
            return self.recv_one_gro(timeout);
        }
        self.arm_timeout(timeout).ok()?;
        let (len, addr) = self.socket.recv_from(self.buf.as_mut_slice()).ok()?;
        let from = self.lookup(&addr)?;
        Some((from, len))
    }
}

impl Port for UdpPort {
    fn n_endpoints(&self) -> usize {
        self.peers.len()
    }

    fn index(&self) -> usize {
        self.index
    }

    fn send(&mut self, to: usize, data: &[u8]) {
        // UDP send failures (ENOBUFS under load, EMSGSIZE for an
        // oversized datagram) are equivalent to loss; the protocol's
        // retransmission handles them. Count them so callers can tell
        // kernel drops from in-fabric loss.
        if self.socket.send_to(data, self.peers[to]).is_err() {
            self.send_errors += 1;
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Option<(usize, Vec<u8>)> {
        let (from, len) = self.recv_one(timeout)?;
        Some((from, self.buf[..len].to_vec()))
    }

    fn recv_into(&mut self, buf: &mut Vec<u8>, timeout: Duration) -> Option<usize> {
        // Straight from the socket's internal buffer into the caller's
        // scratch: no per-datagram allocation.
        let (from, len) = self.recv_one(timeout)?;
        buf.clear();
        buf.extend_from_slice(&self.buf[..len]);
        Some(from)
    }

    #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
    fn send_batch(&mut self, dests: &[usize], frames: &[Vec<u8>]) {
        debug_assert_eq!(dests.len(), frames.len());
        let mut off = 0;
        while off < dests.len() {
            let end = (off + MAX_WIRE_BURST).min(dests.len());
            self.send_chunk(dests, frames, off, end);
            off = end;
        }
    }

    #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
    fn recv_batch(&mut self, bufs: &mut BurstBuf, timeout: Duration) -> usize {
        bufs.clear();
        // A burst-capable caller opts the socket into GRO train
        // delivery (once); tiny bursts stay on the classic path, where
        // per-datagram delivery cannot overflow their frames.
        if !self.gro_tried && bufs.capacity() >= GRO_MIN_BURST {
            self.gro_tried = true;
            if mmsg::enable_gro(&self.socket) {
                self.gro = Some(GroStage::new());
            }
        }
        if self.gro.is_some() {
            return self.recv_batch_gro(bufs, timeout);
        }
        // Pure non-blocking poll (reactor loops): drain what the
        // kernel has queued and return. `arm_timeout` cannot express
        // this — it rounds zero up to the timeout granule (zero means
        // block-forever to the kernel) — so it is bypassed entirely.
        if timeout.is_zero() {
            let n = self.recvmmsg_into(bufs, mmsg::MSG_DONTWAIT);
            self.hot = n > 0;
            return n;
        }
        // Spin phase: while traffic is flowing, poll non-blocking for
        // a short budget — no timeout syscalls, no kernel sleep.
        if self.hot {
            for _ in 0..SPIN_POLLS {
                if self.recvmmsg_into(bufs, mmsg::MSG_DONTWAIT) > 0 {
                    return bufs.len();
                }
                std::hint::spin_loop();
            }
        }
        // Block phase: arm the (cached) timeout and wait for the first
        // datagram; MSG_WAITFORONE then drains whatever else is already
        // queued without waiting for a full burst.
        if self.arm_timeout(timeout).is_err() {
            self.hot = false;
            return 0;
        }
        let n = self.recvmmsg_into(bufs, mmsg::MSG_WAITFORONE);
        self.hot = n > 0;
        n
    }

    fn stats(&self) -> PortStats {
        PortStats {
            send_errors: self.send_errors,
            ..PortStats::default()
        }
    }

    fn timeout_granule(&self) -> Option<Duration> {
        Some(TIMEOUT_GRANULE)
    }
}

#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
impl UdpPort {
    /// Send `frames[off..end]` (at most [`MAX_WIRE_BURST`] frames):
    /// frames are grouped by destination into `UDP_SEGMENT`
    /// super-datagrams (equal sizes per train, one shorter tail
    /// allowed), and all resulting messages go to the kernel in one
    /// `sendmmsg`. A receiver that has not opted into GRO sees
    /// ordinary individual datagrams — the kernel segments the train
    /// at delivery.
    ///
    /// Grouping reorders frames *across* destinations (a multicast
    /// burst `w0,w1,w0,w1,…` becomes one train per worker), which UDP
    /// permits: the fabric makes no ordering promise, and the protocol
    /// is already correct under arbitrary datagram reordering.
    fn send_chunk(&mut self, dests: &[usize], frames: &[Vec<u8>], off: usize, end: usize) {
        use mmsg::*;
        use std::os::fd::AsRawFd;
        let n = end - off;
        debug_assert!(n <= MAX_WIRE_BURST);
        let mut iovs: [iovec; MAX_WIRE_BURST] = unsafe { std::mem::zeroed() };
        let mut iov_frame = [0usize; MAX_WIRE_BURST];
        let mut hdrs: [mmsghdr; MAX_WIRE_BURST] = unsafe { std::mem::zeroed() };
        let mut ctls: [cmsg_seg; MAX_WIRE_BURST] = unsafe { std::mem::zeroed() };
        // (first iov index, segment count) per message.
        let mut spans = [(0usize, 0usize); MAX_WIRE_BURST];
        let mut taken = 0u64; // frames already assigned to a message
        let mut iov_at = 0;
        let mut m = 0;
        for i in off..end {
            if taken & (1 << (i - off)) != 0 {
                continue;
            }
            let dest = dests[i];
            let seg = frames[i].len();
            let start = iov_at;
            let mut count = 0;
            let mut bytes = 0;
            for j in i..end {
                if taken & (1 << (j - off)) != 0 || dests[j] != dest {
                    continue;
                }
                let l = frames[j].len();
                // Train rules: equal-size segments, one shorter tail;
                // a train never outgrows the kernel's caps. A frame
                // that does not fit stays for a later message.
                if count > 0
                    && (l > seg
                        || l == 0
                        || seg == 0
                        || count >= MAX_GSO_SEGS
                        || bytes + l > MAX_UDP_PAYLOAD)
                {
                    break;
                }
                iovs[iov_at] = iovec {
                    // The kernel only reads through send iovecs.
                    iov_base: frames[j].as_ptr() as *mut core::ffi::c_void,
                    iov_len: l,
                };
                iov_frame[iov_at] = j;
                iov_at += 1;
                taken |= 1 << (j - off);
                count += 1;
                bytes += l;
                if !self.gso_ok || l < seg {
                    break; // singletons only, or a short tail closes the train
                }
            }
            let h = &mut hdrs[m].msg_hdr;
            h.msg_name = &self.peer_sa[dest] as *const sockaddr_in as *mut core::ffi::c_void;
            h.msg_namelen = std::mem::size_of::<sockaddr_in>() as u32;
            h.msg_iov = &mut iovs[start];
            h.msg_iovlen = count;
            if count >= GSO_MIN_RUN {
                ctls[m] = cmsg_seg::new(seg as u16);
                h.msg_control = &mut ctls[m] as *mut cmsg_seg as *mut core::ffi::c_void;
                h.msg_controllen = std::mem::size_of::<cmsg_seg>();
            }
            spans[m] = (start, count);
            m += 1;
        }
        let mut sent = 0;
        while sent < m {
            // SAFETY: hdrs/iovs/ctls outlive the call; every pointer
            // targets live storage of at least the stated length.
            let r = unsafe {
                sendmmsg(
                    self.socket.as_raw_fd(),
                    hdrs[sent..].as_mut_ptr(),
                    (m - sent) as u32,
                    0,
                )
            };
            if r > 0 {
                sent += r as usize;
                continue;
            }
            // The head message failed outright.
            let (start, count) = spans[sent];
            if count >= GSO_MIN_RUN {
                // The super-datagram was rejected — a kernel or path
                // without UDP_SEGMENT. Disable GSO for the life of the
                // port and resend this train's frames individually;
                // nothing is lost.
                self.gso_ok = false;
                for &f in &iov_frame[start..start + count] {
                    self.send(dests[f], &frames[f]);
                }
            } else {
                // A plain datagram failed (EMSGSIZE, ENOBUFS): count
                // it as lost and move past it.
                self.send_errors += 1;
            }
            sent += 1;
        }
    }

    /// One `recvmmsg` filling up to `bufs.capacity()` frames (clamped
    /// to [`MAX_WIRE_BURST`]); frames from addresses outside the
    /// fabric are dropped. Returns committed frames.
    fn recvmmsg_into(&mut self, bufs: &mut BurstBuf, flags: i32) -> usize {
        use mmsg::*;
        use std::os::fd::AsRawFd;
        let want = bufs.capacity().min(MAX_WIRE_BURST);
        let mut addrs = [sockaddr_in::default(); MAX_WIRE_BURST];
        let mut iovs: [iovec; MAX_WIRE_BURST] = unsafe { std::mem::zeroed() };
        let mut hdrs: [mmsghdr; MAX_WIRE_BURST] = unsafe { std::mem::zeroed() };
        {
            let frames = bufs.storage_mut();
            for i in 0..want {
                let f = &mut frames[i];
                iovs[i] = iovec {
                    iov_base: f.as_mut_ptr() as *mut core::ffi::c_void,
                    iov_len: f.capacity(),
                };
                hdrs[i].msg_hdr.msg_name =
                    &mut addrs[i] as *mut sockaddr_in as *mut core::ffi::c_void;
                hdrs[i].msg_hdr.msg_namelen = std::mem::size_of::<sockaddr_in>() as u32;
                hdrs[i].msg_hdr.msg_iov = &mut iovs[i];
                hdrs[i].msg_hdr.msg_iovlen = 1;
            }
        }
        // SAFETY: every msg_hdr points at live, exclusively-borrowed
        // storage (frame capacity as iov_len, so the kernel cannot
        // overrun); timeout is unused (SO_RCVTIMEO governs blocking).
        let r = unsafe {
            recvmmsg(
                self.socket.as_raw_fd(),
                hdrs.as_mut_ptr(),
                want as u32,
                flags,
                std::ptr::null_mut(),
            )
        };
        if r <= 0 {
            return 0;
        }
        for i in 0..r as usize {
            let len = (hdrs[i].msg_len as usize).min(MAX_DATAGRAM);
            // SAFETY: the kernel wrote msg_len bytes into frame i's
            // storage, and iov_len bounded it by the capacity.
            unsafe { bufs.set_frame_len(i, len) };
            if let Some(from) = self.resolve_sender(&addrs[i]) {
                bufs.commit_at(i, from);
            }
        }
        bufs.len()
    }

    /// Raw sockaddr → endpoint index: an 8-byte compare against the
    /// cached last sender on the hot path, falling back to the
    /// `SocketAddr` map (and refreshing the cache) on a run boundary.
    fn resolve_sender(&mut self, sa: &mmsg::sockaddr_in) -> Option<usize> {
        if sa.sin_family != mmsg::AF_INET {
            return None;
        }
        let key = (sa.sin_addr, sa.sin_port);
        if let Some((cached, from)) = self.last_sender {
            if cached == key {
                return Some(from);
            }
        }
        let from = mmsg::addr_of(sa).and_then(|a| self.lookup(&a))?;
        self.last_sender = Some((key, from));
        Some(from)
    }

    /// One `recvmsg` into the GRO stage. Returns true when a message
    /// (a coalesced train or a single datagram) arrived; the train may
    /// still be filtered if its sender is outside the fabric.
    fn fill_stage(&mut self, flags: i32) -> bool {
        use mmsg::*;
        use std::os::fd::AsRawFd;
        let mut sa = sockaddr_in::default();
        let mut ctl: cmsg_space = unsafe { std::mem::zeroed() };
        let (r, seg) = {
            let g = self.gro.as_mut().expect("gro stage exists once enabled");
            let mut iov = iovec {
                iov_base: g.buf.as_mut_ptr() as *mut core::ffi::c_void,
                iov_len: g.buf.len(),
            };
            let mut msg: msghdr = unsafe { std::mem::zeroed() };
            msg.msg_name = &mut sa as *mut sockaddr_in as *mut core::ffi::c_void;
            msg.msg_namelen = std::mem::size_of::<sockaddr_in>() as u32;
            msg.msg_iov = &mut iov;
            msg.msg_iovlen = 1;
            msg.msg_control = &mut ctl as *mut cmsg_space as *mut core::ffi::c_void;
            msg.msg_controllen = std::mem::size_of::<cmsg_space>();
            // SAFETY: every msg pointer targets live local storage of
            // the stated length; the kernel writes within those bounds.
            let r = unsafe { recvmsg(self.socket.as_raw_fd(), &mut msg, flags) };
            (r, gro_seg_size(&msg, &ctl))
        };
        if r <= 0 {
            return false;
        }
        let from = self.resolve_sender(&sa);
        let g = self.gro.as_mut().expect("gro stage exists once enabled");
        g.len = r as usize;
        g.off = 0;
        // No UDP_GRO cmsg means an uncoalesced message: one segment.
        g.seg = seg.unwrap_or(r as usize).max(1);
        g.from = from;
        true
    }

    /// Move staged segments into `bufs` until either side runs out.
    /// A filtered train (unknown sender) is discarded whole — one
    /// train is one wire datagram, so it has exactly one source.
    fn drain_stage(&mut self, bufs: &mut BurstBuf) {
        let Some(g) = self.gro.as_mut() else { return };
        let Some(from) = g.from else {
            g.off = g.len;
            return;
        };
        while g.off < g.len && !bufs.is_full() {
            let take = g.seg.min(g.len - g.off);
            let slot = bufs.next_slot();
            slot.extend_from_slice(&g.buf[g.off..g.off + take]);
            bufs.commit_next(from);
            g.off += take;
        }
    }

    /// Burst receive over the GRO stage: leftovers first, then
    /// opportunistic non-blocking fills, then spin-then-block exactly
    /// like the classic path.
    fn recv_batch_gro(&mut self, bufs: &mut BurstBuf, timeout: Duration) -> usize {
        // A train larger than the previous burst left segments behind.
        self.drain_stage(bufs);
        // Top off from whatever the kernel has queued, without waiting.
        while !bufs.is_full() {
            if !self.fill_stage(mmsg::MSG_DONTWAIT) {
                break;
            }
            self.drain_stage(bufs);
        }
        if !bufs.is_empty() {
            self.hot = true;
            return bufs.len();
        }
        // Pure non-blocking poll: the stage and the kernel queue are
        // both dry, and a zero timeout must never sleep.
        if timeout.is_zero() {
            self.hot = false;
            return 0;
        }
        // Nothing queued: spin while hot, then arm the cached timeout
        // and block for the first message.
        if self.hot {
            for _ in 0..SPIN_POLLS {
                if self.fill_stage(mmsg::MSG_DONTWAIT) {
                    self.drain_stage(bufs);
                    if !bufs.is_empty() {
                        return bufs.len();
                    }
                    // Filtered train: keep spinning.
                }
                std::hint::spin_loop();
            }
        }
        if self.arm_timeout(timeout).is_err() {
            self.hot = false;
            return 0;
        }
        while bufs.is_empty() {
            if !self.fill_stage(0) {
                self.hot = false;
                return 0;
            }
            self.drain_stage(bufs);
        }
        self.hot = true;
        bufs.len()
    }

    /// Scalar receive for a port that has opted into GRO: hand out the
    /// staged train one segment at a time, refilling (with the cached
    /// timeout armed) when the stage runs dry.
    fn recv_one_gro(&mut self, timeout: Duration) -> Option<(usize, usize)> {
        loop {
            {
                let g = self.gro.as_mut().expect("gro stage exists once enabled");
                if g.off < g.len {
                    if let Some(from) = g.from {
                        let take = g.seg.min(g.len - g.off);
                        // Match the classic path's truncation of
                        // oversized datagrams into `self.buf`.
                        let copy = take.min(MAX_DATAGRAM);
                        self.buf[..copy].copy_from_slice(&g.buf[g.off..g.off + copy]);
                        g.off += take;
                        return Some((from, copy));
                    }
                    g.off = g.len; // filtered train
                }
            }
            self.arm_timeout(timeout).ok()?;
            if !self.fill_stage(0) {
                return None;
            }
        }
    }
}

/// Minimal C-ABI declarations for `sendmmsg`/`recvmmsg` on 64-bit
/// Linux (glibc/musl layout). The build environment vendors no `libc`
/// crate, so the handful of types the batched socket calls need are
/// declared here directly.
#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
mod mmsg {
    #![allow(non_camel_case_types)]
    use core::ffi::{c_int, c_uint, c_void};
    use std::net::{Ipv4Addr, SocketAddr};

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct iovec {
        pub iov_base: *mut c_void,
        pub iov_len: usize,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct msghdr {
        pub msg_name: *mut c_void,
        pub msg_namelen: c_uint,
        pub msg_iov: *mut iovec,
        pub msg_iovlen: usize,
        pub msg_control: *mut c_void,
        pub msg_controllen: usize,
        pub msg_flags: c_int,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct mmsghdr {
        pub msg_hdr: msghdr,
        pub msg_len: c_uint,
    }

    #[repr(C)]
    #[derive(Clone, Copy, Default)]
    pub struct sockaddr_in {
        pub sin_family: u16,
        /// Network byte order.
        pub sin_port: u16,
        /// Network byte order.
        pub sin_addr: u32,
        pub sin_zero: [u8; 8],
    }

    pub const AF_INET: u16 = 2;
    pub const MSG_DONTWAIT: c_int = 0x40;
    /// Return after at least one message instead of waiting for vlen.
    pub const MSG_WAITFORONE: c_int = 0x10000;
    pub const SOL_UDP: c_int = 17;
    /// setsockopt/cmsg: outgoing payload is split into datagrams of
    /// the given size (UDP GSO).
    pub const UDP_SEGMENT: c_int = 103;
    /// setsockopt: deliver coalesced trains with a gso_size cmsg
    /// (UDP GRO).
    pub const UDP_GRO: c_int = 104;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct cmsghdr {
        pub cmsg_len: usize,
        pub cmsg_level: c_int,
        pub cmsg_type: c_int,
    }

    /// Outgoing control message carrying the `UDP_SEGMENT` size —
    /// `CMSG_SPACE(sizeof(u16))`, 24 bytes on 64-bit.
    #[repr(C, align(8))]
    #[derive(Clone, Copy)]
    pub struct cmsg_seg {
        pub hdr: cmsghdr,
        pub gso_size: u16,
        _pad: [u8; 6],
    }

    impl cmsg_seg {
        pub fn new(gso_size: u16) -> Self {
            cmsg_seg {
                hdr: cmsghdr {
                    // CMSG_LEN(sizeof(u16))
                    cmsg_len: std::mem::size_of::<cmsghdr>() + 2,
                    cmsg_level: SOL_UDP,
                    cmsg_type: UDP_SEGMENT,
                },
                gso_size,
                _pad: [0; 6],
            }
        }
    }

    /// Incoming control buffer: room for the `UDP_GRO` gso_size cmsg
    /// (an `int`) with headroom.
    #[repr(C, align(8))]
    pub struct cmsg_space {
        pub hdr: cmsghdr,
        pub data: [u8; 40],
    }

    /// The kernel attaches a `UDP_GRO` cmsg (payload: `int` gso_size)
    /// to coalesced messages only.
    pub fn gro_seg_size(msg: &msghdr, ctl: &cmsg_space) -> Option<usize> {
        if msg.msg_controllen < std::mem::size_of::<cmsghdr>()
            || ctl.hdr.cmsg_level != SOL_UDP
            || ctl.hdr.cmsg_type != UDP_GRO
        {
            return None;
        }
        let seg = i32::from_ne_bytes(ctl.data[..4].try_into().unwrap());
        (seg > 0).then_some(seg as usize)
    }

    /// Opt a socket into GRO train delivery; false if the kernel
    /// refuses (pre-5.0).
    pub fn enable_gro(socket: &std::net::UdpSocket) -> bool {
        use std::os::fd::AsRawFd;
        let on: c_int = 1;
        // SAFETY: optval points at a live int of the stated length.
        let r = unsafe {
            setsockopt(
                socket.as_raw_fd(),
                SOL_UDP,
                UDP_GRO,
                &on as *const c_int as *const c_void,
                std::mem::size_of::<c_int>() as c_uint,
            )
        };
        r == 0
    }

    extern "C" {
        pub fn sendmmsg(sockfd: c_int, msgvec: *mut mmsghdr, vlen: c_uint, flags: c_int) -> c_int;
        pub fn recvmmsg(
            sockfd: c_int,
            msgvec: *mut mmsghdr,
            vlen: c_uint,
            flags: c_int,
            timeout: *mut c_void,
        ) -> c_int;
        pub fn recvmsg(sockfd: c_int, msg: *mut msghdr, flags: c_int) -> isize;
        fn setsockopt(
            sockfd: c_int,
            level: c_int,
            optname: c_int,
            optval: *const c_void,
            optlen: c_uint,
        ) -> c_int;
    }

    /// The fabric binds IPv4 loopback only, so V4 always matches.
    pub fn sockaddr_of(addr: &SocketAddr) -> sockaddr_in {
        match addr {
            SocketAddr::V4(v4) => sockaddr_in {
                sin_family: AF_INET,
                sin_port: v4.port().to_be(),
                // Octets are already network order; keep them in place.
                sin_addr: u32::from_ne_bytes(v4.ip().octets()),
                sin_zero: [0; 8],
            },
            SocketAddr::V6(_) => unreachable!("udp_fabric binds IPv4 loopback only"),
        }
    }

    pub fn addr_of(sa: &sockaddr_in) -> Option<SocketAddr> {
        if sa.sin_family != AF_INET {
            return None;
        }
        Some(SocketAddr::from((
            Ipv4Addr::from(sa.sin_addr.to_ne_bytes()),
            u16::from_be(sa.sin_port),
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_roundtrip() {
        let mut ports = udp_fabric(2).unwrap();
        let mut b = ports.pop().unwrap();
        let mut a = ports.pop().unwrap();
        a.send(1, b"ping");
        let (from, data) = b.recv_timeout(Duration::from_millis(500)).unwrap();
        assert_eq!(from, 0);
        assert_eq!(data, b"ping");
        b.send(0, b"pong");
        let (from, data) = a.recv_timeout(Duration::from_millis(500)).unwrap();
        assert_eq!(from, 1);
        assert_eq!(data, b"pong");
    }

    #[test]
    fn timeout_elapses() {
        let mut ports = udp_fabric(1).unwrap();
        assert!(ports[0].recv_timeout(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn unknown_sender_is_filtered() {
        let mut ports = udp_fabric(1).unwrap();
        let stranger = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        let dest = ports[0].socket.local_addr().unwrap();
        stranger.send_to(b"spoof", dest).unwrap();
        // Message from an address outside the fabric is dropped.
        assert!(ports[0].recv_timeout(Duration::from_millis(50)).is_none());
    }

    #[test]
    fn unknown_sender_is_filtered_from_bursts() {
        let mut ports = udp_fabric(2).unwrap();
        let rx_addr = ports[0].socket.local_addr().unwrap();
        let stranger = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        let mut tx = ports.pop().unwrap();
        let mut rx = ports.pop().unwrap();
        tx.send(0, b"one");
        stranger.send_to(b"spoof", rx_addr).unwrap();
        tx.send(0, b"two");
        let mut bufs = BurstBuf::new(8, 64);
        let mut seen = Vec::new();
        while seen.len() < 2 {
            rx.recv_batch(&mut bufs, Duration::from_millis(500));
            for (from, frame) in bufs.iter() {
                assert_eq!(from, 1);
                seen.push(frame.to_vec());
            }
            assert!(!bufs.is_empty(), "expected both fabric datagrams");
        }
        assert_eq!(seen, vec![b"one".to_vec(), b"two".to_vec()]);
    }

    #[test]
    fn cached_timeout_arms_once() {
        let mut ports = udp_fabric(2).unwrap();
        let mut tx = ports.pop().unwrap();
        let mut rx = ports.pop().unwrap();
        assert_eq!(rx.timeout_rearms(), 0);
        for _ in 0..10 {
            tx.send(0, b"x");
            assert!(rx.recv_timeout(Duration::from_millis(100)).is_some());
        }
        // Ten receives with the same timeout: exactly one setsockopt.
        assert_eq!(rx.timeout_rearms(), 1);
        // Same granule bucket: still no re-arm.
        tx.send(0, b"x");
        assert!(rx
            .recv_into(&mut Vec::new(), Duration::from_millis(100))
            .is_some());
        assert_eq!(rx.timeout_rearms(), 1);
        // A genuinely different timeout re-arms once.
        assert!(rx.recv_timeout(Duration::from_millis(5)).is_none());
        assert_eq!(rx.timeout_rearms(), 2);
    }

    #[test]
    fn send_errors_are_counted() {
        let mut ports = udp_fabric(2).unwrap();
        let mut a = ports.swap_remove(0);
        assert_eq!(a.stats().send_errors, 0);
        // 70 KB exceeds the UDP datagram limit: EMSGSIZE, counted as a
        // kernel-side drop.
        let oversized = vec![0u8; 70_000];
        a.send(1, &oversized);
        assert_eq!(a.stats().send_errors, 1);
        a.send_batch(&[1, 1], &[oversized.clone(), b"ok".to_vec()]);
        let stats = a.stats();
        assert_eq!(stats.send_errors, 2, "oversized frame in a batch counted");
    }

    #[test]
    fn batched_send_and_recv_roundtrip() {
        let mut ports = udp_fabric(3).unwrap();
        let mut rx = ports.remove(0);
        let mut tx1 = ports.remove(0);
        let mut tx2 = ports.remove(0);
        let frames: Vec<Vec<u8>> = (0..40u8).map(|i| vec![i; 3]).collect();
        tx1.send_batch(&vec![0; 40], &frames);
        tx2.send_batch(&vec![0; 40], &frames);
        let mut bufs = BurstBuf::new(32, 64);
        let mut got = vec![0usize; 3];
        let mut total = 0;
        while total < 80 {
            let n = rx.recv_batch(&mut bufs, Duration::from_millis(500));
            assert!(n > 0, "lost datagrams on loopback ({total}/80)");
            for (from, frame) in bufs.iter() {
                assert_eq!(frame.len(), 3);
                assert_eq!(frame[0], frame[2]);
                got[from] += 1;
            }
            total += n;
        }
        assert_eq!(got, vec![0, 40, 40]);
        assert_eq!(rx.stats().send_errors, 0);
    }

    #[test]
    fn gso_train_reaches_classic_receiver_as_datagrams() {
        let mut ports = udp_fabric(2).unwrap();
        let mut rx = ports.remove(0);
        let mut tx = ports.remove(0);
        // Equal-size same-destination run: one UDP_SEGMENT
        // super-datagram on the wire. The receiver never opts into
        // GRO (scalar path), so the kernel must segment at delivery.
        let frames: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i, i, i, i]).collect();
        tx.send_batch(&[0; 10], &frames);
        for i in 0..10u8 {
            let (from, data) = rx.recv_timeout(Duration::from_millis(500)).unwrap();
            assert_eq!(from, 1);
            assert_eq!(data, vec![i, i, i, i]);
        }
    }

    #[test]
    fn gro_trains_roundtrip_bit_exact() {
        let mut ports = udp_fabric(2).unwrap();
        let mut rx = ports.remove(0);
        let mut tx = ports.remove(0);
        let frames: Vec<Vec<u8>> = (0..48u8).map(|i| vec![i; 16]).collect();
        tx.send_batch(&vec![0; 48], &frames);
        // Burst capacity 16 (>= GRO_MIN_BURST) opts into train
        // delivery; a 48-segment train must survive being handed out
        // across several bursts.
        let mut bufs = BurstBuf::new(16, 64);
        let mut seen = Vec::new();
        while seen.len() < 48 {
            let n = rx.recv_batch(&mut bufs, Duration::from_millis(500));
            assert!(n > 0, "lost datagrams ({}/48)", seen.len());
            for (from, frame) in bufs.iter() {
                assert_eq!(from, 1);
                seen.push(frame.to_vec());
            }
        }
        assert_eq!(seen, frames, "segments must arrive intact and in order");
    }

    #[test]
    fn mixed_size_runs_are_split_correctly() {
        let mut ports = udp_fabric(2).unwrap();
        let mut rx = ports.remove(0);
        let mut tx = ports.remove(0);
        // Runs: [8,8,8,4] (shorter tail closes the train), then [9,9].
        let sizes = [8usize, 8, 8, 4, 9, 9];
        let frames: Vec<Vec<u8>> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| vec![i as u8; s])
            .collect();
        tx.send_batch(&vec![0; sizes.len()], &frames);
        for (i, &s) in sizes.iter().enumerate() {
            let (from, data) = rx.recv_timeout(Duration::from_millis(500)).unwrap();
            assert_eq!(from, 1);
            assert_eq!(data, vec![i as u8; s], "frame {i} must keep its size {s}");
        }
    }

    #[test]
    fn scalar_recv_still_works_after_gro_opt_in() {
        let mut ports = udp_fabric(2).unwrap();
        let mut rx = ports.remove(0);
        let mut tx = ports.remove(0);
        // Opt in via a burst-capable receive...
        tx.send_batch(&[0; 12], &(0..12u8).map(|i| vec![i; 8]).collect::<Vec<_>>());
        let mut bufs = BurstBuf::new(8, 64);
        let mut got = rx.recv_batch(&mut bufs, Duration::from_millis(500));
        assert!(got > 0);
        // ...then drain the rest through the scalar path: the staged
        // train must come out one datagram at a time.
        while got < 12 {
            let (from, data) = rx.recv_timeout(Duration::from_millis(500)).unwrap();
            assert_eq!(from, 1);
            assert_eq!(data, vec![got as u8; 8]);
            got += 1;
        }
    }

    #[test]
    fn interleaved_multicast_burst_is_grouped_per_destination() {
        // The switch's multicast flush alternates destinations
        // (w1,w2,w1,w2,…). send_batch groups those frames into one
        // train per destination; each receiver must still see its own
        // frames bit-exact and in per-destination order.
        let mut ports = udp_fabric(3).unwrap();
        let mut tx = ports.remove(0);
        let (mut dests, mut frames) = (Vec::new(), Vec::new());
        for i in 0..24u8 {
            for w in 1..=2u8 {
                dests.push(w as usize);
                frames.push(vec![w, i, w ^ i, 0xEE]);
            }
        }
        tx.send_batch(&dests, &frames);
        for (w, rx) in ports.iter_mut().enumerate() {
            let w = (w + 1) as u8;
            let mut bufs = BurstBuf::new(16, 64);
            let mut seen = Vec::new();
            while seen.len() < 24 {
                let n = rx.recv_batch(&mut bufs, Duration::from_millis(500));
                assert!(n > 0, "worker {w} lost datagrams ({}/24)", seen.len());
                for (from, frame) in bufs.iter() {
                    assert_eq!(from, 0);
                    seen.push(frame.to_vec());
                }
            }
            let want: Vec<Vec<u8>> = (0..24u8).map(|i| vec![w, i, w ^ i, 0xEE]).collect();
            assert_eq!(seen, want, "worker {w} stream must be intact and ordered");
        }
        assert_eq!(tx.stats().send_errors, 0);
    }

    #[test]
    fn burst_larger_than_wire_cap_is_split() {
        let mut ports = udp_fabric(2).unwrap();
        let mut rx = ports.remove(0);
        let mut tx = ports.remove(0);
        let count = MAX_WIRE_BURST * 2 + 7;
        let frames: Vec<Vec<u8>> = (0..count).map(|i| vec![(i % 251) as u8]).collect();
        tx.send_batch(&vec![0; count], &frames);
        let mut bufs = BurstBuf::new(16, 64);
        let mut total = 0;
        while total < count {
            let n = rx.recv_batch(&mut bufs, Duration::from_millis(500));
            assert!(n > 0, "lost datagrams on loopback ({total}/{count})");
            total += n;
        }
        assert_eq!(total, count);
    }
}
