//! UDP loopback transport: the protocol over real sockets.
//!
//! Each endpoint binds an ephemeral 127.0.0.1 socket; the fabric
//! builder exchanges addresses up front (the static rack wiring of the
//! paper's deployment). UDP gives exactly the delivery model SwitchML
//! assumes — unordered, unreliable datagrams — so the worker-driven
//! retransmission path is exercised for real whenever the kernel
//! drops under load.

use crate::port::Port;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::time::Duration;

/// Largest datagram we expect (MTU-profile packets + headroom).
const MAX_DATAGRAM: usize = 4096;

/// One UDP endpoint of a loopback fabric.
pub struct UdpPort {
    index: usize,
    socket: UdpSocket,
    peers: Vec<SocketAddr>,
    buf: Box<[u8; MAX_DATAGRAM]>,
}

/// Build a fabric of `n` UDP endpoints on loopback.
pub fn udp_fabric(n: usize) -> io::Result<Vec<UdpPort>> {
    let sockets: Vec<UdpSocket> = (0..n)
        .map(|_| UdpSocket::bind(("127.0.0.1", 0)))
        .collect::<io::Result<_>>()?;
    let peers: Vec<SocketAddr> = sockets
        .iter()
        .map(|s| s.local_addr())
        .collect::<io::Result<_>>()?;
    sockets
        .into_iter()
        .enumerate()
        .map(|(index, socket)| {
            Ok(UdpPort {
                index,
                socket,
                peers: peers.clone(),
                buf: Box::new([0u8; MAX_DATAGRAM]),
            })
        })
        .collect()
}

impl Port for UdpPort {
    fn n_endpoints(&self) -> usize {
        self.peers.len()
    }

    fn index(&self) -> usize {
        self.index
    }

    fn send(&mut self, to: usize, data: &[u8]) {
        debug_assert!(data.len() <= MAX_DATAGRAM);
        // UDP send failures (e.g. ENOBUFS under load) are equivalent to
        // loss; the protocol's retransmission handles them.
        let _ = self.socket.send_to(data, self.peers[to]);
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Option<(usize, Vec<u8>)> {
        // A zero timeout would mean "block forever" to the kernel.
        self.socket
            .set_read_timeout(Some(timeout.max(Duration::from_micros(1))))
            .ok()?;
        match self.socket.recv_from(self.buf.as_mut_slice()) {
            Ok((len, addr)) => {
                let from = self.peers.iter().position(|&p| p == addr)?;
                Some((from, self.buf[..len].to_vec()))
            }
            Err(_) => None,
        }
    }

    fn recv_into(&mut self, buf: &mut Vec<u8>, timeout: Duration) -> Option<usize> {
        // Straight from the socket's internal buffer into the caller's
        // scratch: no per-datagram allocation.
        self.socket
            .set_read_timeout(Some(timeout.max(Duration::from_micros(1))))
            .ok()?;
        match self.socket.recv_from(self.buf.as_mut_slice()) {
            Ok((len, addr)) => {
                let from = self.peers.iter().position(|&p| p == addr)?;
                buf.clear();
                buf.extend_from_slice(&self.buf[..len]);
                Some(from)
            }
            Err(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_roundtrip() {
        let mut ports = udp_fabric(2).unwrap();
        let mut b = ports.pop().unwrap();
        let mut a = ports.pop().unwrap();
        a.send(1, b"ping");
        let (from, data) = b.recv_timeout(Duration::from_millis(500)).unwrap();
        assert_eq!(from, 0);
        assert_eq!(data, b"ping");
        b.send(0, b"pong");
        let (from, data) = a.recv_timeout(Duration::from_millis(500)).unwrap();
        assert_eq!(from, 1);
        assert_eq!(data, b"pong");
    }

    #[test]
    fn timeout_elapses() {
        let mut ports = udp_fabric(1).unwrap();
        assert!(ports[0].recv_timeout(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn unknown_sender_is_filtered() {
        let mut ports = udp_fabric(1).unwrap();
        let stranger = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        let dest = ports[0].socket.local_addr().unwrap();
        stranger.send_to(b"spoof", dest).unwrap();
        // Message from an address outside the fabric is dropped.
        assert!(ports[0].recv_timeout(Duration::from_millis(50)).is_none());
    }
}
