//! Run-to-completion reactor: many worker engines per OS thread.
//!
//! The sharded runner ([`crate::shard`]) spends one OS thread per
//! (worker, core) engine and parks each thread in a blocking
//! `recv_batch(next_deadline - now)`. That reproduces the paper's
//! one-core-per-engine DPDK layout faithfully, but a test host has a
//! handful of hardware threads, so worker count is capped by thread
//! count — tens of workers, never the hundreds a multi-rack topology
//! (§6) needs.
//!
//! This module decouples the two. Worker engines become plain state
//! owned by a small, fixed pool of **reactor threads**; each thread
//! run-to-completion polls its engines' ports non-blockingly
//! (`recv_batch` with `Duration::ZERO` — see [`crate::port::Port`])
//! and drives retransmissions from a per-thread hashed
//! [`TimerWheel`](crate::wheel::TimerWheel) instead of per-engine
//! blocking timeouts. The switch side is unchanged: the same
//! `shard_switch_loop` threads, the same endpoint layout, the same
//! wire traffic — which is why the result is bit-identical to the
//! threaded runner and the sequential reference (integer aggregation
//! is order-independent, quantization deterministic).
//!
//! ## Ownership model (why no locks)
//!
//! Engine contexts are partitioned round-robin across reactor threads
//! at spawn and never migrate: thread `t` exclusively owns engines
//! `t, t + T, t + 2T, …` — their `SlotEngine` state, their ports,
//! their scratch buffers, their slice of the result tensor, and their
//! timers (each thread's wheel only holds its own engines). Nothing
//! on the data path is shared mutably, so there is not a single lock
//! or atomic on the per-packet path; the only cross-thread state is
//! the stop flag and the final result hand-off at join.

use crate::port::{BurstBuf, Port, PortStats, TxBatch};
use crate::runner::{resolve_run_proto, RunConfig, RunReport, SCRATCH_CAPACITY};
#[cfg(test)]
use crate::shard::worker_core_endpoint;
use crate::shard::{shard_endpoint, shard_switch_loop, sharded_fabric_size, stage_update};
use crate::wheel::TimerWheel;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use switchml_core::config::{NumericMode, Protocol, TimeNs};
use switchml_core::error::{Error, Result};
use switchml_core::packet::{PacketKind, PacketView, WireElems, WorkerId};
use switchml_core::quant::fixed::dequantize_chunk;
use switchml_core::switch::SwitchStats;
use switchml_core::worker::engine::{EngineConfig, EngineStats, ResultOutcome, SlotEngine};

/// Timer-wheel granularity. Coarse relative to packet service time,
/// fine relative to any sane RTO (the runners clamp RTOs to ≥ 100 µs
/// on real transports anyway), so wheel rounding adds at most one
/// tick of retransmission latency.
pub(crate) const WHEEL_TICK_NS: TimeNs = 50_000;

/// Buckets per wheel: one revolution spans 256 × 50 µs = 12.8 ms,
/// comfortably above the RTO range, so cascades only occur under
/// heavy exponential backoff.
pub(crate) const WHEEL_BUCKETS: usize = 256;

/// Idle sleep cap. An idle reactor thread naps at most this long, so
/// it stays responsive to traffic while yielding the core to the
/// shard threads — essential on hosts with fewer hardware threads
/// than OS threads.
const IDLE_NAP_NS: u64 = 100_000;

/// Event-loop health counters, aggregated over all reactor threads of
/// a run and surfaced through [`RunReport::reactor`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReactorStats {
    /// Reactor threads the run used.
    pub threads: u64,
    /// Worker engines driven (n_workers × n_cores).
    pub engines: u64,
    /// Non-blocking receive polls issued.
    pub polls: u64,
    /// Polls that returned at least one frame.
    pub rx_batches: u64,
    /// Timer-wheel expirations delivered to engines.
    pub timer_fires: u64,
    /// Timer-wheel entries re-circulated because their deadline lay a
    /// full revolution ahead (high = wheel mis-sized for the RTOs).
    pub cascades: u64,
    /// Times an idle thread napped instead of spinning.
    pub idle_sleeps: u64,
}

impl ReactorStats {
    /// Fold another thread's counters into this one.
    pub fn merge(&mut self, other: ReactorStats) {
        self.threads += other.threads;
        self.engines += other.engines;
        self.polls += other.polls;
        self.rx_batches += other.rx_batches;
        self.timer_fires += other.timer_fires;
        self.cascades += other.cascades;
        self.idle_sleeps += other.idle_sleeps;
    }

    /// Receive polls per second of wall time.
    pub fn polls_per_sec(&self, wall: Duration) -> f64 {
        self.polls as f64 / wall.as_secs_f64().max(1e-9)
    }

    /// Average engines multiplexed per reactor thread.
    pub fn engines_per_thread(&self) -> f64 {
        self.engines as f64 / (self.threads as f64).max(1.0)
    }
}

/// Everything one worker engine needs, owned exclusively by its
/// reactor thread.
struct EngineCtx<P: Port> {
    port: P,
    engine: SlotEngine,
    shard_ep: usize,
    wid: WorkerId,
    /// Worker index (for result placement at join).
    w: usize,
    /// Core index (for result placement at join).
    j: usize,
    data: Arc<Vec<f32>>,
    elem_lo: usize,
    /// This engine's slice of the aggregated tensor.
    local: Vec<f32>,
    qbuf: Vec<i32>,
    rxb: BurstBuf,
    txb: TxBatch,
    done: bool,
    /// Set by the wheel sweep, consumed right after it: this engine
    /// retransmitted and its timer must be re-armed.
    pending_rearm: bool,
}

impl<P: Port> EngineCtx<P> {
    /// Drain one received burst into the engine: accept results,
    /// dequantize into the local slice, stage follow-up updates.
    /// Identical per-packet logic to the threaded runner's `core_loop`
    /// — only the surrounding loop structure differs.
    fn process_rx(&mut self, k: usize, f: f64, now: TimeNs) -> Result<()> {
        let EngineCtx {
            port,
            engine,
            shard_ep,
            wid,
            data,
            elem_lo,
            local,
            qbuf,
            rxb,
            txb,
            ..
        } = self;
        for (_from, frame) in rxb.iter() {
            let Ok(view) = PacketView::parse(frame) else {
                continue; // corrupted / foreign datagram
            };
            // Defensive filters, as in the threaded runner: only
            // full-k results for slots this engine owns.
            if view.kind() != PacketKind::Result || !engine.owns_slot(view.idx()) {
                continue;
            }
            if view.k() != k {
                continue;
            }
            match engine.on_result(view.idx(), view.ver(), view.off(), now)? {
                ResultOutcome::Accepted { off, next } => {
                    // A ragged final chunk only carries n live
                    // elements; the rest is padding.
                    let off = off as usize;
                    let n = k.min(data.len() - off);
                    view.overwrite_into(&mut qbuf[..k]);
                    dequantize_chunk(
                        &qbuf[..n],
                        f,
                        &mut local[off - *elem_lo..off - *elem_lo + n],
                    );
                    if let Some(d) = next {
                        stage_update(txb, *shard_ep, *wid, k, data, f, qbuf, d);
                    }
                }
                ResultOutcome::Stale => {}
            }
        }
        txb.flush(port);
        Ok(())
    }
}

/// One reactor thread: run-to-completion over its owned engines.
/// Returns each engine's result slice + stats, the summed port stats,
/// and this thread's loop counters.
#[allow(clippy::type_complexity)]
fn reactor_thread_loop<P: Port>(
    mut ctxs: Vec<EngineCtx<P>>,
    k: usize,
    f: f64,
    epoch: Instant,
    deadline: Instant,
) -> Result<(
    Vec<(usize, usize, Vec<f32>, EngineStats)>,
    PortStats,
    ReactorStats,
)> {
    let now_ns = || epoch.elapsed().as_nanos() as u64;
    let mut wheel = TimerWheel::new(ctxs.len(), WHEEL_TICK_NS, WHEEL_BUCKETS);
    let mut stats = ReactorStats {
        threads: 1,
        engines: ctxs.len() as u64,
        ..ReactorStats::default()
    };
    let mut pending = 0usize;

    // Launch phase: emit every engine's initial window and arm its
    // timer from its own deadline.
    for (i, ctx) in ctxs.iter_mut().enumerate() {
        let t = now_ns();
        for d in ctx.engine.start(t) {
            stage_update(
                &mut ctx.txb,
                ctx.shard_ep,
                ctx.wid,
                k,
                &ctx.data,
                f,
                &mut ctx.qbuf,
                d,
            );
        }
        ctx.txb.flush(&mut ctx.port);
        if ctx.engine.is_done() {
            ctx.done = true; // zero-chunk engine
        } else {
            pending += 1;
            if let Some(dl) = ctx.engine.next_deadline() {
                wheel.schedule(i, dl);
            }
        }
    }

    let mut idle_streak = 0u32;
    while pending > 0 {
        if Instant::now() > deadline {
            let stuck: Vec<String> = ctxs
                .iter()
                .filter(|c| !c.done)
                .map(|c| {
                    format!(
                        "w{}c{} {}/{}",
                        c.w,
                        c.j,
                        c.engine.completed_chunks(),
                        c.engine.config().n_chunks
                    )
                })
                .collect();
            return Err(Error::ProtocolViolation(format!(
                "reactor thread exceeded the wall-clock budget; unfinished engines: {}",
                stuck.join(", ")
            )));
        }
        let mut progress = false;

        // Poll phase: one non-blocking burst receive per live engine.
        for (i, ctx) in ctxs.iter_mut().enumerate() {
            if ctx.done {
                continue;
            }
            stats.polls += 1;
            if ctx.port.recv_batch(&mut ctx.rxb, Duration::ZERO) > 0 {
                stats.rx_batches += 1;
                progress = true;
                ctx.process_rx(k, f, now_ns())?;
                if ctx.engine.is_done() {
                    ctx.done = true;
                    pending -= 1;
                    wheel.cancel(i);
                } else if let Some(dl) = ctx.engine.next_deadline() {
                    // Progress re-arms the engine's deadline; mirror it
                    // on the wheel (supersedes the old entry).
                    wheel.schedule(i, dl);
                }
            }
        }

        // Timer phase: sweep the wheel; fired engines retransmit and
        // re-arm (Algorithm 4's timeout handler, Jacobson/Karn state
        // all inside the engine).
        let t = now_ns();
        let fired = wheel.advance(t, |i| {
            let ctx = &mut ctxs[i];
            if ctx.done {
                return;
            }
            for d in ctx.engine.expired(t) {
                stage_update(
                    &mut ctx.txb,
                    ctx.shard_ep,
                    ctx.wid,
                    k,
                    &ctx.data,
                    f,
                    &mut ctx.qbuf,
                    d,
                );
            }
            ctx.txb.flush(&mut ctx.port);
            ctx.pending_rearm = true;
        });
        // Re-arm outside the sweep (the wheel is borrowed during it).
        for (i, ctx) in ctxs.iter_mut().enumerate() {
            if ctx.pending_rearm {
                ctx.pending_rearm = false;
                if let Some(dl) = ctx.engine.next_deadline() {
                    wheel.schedule(i, dl);
                }
            }
        }
        if fired > 0 {
            stats.timer_fires += fired as u64;
            progress = true;
        }

        // Idle backoff: a quiet loop yields, a persistently quiet loop
        // naps until the next deadline (capped) — this is what lets
        // dozens of engines share one hardware thread with the shard
        // threads without starving them.
        if progress {
            idle_streak = 0;
        } else {
            idle_streak += 1;
            if idle_streak == 1 {
                std::thread::yield_now();
            } else {
                let nap = wheel
                    .next_deadline()
                    .map(|d| d.saturating_sub(now_ns()))
                    .unwrap_or(IDLE_NAP_NS)
                    .clamp(1, IDLE_NAP_NS);
                std::thread::sleep(Duration::from_nanos(nap));
                stats.idle_sleeps += 1;
            }
        }
    }
    stats.cascades = wheel.cascades();

    let mut port_stats = PortStats::default();
    let mut out = Vec::with_capacity(ctxs.len());
    for ctx in ctxs {
        port_stats.merge(ctx.port.stats());
        out.push((ctx.w, ctx.j, ctx.local, ctx.engine.stats()));
    }
    Ok((out, port_stats, stats))
}

/// Run one all-reduce with `cfg.n_cores` switch shards and **all**
/// `n_workers × n_cores` worker engines multiplexed onto at most
/// `n_threads` reactor threads — the run-to-completion counterpart of
/// [`crate::shard::run_allreduce_sharded`], bit-identical to it (and
/// to the sequential reference) on the same inputs.
///
/// `ports` uses the identical sharded endpoint layout
/// ([`sharded_fabric_size`]); only [`NumericMode::Fixed32`] is
/// supported, as in the sharded runner.
pub fn run_allreduce_reactor<P: Port + 'static>(
    ports: Vec<P>,
    updates: Vec<Vec<Vec<f32>>>,
    proto: &Protocol,
    cfg: &RunConfig,
    n_threads: usize,
) -> Result<RunReport> {
    let proto = &resolve_run_proto(proto, &ports)?;
    let n = proto.n_workers;
    let c = cfg.n_cores;
    if proto.mode != NumericMode::Fixed32 {
        return Err(Error::InvalidConfig(
            "reactor runner supports Fixed32 only".into(),
        ));
    }
    if c == 0 {
        return Err(Error::InvalidConfig("n_cores must be > 0".into()));
    }
    if n_threads == 0 {
        return Err(Error::InvalidConfig("n_threads must be > 0".into()));
    }
    if c > proto.pool_size {
        return Err(Error::InvalidConfig(format!(
            "{c} cores need at least {c} pool slots"
        )));
    }
    if updates.len() != n {
        return Err(Error::InvalidConfig(format!(
            "need {} update sets, got {}",
            n,
            updates.len()
        )));
    }
    if ports.len() != sharded_fabric_size(n, c) {
        return Err(Error::InvalidConfig(format!(
            "need {} ports ({c} shards + {n}×{c} worker cores), got {}",
            sharded_fabric_size(n, c),
            ports.len()
        )));
    }
    let shapes: Vec<usize> = updates[0].iter().map(|t| t.len()).collect();
    for (w, tensors) in updates.iter().enumerate() {
        let s: Vec<usize> = tensors.iter().map(|t| t.len()).collect();
        if s != shapes {
            return Err(Error::InvalidConfig(format!(
                "worker {w}'s tensor shapes disagree with worker 0's"
            )));
        }
    }
    // More threads than engines is pointless; shrink silently.
    let n_threads = n_threads.min(n * c);

    let flat: Vec<Arc<Vec<f32>>> = updates
        .into_iter()
        .map(|tensors| Arc::new(tensors.into_iter().flatten().collect::<Vec<f32>>()))
        .collect();
    let total: usize = shapes.iter().sum();
    let total_chunks = (total as u64).div_ceil(proto.k as u64);
    let k = proto.k;
    let f = proto.scaling_factor;
    let s = proto.pool_size;

    let t0 = Instant::now();
    let epoch = t0;
    let deadline = t0 + cfg.max_wall;
    let stop = Arc::new(AtomicBool::new(false));

    // Peel the fabric apart exactly as the sharded runner does.
    let mut ports = ports;
    let mut core_ports: Vec<Vec<P>> = Vec::with_capacity(n);
    let mut rest = ports.split_off(c);
    for _ in 0..n {
        let tail = rest.split_off(c);
        core_ports.push(rest);
        rest = tail;
    }
    let shard_ports = ports;

    // Build every (worker, core) engine context, then deal them
    // round-robin into per-thread batches: engine (w·c + j) goes to
    // thread (w·c + j) mod n_threads. Round-robin (rather than
    // contiguous blocks) spreads each worker's cores across threads,
    // so one slow thread delays every worker a little instead of one
    // worker a lot.
    let mut batches: Vec<Vec<EngineCtx<P>>> = (0..n_threads).map(|_| Vec::new()).collect();
    for (w, worker_ports) in core_ports.into_iter().enumerate() {
        for (j, port) in worker_ports.into_iter().enumerate() {
            let slot_lo = j * s / c;
            let slot_hi = (j + 1) * s / c;
            let chunk_lo = (j as u64) * total_chunks / c as u64;
            let chunk_hi = (j as u64 + 1) * total_chunks / c as u64;
            let ecfg = EngineConfig {
                wid: w as WorkerId,
                k,
                slot_base: slot_lo as u32,
                n_slots: slot_hi - slot_lo,
                chunk_base: chunk_lo,
                n_chunks: chunk_hi - chunk_lo,
                rto: Some(proto.rto_ns),
                rto_policy: proto.rto_policy,
            };
            let elem_lo = (chunk_lo as usize * k).min(total);
            let elem_hi = (chunk_hi as usize * k).min(total);
            let ctx = EngineCtx {
                port,
                engine: SlotEngine::new(ecfg)?,
                shard_ep: shard_endpoint(j),
                wid: w as WorkerId,
                w,
                j,
                data: Arc::clone(&flat[w]),
                elem_lo,
                local: vec![0.0f32; elem_hi - elem_lo],
                qbuf: vec![0i32; k],
                rxb: BurstBuf::new(cfg.burst, SCRATCH_CAPACITY),
                txb: TxBatch::new(SCRATCH_CAPACITY),
                done: false,
                pending_rearm: false,
            };
            batches[(w * c + j) % n_threads].push(ctx);
        }
    }

    std::thread::scope(|scope| {
        let shard_handles: Vec<_> = shard_ports
            .into_iter()
            .enumerate()
            .map(|(j, port)| {
                let stop = Arc::clone(&stop);
                let proto = proto.clone();
                let burst = cfg.burst;
                scope.spawn(move || shard_switch_loop(port, j, c, burst, &proto, &stop, deadline))
            })
            .collect();

        let reactor_handles: Vec<_> = batches
            .into_iter()
            .map(|ctxs| scope.spawn(move || reactor_thread_loop(ctxs, k, f, epoch, deadline)))
            .collect();

        // Gather: each thread hands back (w, j, slice, stats); stitch
        // the slices into per-worker tensors by the same arithmetic
        // that assigned them.
        let mut flat_results: Vec<Vec<f32>> = (0..n).map(|_| vec![0.0f32; total]).collect();
        let mut worker_stats = vec![EngineStats::default(); n];
        let mut transport_stats = PortStats::default();
        let mut reactor_stats = ReactorStats::default();
        let mut first_err = None;
        for h in reactor_handles {
            match h.join().expect("reactor thread panicked") {
                Ok((engines, ps, rs)) => {
                    transport_stats.merge(ps);
                    reactor_stats.merge(rs);
                    for (w, j, local, st) in engines {
                        let chunk_lo = (j as u64) * total_chunks / c as u64;
                        let chunk_hi = (j as u64 + 1) * total_chunks / c as u64;
                        let lo = (chunk_lo as usize * k).min(total);
                        let hi = (chunk_hi as usize * k).min(total);
                        debug_assert_eq!(hi - lo, local.len());
                        flat_results[w][lo..hi].copy_from_slice(&local);
                        worker_stats[w].merge(st);
                    }
                }
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        stop.store(true, Ordering::Release);
        let mut switch_stats = SwitchStats::default();
        for h in shard_handles {
            let (st, ps) = h.join().expect("switch shard thread panicked")?;
            switch_stats.merge(st);
            transport_stats.merge(ps);
        }
        if let Some(e) = first_err {
            return Err(e);
        }

        let results = flat_results
            .into_iter()
            .map(|flat_result| {
                let mut tensors = Vec::with_capacity(shapes.len());
                let mut off = 0usize;
                for &len in &shapes {
                    tensors.push(flat_result[off..off + len].to_vec());
                    off += len;
                }
                tensors
            })
            .collect();
        Ok(RunReport {
            results,
            worker_stats,
            switch_stats,
            transport_stats,
            reactor: Some(reactor_stats),
            hier: None,
            wall: t0.elapsed(),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::ScriptedPort;
    use crate::lossy::lossy_fabric;
    use crate::shard::{run_allreduce_sharded, sharded_channel_fabric};
    use crate::udp::udp_fabric;
    use switchml_core::agg::allreduce;
    use switchml_core::config::RtoPolicy;

    fn proto(n: usize) -> Protocol {
        Protocol {
            n_workers: n,
            k: 8,
            pool_size: 16,
            rto_ns: 2_000_000, // 2 ms real time
            scaling_factor: 10_000.0,
            ..Protocol::default()
        }
    }

    fn updates(n: usize, elems: usize) -> Vec<Vec<Vec<f32>>> {
        (0..n)
            .map(|w| {
                vec![(0..elems)
                    .map(|i| (w + 1) as f32 + (i % 5) as f32 * 0.1)
                    .collect()]
            })
            .collect()
    }

    /// Three-way differential: reactor == threaded sharded == the
    /// sequential in-process reference, bit for bit, on a ragged
    /// tensor.
    #[test]
    fn reactor_matches_threaded_and_reference() {
        let n = 3;
        let c = 2;
        let elems = 333; // ragged final chunk
        let p = proto(n);
        let cfg = RunConfig {
            n_cores: c,
            ..RunConfig::default()
        };
        let reactor =
            run_allreduce_reactor(sharded_channel_fabric(n, c), updates(n, elems), &p, &cfg, 2)
                .unwrap();
        let threaded =
            run_allreduce_sharded(sharded_channel_fabric(n, c), updates(n, elems), &p, &cfg)
                .unwrap();
        let reference = allreduce(&updates(n, elems), &p).unwrap();
        for w in 0..n {
            assert_eq!(reactor.results[w], threaded.results[w], "worker {w}");
            assert_eq!(reactor.results[w], reference, "worker {w} vs reference");
        }
        let rs = reactor.reactor.expect("reactor stats present");
        assert_eq!(rs.threads, 2);
        assert_eq!(rs.engines, (n * c) as u64);
        assert!(rs.polls > 0);
        assert!(rs.rx_batches > 0);
    }

    /// The headline scaling case: 64 virtual workers on 4 reactor
    /// threads (+1 shard thread) — a topology thread-per-worker cannot
    /// even spawn within budget on a small host — completing
    /// bit-identical to the sequential reference.
    #[test]
    fn sixty_four_workers_on_four_threads() {
        let n = 64;
        let c = 1;
        let elems = 96;
        let p = proto(n);
        let cfg = RunConfig {
            n_cores: c,
            ..RunConfig::default()
        };
        let report =
            run_allreduce_reactor(sharded_channel_fabric(n, c), updates(n, elems), &p, &cfg, 4)
                .unwrap();
        let reference = allreduce(&updates(n, elems), &p).unwrap();
        for w in 0..n {
            assert_eq!(report.results[w], reference, "worker {w}");
        }
        let rs = report.reactor.unwrap();
        assert_eq!(rs.threads, 4);
        assert_eq!(rs.engines, 64);
        assert!(rs.engines_per_thread() >= 16.0);
    }

    /// Loss + adaptive RTO on the wheel: retransmissions recover the
    /// run, Jacobson's estimator takes clean samples, and the answer
    /// is still exact.
    #[test]
    fn reactor_loss_with_adaptive_rto_recovers() {
        let n = 2;
        let c = 2;
        let elems = 400;
        let p = Protocol {
            rto_policy: RtoPolicy::Adaptive {
                min_ns: 200_000,
                max_ns: 50_000_000,
            },
            ..proto(n)
        };
        let (ports, loss_stats) = lossy_fabric(sharded_channel_fabric(n, c), 0.05, 77);
        let cfg = RunConfig {
            n_cores: c,
            ..RunConfig::default()
        };
        let report = run_allreduce_reactor(ports, updates(n, elems), &p, &cfg, 2).unwrap();
        let reference = allreduce(&updates(n, elems), &p).unwrap();
        for w in 0..n {
            assert_eq!(report.results[w], reference, "worker {w}");
        }
        assert!(loss_stats.dropped() > 0, "5% loss should drop something");
        let retx: u64 = report.worker_stats.iter().map(|s| s.retx).sum();
        assert!(retx > 0, "losses must trigger wheel-driven retransmissions");
        let samples: u64 = report.worker_stats.iter().map(|s| s.rtt_samples).sum();
        assert!(samples > 0, "adaptive estimator must take clean samples");
        assert!(report.reactor.unwrap().timer_fires > 0);
    }

    /// A straggling engine (its port stalls every receive) delays but
    /// does not corrupt: the wheel keeps its retransmissions flowing
    /// and the final tensor is still bit-identical.
    #[test]
    fn reactor_straggler_is_bit_identical() {
        let n = 2;
        let c = 1;
        let elems = 200;
        let p = proto(n);
        let cfg = RunConfig {
            n_cores: c,
            ..RunConfig::default()
        };
        let raw = sharded_channel_fabric(n, c);
        let ports: Vec<_> = raw
            .into_iter()
            .enumerate()
            .map(|(ep, port)| {
                // Worker 1's (only) core endpoint straggles.
                let stall = if ep == worker_core_endpoint(1, 0, c) {
                    Duration::from_micros(300)
                } else {
                    Duration::ZERO
                };
                ScriptedPort::new(port, stall, None)
            })
            .collect();
        let report = run_allreduce_reactor(ports, updates(n, elems), &p, &cfg, 2).unwrap();
        let reference = allreduce(&updates(n, elems), &p).unwrap();
        for w in 0..n {
            assert_eq!(report.results[w], reference, "worker {w}");
        }
    }

    /// Real kernel datagrams through the zero-timeout poll path.
    #[test]
    fn reactor_udp_smoke() {
        let n = 2;
        let c = 2;
        let elems = 256;
        let p = proto(n);
        let ports = udp_fabric(sharded_fabric_size(n, c)).unwrap();
        let cfg = RunConfig {
            n_cores: c,
            ..RunConfig::default()
        };
        let report = run_allreduce_reactor(ports, updates(n, elems), &p, &cfg, 2).unwrap();
        let reference = allreduce(&updates(n, elems), &p).unwrap();
        for w in 0..n {
            assert_eq!(report.results[w], reference, "worker {w}");
        }
    }

    /// Reactor × UDP GRO × 5% loss — the combination the channel-only
    /// loss test above cannot cover. `batch_loss_only` keeps faulty
    /// burst I/O on `UdpPort`'s own batch path: outgoing bursts still
    /// coalesce into GSO super-datagrams (minus the dropped frames)
    /// and receives delegate to the GRO path, which engages because
    /// the reactor's `RunConfig::burst` (8) meets `UDP_GRO`'s minimum
    /// burst. Loss must be recovered by wheel-driven retransmissions
    /// and the result must still be bit-identical to the sequential
    /// reference.
    #[test]
    fn reactor_udp_gro_loss_is_bit_identical() {
        use crate::faulty::{faulty_fabric, FaultyConfig};
        let n = 2;
        let c = 2;
        let elems = 400;
        let p = Protocol {
            rto_policy: RtoPolicy::Adaptive {
                min_ns: 200_000,
                max_ns: 50_000_000,
            },
            ..proto(n)
        };
        let base = udp_fabric(sharded_fabric_size(n, c)).unwrap();
        let (ports, loss_stats) = faulty_fabric(base, FaultyConfig::batch_loss_only(0.05), 77);
        let cfg = RunConfig {
            n_cores: c,
            ..RunConfig::default()
        };
        assert!(cfg.burst >= 8, "burst below UDP_GRO's minimum: GRO off");
        let report = run_allreduce_reactor(ports, updates(n, elems), &p, &cfg, 2).unwrap();
        let reference = allreduce(&updates(n, elems), &p).unwrap();
        for w in 0..n {
            assert_eq!(report.results[w], reference, "worker {w}");
        }
        assert!(loss_stats.dropped() > 0, "5% loss should drop something");
        assert_eq!(
            report.transport_stats.injected_send_drops,
            loss_stats.dropped(),
            "per-port injected counters must survive the batch path"
        );
        let retx: u64 = report.worker_stats.iter().map(|s| s.retx).sum();
        assert!(retx > 0, "losses must trigger wheel-driven retransmissions");
        assert!(report.reactor.unwrap().timer_fires > 0);
    }

    #[test]
    fn reactor_misconfiguration_rejected() {
        let n = 2;
        let cfg = RunConfig {
            n_cores: 1,
            ..RunConfig::default()
        };
        // Zero reactor threads.
        assert!(run_allreduce_reactor(
            sharded_channel_fabric(n, 1),
            updates(n, 16),
            &proto(n),
            &cfg,
            0
        )
        .is_err());
        // Wrong port count.
        assert!(run_allreduce_reactor(
            sharded_channel_fabric(n, 2),
            updates(n, 16),
            &proto(n),
            &cfg,
            1
        )
        .is_err());
        // Non-Fixed32 mode.
        let p16 = Protocol {
            mode: NumericMode::Float16,
            ..proto(n)
        };
        assert!(
            run_allreduce_reactor(sharded_channel_fabric(n, 1), updates(n, 16), &p16, &cfg, 1)
                .is_err()
        );
    }
}
