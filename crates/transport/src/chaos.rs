//! Live chaos harness: scripted fault schedules against the real
//! threaded runners, with every completed run checked **bit for bit**
//! against the lossless sequential reference
//! ([`switchml_core::agg::allreduce`]).
//!
//! The harness composes two layers under a fixed seed so a schedule
//! is exactly reproducible:
//!
//! * [`FaultyPort`] — probabilistic loss / duplication / bounded
//!   reordering (reordering only on switch→worker results; holding a
//!   worker→switch update past its phase boundary would break §3.5's
//!   bounded packet-lifetime assumption — see [`crate::faulty`]).
//! * [`ScriptedPort`] — deterministic per-endpoint shaping: a fixed
//!   stall before every send (a straggler whose pipelined window
//!   drains slowly, §4.2) and/or a scripted death instant after which
//!   the endpoint neither sends nor receives (a crash, as the rest of
//!   the fabric observes it).
//!
//! The pass criterion is the paper's correctness bar: either the run
//! completes and every worker's aggregate is bit-identical to the
//! sequential reference, or the run degrades *cleanly* — a reported
//! error, never silently wrong numbers. Shrink-and-resume recovery
//! from a mid-run crash needs the control plane and lives in
//! `switchml-ctrl`; here a killed endpoint must surface as clean
//! degradation.

use std::sync::Arc;
use std::time::{Duration, Instant};

use switchml_core::agg;
use switchml_core::config::Protocol;
use switchml_core::error::{Error, Result};

use crate::faulty::{FaultyConfig, FaultyPort, FaultyStats};
use crate::port::{Port, PortStats};
use crate::reactor::run_allreduce_reactor;
use crate::runner::{run_allreduce, RunConfig, RunReport};
use crate::shard::run_allreduce_sharded;

/// When a scripted kill takes effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillAt {
    /// The endpoint goes silent this long into the run — a crash at a
    /// wall-clock instant.
    Elapsed(Duration),
    /// The endpoint dies after completing this many sends — "kill at
    /// chunk N" expressed in the unit the schedule can count
    /// deterministically (data-plane transmissions), independent of
    /// machine speed.
    AfterSends(u64),
}

/// One scripted fault schedule. Everything is a pure function of the
/// spec (including `seed`), so a failing schedule replays exactly.
#[derive(Debug, Clone, Default)]
pub struct ChaosSpec {
    /// Seed for the probabilistic fault layer.
    pub seed: u64,
    /// Probabilistic faults. Applied as-is to switch-side endpoints;
    /// worker endpoints run with `reorder` forced to zero (§3.5).
    pub fault: FaultyConfig,
    /// `(endpoint, stall)` pairs: delay every send from these
    /// endpoints by `stall` — stragglers.
    pub stragglers: Vec<(usize, Duration)>,
    /// `(endpoint, when)` pairs: each endpoint goes silent at `when`
    /// and stays silent — a crash, as the fabric observes it.
    pub kills: Vec<(usize, KillAt)>,
}

impl ChaosSpec {
    /// A spec with this seed and no faults.
    pub fn seeded(seed: u64) -> Self {
        ChaosSpec {
            seed,
            ..ChaosSpec::default()
        }
    }
}

/// Deterministic per-endpoint behavior shaping (the scripted half of
/// a chaos schedule): see [`ChaosSpec::stragglers`] / [`ChaosSpec::kills`].
pub struct ScriptedPort<P: Port> {
    inner: P,
    stall: Duration,
    death: Option<KillAt>,
    sends: u64,
    t0: Instant,
}

impl<P: Port> ScriptedPort<P> {
    pub fn new(inner: P, stall: Duration, death: Option<KillAt>) -> Self {
        ScriptedPort {
            inner,
            stall,
            death,
            sends: 0,
            t0: Instant::now(),
        }
    }

    fn dead(&self) -> bool {
        match self.death {
            None => false,
            Some(KillAt::Elapsed(d)) => self.t0.elapsed() >= d,
            Some(KillAt::AfterSends(n)) => self.sends >= n,
        }
    }
}

impl<P: Port> Port for ScriptedPort<P> {
    fn n_endpoints(&self) -> usize {
        self.inner.n_endpoints()
    }

    fn index(&self) -> usize {
        self.inner.index()
    }

    fn send(&mut self, to: usize, data: &[u8]) {
        if self.dead() {
            return;
        }
        if !self.stall.is_zero() {
            std::thread::sleep(self.stall);
        }
        self.inner.send(to, data);
        self.sends += 1;
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Option<(usize, Vec<u8>)> {
        if self.dead() {
            // A crashed endpoint hears nothing; sleep out the wait so
            // the driving thread does not spin.
            std::thread::sleep(timeout);
            return None;
        }
        self.inner.recv_timeout(timeout)
    }

    // send_batch / recv_batch use the trait defaults so burst I/O is
    // shaped frame by frame, exactly like per-datagram I/O.

    fn stats(&self) -> PortStats {
        self.inner.stats()
    }

    fn timeout_granule(&self) -> Option<Duration> {
        self.inner.timeout_granule()
    }
}

/// The fully shaped port type a chaos run drives.
pub type ChaosPort<P> = FaultyPort<ScriptedPort<P>>;

/// Wrap a fabric in the schedule's two fault layers. Endpoints
/// `0..n_switch_endpoints` are switch-side (shard ports in a sharded
/// fabric) and receive the full fault config; the rest are workers
/// and never reorder their (update) sends.
pub fn chaos_fabric<P: Port>(
    ports: Vec<P>,
    n_switch_endpoints: usize,
    spec: &ChaosSpec,
) -> (Vec<ChaosPort<P>>, Arc<FaultyStats>) {
    let worker_cfg = FaultyConfig {
        reorder: 0.0,
        ..spec.fault
    };
    wrap_fabric(ports, n_switch_endpoints, spec, worker_cfg)
}

fn wrap_fabric<P: Port>(
    ports: Vec<P>,
    n_switch_endpoints: usize,
    spec: &ChaosSpec,
    worker_cfg: FaultyConfig,
) -> (Vec<ChaosPort<P>>, Arc<FaultyStats>) {
    let stats = Arc::new(FaultyStats::default());
    let wrapped = ports
        .into_iter()
        .enumerate()
        .map(|(i, port)| {
            let stall = spec
                .stragglers
                .iter()
                .find(|(ep, _)| *ep == i)
                .map_or(Duration::ZERO, |&(_, d)| d);
            let die_after = spec
                .kills
                .iter()
                .find(|(ep, _)| *ep == i)
                .map(|&(_, when)| when);
            let cfg = if i < n_switch_endpoints {
                spec.fault
            } else {
                worker_cfg
            };
            FaultyPort::new(
                ScriptedPort::new(port, stall, die_after),
                cfg,
                spec.seed.wrapping_add(i as u64),
                Arc::clone(&stats),
            )
        })
        .collect();
    (wrapped, stats)
}

/// Variant for controller-managed runs: probabilistic faults apply
/// only to the first `n_switch_endpoints` endpoints, so every
/// data-plane packet still crosses a faulty link while
/// worker↔controller control traffic (heartbeats, `Start`,
/// `Reconfigure`) stays reliable — the paper's control channel is an
/// ordinary reliable RPC, not the lossy aggregation path. Scripted
/// stragglers and kills still apply to any endpoint.
pub fn chaos_fabric_data_plane<P: Port>(
    ports: Vec<P>,
    n_switch_endpoints: usize,
    spec: &ChaosSpec,
) -> (Vec<ChaosPort<P>>, Arc<FaultyStats>) {
    wrap_fabric(ports, n_switch_endpoints, spec, FaultyConfig::default())
}

/// How a chaos run ended. Both variants are *passes*; the harness
/// fails (returns `Err`) only on silent corruption — a completed run
/// whose numbers differ from the sequential reference.
#[derive(Debug)]
pub enum ChaosOutcome {
    /// The run completed and every worker's aggregate is bit-identical
    /// to the lossless sequential reference. Boxed: a `RunReport`
    /// carries every per-endpoint counter and dwarfs the error arm.
    BitIdentical(Box<RunReport>),
    /// The schedule made completion impossible (e.g. a killed
    /// endpoint on the plain data plane) and the runner reported it
    /// instead of delivering wrong numbers.
    CleanDegradation(Error),
}

fn verify_bit_identical(report: RunReport, reference: &[Vec<f32>]) -> Result<ChaosOutcome> {
    for (w, tensors) in report.results.iter().enumerate() {
        for (t, (got, want)) in tensors.iter().zip(reference).enumerate() {
            if got.len() != want.len() {
                return Err(Error::ProtocolViolation(format!(
                    "chaos: worker {w} tensor {t}: length {} vs reference {}",
                    got.len(),
                    want.len()
                )));
            }
            for (i, (a, b)) in got.iter().zip(want).enumerate() {
                if a.to_bits() != b.to_bits() {
                    return Err(Error::ProtocolViolation(format!(
                        "chaos: worker {w} tensor {t} elem {i}: {a} (0x{:08x}) \
                         differs from reference {b} (0x{:08x})",
                        a.to_bits(),
                        b.to_bits()
                    )));
                }
            }
        }
    }
    Ok(ChaosOutcome::BitIdentical(Box::new(report)))
}

/// Run one all-reduce under `spec` on the plain threaded runner
/// (`ports` = switch + one per worker) and hold the result to the
/// bit-identical-or-clean-degradation bar.
pub fn run_chaos<P: Port + 'static>(
    ports: Vec<P>,
    updates: Vec<Vec<Vec<f32>>>,
    proto: &Protocol,
    run_cfg: &RunConfig,
    spec: &ChaosSpec,
) -> Result<ChaosOutcome> {
    let reference = agg::allreduce(&updates, proto)?;
    let (ports, _stats) = chaos_fabric(ports, 1, spec);
    match run_allreduce(ports, updates, proto, run_cfg) {
        Ok(report) => verify_bit_identical(report, &reference),
        Err(e) => Ok(ChaosOutcome::CleanDegradation(e)),
    }
}

/// Sharded variant: `ports` is a sharded fabric
/// ([`crate::shard::sharded_fabric_size`]) whose first
/// `run_cfg.n_cores` endpoints are switch shards.
pub fn run_chaos_sharded<P: Port + 'static>(
    ports: Vec<P>,
    updates: Vec<Vec<Vec<f32>>>,
    proto: &Protocol,
    run_cfg: &RunConfig,
    spec: &ChaosSpec,
) -> Result<ChaosOutcome> {
    let reference = agg::allreduce(&updates, proto)?;
    let (ports, _stats) = chaos_fabric(ports, run_cfg.n_cores, spec);
    match run_allreduce_sharded(ports, updates, proto, run_cfg) {
        Ok(report) => verify_bit_identical(report, &reference),
        Err(e) => Ok(ChaosOutcome::CleanDegradation(e)),
    }
}

/// Reactor variant: `ports` is a sharded fabric whose first
/// `run_cfg.n_cores` endpoints are switch shards, driven by
/// `n_threads` run-to-completion reactor threads.
pub fn run_chaos_reactor<P: Port + 'static>(
    ports: Vec<P>,
    updates: Vec<Vec<Vec<f32>>>,
    proto: &Protocol,
    run_cfg: &RunConfig,
    spec: &ChaosSpec,
    n_threads: usize,
) -> Result<ChaosOutcome> {
    let reference = agg::allreduce(&updates, proto)?;
    let (ports, _stats) = chaos_fabric(ports, run_cfg.n_cores, spec);
    match run_allreduce_reactor(ports, updates, proto, run_cfg, n_threads) {
        Ok(report) => verify_bit_identical(report, &reference),
        Err(e) => Ok(ChaosOutcome::CleanDegradation(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::channel_fabric;
    use crate::shard::sharded_channel_fabric;

    fn proto(n: usize) -> Protocol {
        Protocol {
            n_workers: n,
            k: 8,
            pool_size: 16,
            rto_ns: 2_000_000,
            scaling_factor: 10_000.0,
            ..Protocol::default()
        }
    }

    fn updates(n: usize, elems: usize) -> Vec<Vec<Vec<f32>>> {
        (0..n)
            .map(|w| {
                vec![(0..elems)
                    .map(|i| (w + 1) as f32 + (i % 5) as f32 * 0.1)
                    .collect()]
            })
            .collect()
    }

    fn chaos_spec(seed: u64) -> ChaosSpec {
        ChaosSpec {
            seed,
            fault: FaultyConfig {
                send_drop: 0.03,
                recv_drop: 0.03,
                dup: 0.05,
                reorder: 0.1,
                reorder_span: 3,
                max_held: 8,
                ..FaultyConfig::default()
            },
            ..ChaosSpec::default()
        }
    }

    #[test]
    fn chaos_run_is_bit_identical_to_reference() {
        let n = 3;
        let out = run_chaos(
            channel_fabric(n + 1),
            updates(n, 400),
            &proto(n),
            &RunConfig::default(),
            &chaos_spec(42),
        )
        .unwrap();
        let ChaosOutcome::BitIdentical(report) = out else {
            panic!("schedule should complete: {out:?}");
        };
        assert!(report.transport_stats.injected_faults() > 0);
    }

    #[test]
    fn sharded_chaos_with_straggler_is_bit_identical() {
        let n = 2;
        let cores = 2;
        let cfg = RunConfig {
            n_cores: cores,
            ..RunConfig::default()
        };
        let spec = ChaosSpec {
            // Worker 0's core 0 endpoint (shards occupy 0..cores).
            stragglers: vec![(cores, Duration::from_micros(20))],
            ..chaos_spec(7)
        };
        let out = run_chaos_sharded(
            sharded_channel_fabric(n, cores),
            updates(n, 512),
            &proto(n),
            &cfg,
            &spec,
        )
        .unwrap();
        let ChaosOutcome::BitIdentical(report) = out else {
            panic!("schedule should complete: {out:?}");
        };
        assert!(report.transport_stats.injected_faults() > 0);
    }

    /// A worker killed on the plain data plane (no control plane to
    /// shrink the job) must surface as a reported error — never as a
    /// completed run with wrong numbers.
    #[test]
    fn killed_endpoint_degrades_cleanly() {
        let n = 3;
        let cfg = RunConfig {
            max_wall: Duration::from_millis(400),
            ..RunConfig::default()
        };
        let spec = ChaosSpec {
            kills: vec![(1, KillAt::Elapsed(Duration::from_millis(5)))], // worker 0
            ..chaos_spec(9)
        };
        let out = run_chaos(
            channel_fabric(n + 1),
            updates(n, 8192),
            &proto(n),
            &cfg,
            &spec,
        )
        .unwrap();
        assert!(
            matches!(out, ChaosOutcome::CleanDegradation(_)),
            "a dead worker cannot complete without the control plane: {out:?}"
        );
    }

    /// `KillAt::AfterSends` pins a crash to a deterministic point in
    /// the packet schedule ("kill at chunk N"): the worker dies after
    /// its Nth transmission no matter how fast the machine is, and the
    /// plain data plane must degrade cleanly.
    #[test]
    fn kill_after_n_sends_degrades_cleanly() {
        let n = 3;
        let cfg = RunConfig {
            max_wall: Duration::from_millis(400),
            ..RunConfig::default()
        };
        let spec = ChaosSpec {
            kills: vec![(1, KillAt::AfterSends(40))], // worker 0, mid-tensor
            ..ChaosSpec::seeded(9)
        };
        let out = run_chaos(
            channel_fabric(n + 1),
            updates(n, 8192),
            &proto(n),
            &cfg,
            &spec,
        )
        .unwrap();
        assert!(
            matches!(out, ChaosOutcome::CleanDegradation(_)),
            "a dead worker cannot complete without the control plane: {out:?}"
        );
    }

    /// The reactor runner under the same probabilistic schedule as the
    /// threaded runners: bit-identical or nothing.
    #[test]
    fn reactor_chaos_is_bit_identical() {
        let n = 3;
        let cfg = RunConfig {
            n_cores: 1,
            ..RunConfig::default()
        };
        let out = run_chaos_reactor(
            sharded_channel_fabric(n, 1),
            updates(n, 400),
            &proto(n),
            &cfg,
            &chaos_spec(42),
            2,
        )
        .unwrap();
        let ChaosOutcome::BitIdentical(report) = out else {
            panic!("schedule should complete: {out:?}");
        };
        assert!(report.transport_stats.injected_faults() > 0);
        assert!(report.reactor.is_some());
    }

    #[test]
    fn same_spec_same_outcome() {
        let n = 2;
        let run = || {
            let out = run_chaos(
                channel_fabric(n + 1),
                updates(n, 200),
                &proto(n),
                &RunConfig::default(),
                &chaos_spec(1234),
            )
            .unwrap();
            match out {
                ChaosOutcome::BitIdentical(r) => r.results,
                other => panic!("{other:?}"),
            }
        };
        assert_eq!(run(), run(), "a chaos schedule must replay exactly");
    }
}
