//! Fault-injecting transport wrapper: drops outgoing datagrams with a
//! configured probability, deterministically per seed — the threaded
//! analog of the simulator's per-link loss injection (§5.5).

use crate::port::Port;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

/// Shared drop-statistics across all wrapped ports of one fabric.
#[derive(Debug, Default)]
pub struct LossStats {
    inner: Mutex<(u64, u64)>, // (sent, dropped)
}

impl LossStats {
    pub fn sent(&self) -> u64 {
        self.inner.lock().0
    }
    pub fn dropped(&self) -> u64 {
        self.inner.lock().1
    }
}

/// A port whose sends are dropped with probability `p`.
pub struct LossyPort<P: Port> {
    inner: P,
    p: f64,
    rng: SmallRng,
    stats: Arc<LossStats>,
}

impl<P: Port> LossyPort<P> {
    pub fn new(inner: P, p: f64, seed: u64, stats: Arc<LossStats>) -> Self {
        assert!((0.0..=1.0).contains(&p));
        LossyPort {
            inner,
            p,
            rng: SmallRng::seed_from_u64(seed),
            stats,
        }
    }
}

/// Wrap every port of a fabric with the same loss probability.
/// Returns the ports plus the shared statistics handle.
pub fn lossy_fabric<P: Port>(
    ports: Vec<P>,
    p: f64,
    seed: u64,
) -> (Vec<LossyPort<P>>, Arc<LossStats>) {
    let stats = Arc::new(LossStats::default());
    let wrapped = ports
        .into_iter()
        .enumerate()
        .map(|(i, port)| LossyPort::new(port, p, seed.wrapping_add(i as u64), Arc::clone(&stats)))
        .collect();
    (wrapped, stats)
}

impl<P: Port> Port for LossyPort<P> {
    fn n_endpoints(&self) -> usize {
        self.inner.n_endpoints()
    }

    fn index(&self) -> usize {
        self.inner.index()
    }

    fn send(&mut self, to: usize, data: &[u8]) {
        let mut s = self.stats.inner.lock();
        s.0 += 1;
        if self.p > 0.0 && self.rng.gen_bool(self.p) {
            s.1 += 1;
            return;
        }
        drop(s);
        self.inner.send(to, data);
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Option<(usize, Vec<u8>)> {
        self.inner.recv_timeout(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::channel_fabric;

    #[test]
    fn drops_at_configured_rate() {
        let ports = channel_fabric(2);
        let (mut ports, stats) = lossy_fabric(ports, 0.5, 42);
        let mut rx = ports.pop().unwrap();
        let mut tx = ports.pop().unwrap();
        for _ in 0..1000 {
            tx.send(1, b"x");
        }
        let mut received = 0;
        while rx.recv_timeout(Duration::from_millis(1)).is_some() {
            received += 1;
        }
        assert_eq!(stats.sent(), 1000);
        let dropped = stats.dropped();
        assert_eq!(received + dropped as usize, 1000);
        assert!((350..=650).contains(&dropped), "dropped {dropped}");
    }

    #[test]
    fn zero_loss_passes_everything() {
        let ports = channel_fabric(2);
        let (mut ports, stats) = lossy_fabric(ports, 0.0, 1);
        let mut rx = ports.pop().unwrap();
        let mut tx = ports.pop().unwrap();
        for _ in 0..100 {
            tx.send(1, b"y");
        }
        let mut received = 0;
        while rx.recv_timeout(Duration::from_millis(1)).is_some() {
            received += 1;
        }
        assert_eq!(received, 100);
        assert_eq!(stats.dropped(), 0);
    }
}
