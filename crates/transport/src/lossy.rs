//! Loss-only fault injection — a thin convenience layer over
//! [`crate::faulty`], kept so existing callers (and the §5.5-style
//! loss-recovery experiments) keep their one-knob API: a single drop
//! probability, deterministic per seed.

use crate::faulty::{faulty_fabric, FaultyConfig, FaultyPort, FaultyStats};
use crate::port::Port;
use std::sync::Arc;

/// Loss statistics — the full [`FaultyStats`]; only `sent()` and
/// `dropped()` move for a loss-only fabric.
pub type LossStats = FaultyStats;

/// A port whose sends are dropped with probability `p`.
pub type LossyPort<P> = FaultyPort<P>;

/// Wrap every port of a fabric with the same loss probability.
/// Returns the ports plus the shared statistics handle.
pub fn lossy_fabric<P: Port>(
    ports: Vec<P>,
    p: f64,
    seed: u64,
) -> (Vec<LossyPort<P>>, Arc<LossStats>) {
    faulty_fabric(ports, FaultyConfig::loss_only(p), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::channel_fabric;
    use std::time::Duration;

    #[test]
    fn drops_at_configured_rate() {
        let ports = channel_fabric(2);
        let (mut ports, stats) = lossy_fabric(ports, 0.5, 42);
        let mut rx = ports.pop().unwrap();
        let mut tx = ports.pop().unwrap();
        for _ in 0..1000 {
            tx.send(1, b"x");
        }
        let mut received = 0;
        while rx.recv_timeout(Duration::from_millis(1)).is_some() {
            received += 1;
        }
        assert_eq!(stats.sent(), 1000);
        let dropped = stats.dropped();
        assert_eq!(received + dropped as usize, 1000);
        assert!((350..=650).contains(&dropped), "dropped {dropped}");
    }

    #[test]
    fn zero_loss_passes_everything() {
        let ports = channel_fabric(2);
        let (mut ports, stats) = lossy_fabric(ports, 0.0, 1);
        let mut rx = ports.pop().unwrap();
        let mut tx = ports.pop().unwrap();
        for _ in 0..100 {
            tx.send(1, b"y");
        }
        let mut received = 0;
        while rx.recv_timeout(Duration::from_millis(1)).is_some() {
            received += 1;
        }
        assert_eq!(received, 100);
        assert_eq!(stats.dropped(), 0);
    }
}
