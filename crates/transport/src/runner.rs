//! Threaded full-system runner: one switch thread, `n` worker threads,
//! real clocks, real (or in-memory) datagrams.
//!
//! This is the deployment-shaped path: the same sans-IO state machines
//! the simulator drives, but with true parallelism and wall-clock
//! retransmission timers. The paper's equivalent is the DPDK worker
//! component + Tofino switch; here the "switch" is a thread running
//! Algorithm 3 verbatim.

use crate::port::{BurstBuf, Port, PortStats, TxBatch, SWITCH_ENDPOINT};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use switchml_core::config::{Protocol, RtoPolicy, TimeNs};
use switchml_core::error::{Error, Result};
use switchml_core::packet::{Packet, PacketView, HEADER_LEN, MAX_K};
use switchml_core::switch::reliable::ReliableSwitch;
use switchml_core::switch::{SwitchStats, WireAction};
use switchml_core::worker::engine::EngineStats;
use switchml_core::worker::stream::TensorStream;
use switchml_core::worker::Worker;

/// Scratch capacity covering any wire packet we produce or accept.
pub(crate) const SCRATCH_CAPACITY: usize = HEADER_LEN + 4 * MAX_K;

/// Runner options.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Abort the run if it has not completed within this budget.
    pub max_wall: Duration,
    /// CPU cores per worker (engine shards).
    pub n_cores: usize,
    /// Frames per burst on the batched I/O path ([`Port::send_batch`]
    /// / [`Port::recv_batch`]). Burst receive never waits to fill the
    /// burst, so larger values amortize syscalls without adding
    /// latency; 1 degenerates to one-datagram-per-call I/O.
    pub burst: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            max_wall: Duration::from_secs(30),
            n_cores: 1,
            burst: 8,
        }
    }
}

/// Raise the protocol's retransmission-timeout floor to the coarsest
/// [`Port::timeout_granule`] of the fabric it is about to run on.
///
/// A UDP port arms `SO_RCVTIMEO` rounded up to a 100µs granule, so an
/// RTO below that can never fire on time — the worker just spins its
/// receive loop believing it is late. Rather than let a microsecond
/// `rto_ns` silently behave as 100µs, the runners normalize the config
/// up front: `rto_ns` (and, for [`RtoPolicy::Adaptive`], `min_ns` /
/// `max_ns`; for [`RtoPolicy::ExponentialBackoff`], `max_ns`) are
/// raised to the granule so the reported timers match the effective
/// ones. Logged once per process when a clamp actually changes
/// something.
pub fn clamp_rto_to_granule<P: Port>(proto: &Protocol, ports: &[P]) -> Protocol {
    let Some(granule_ns) = ports
        .iter()
        .filter_map(|p| p.timeout_granule())
        .map(|d| d.as_nanos() as TimeNs)
        .max()
    else {
        return proto.clone();
    };
    let mut out = proto.clone();
    let mut clamped = false;
    if out.rto_ns < granule_ns {
        out.rto_ns = granule_ns;
        clamped = true;
    }
    match &mut out.rto_policy {
        RtoPolicy::Fixed => {}
        RtoPolicy::ExponentialBackoff { max_ns } => {
            if *max_ns < out.rto_ns {
                *max_ns = out.rto_ns;
                clamped = true;
            }
        }
        RtoPolicy::Adaptive { min_ns, max_ns } => {
            if *min_ns < granule_ns {
                *min_ns = granule_ns;
                clamped = true;
            }
            if *max_ns < out.rto_ns.max(*min_ns) {
                *max_ns = out.rto_ns.max(*min_ns);
                clamped = true;
            }
        }
    }
    if clamped {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            eprintln!(
                "switchml-transport: RTO floor clamped to the transport's \
                 {}µs receive-timeout granule (configured timers were finer \
                 than the clock can honor)",
                granule_ns / 1_000
            );
        });
    }
    out
}

/// Resolve a caller-supplied protocol into the configuration a runner
/// actually executes: validate it, then raise the RTO floor to the
/// fabric's receive-timeout granule ([`clamp_rto_to_granule`]).
///
/// Every runner entry point — [`run_allreduce_session`], the sharded
/// runner, the controlled runner, and any future multi-job scheduler
/// loop — must pass its config through here exactly once, so a new
/// entry point cannot forget the clamp and ship timers the transport
/// clock cannot honor.
pub fn resolve_run_proto<P: Port>(proto: &Protocol, ports: &[P]) -> Result<Protocol> {
    proto.validate()?;
    Ok(clamp_rto_to_granule(proto, ports))
}

/// Result of a threaded all-reduce.
#[derive(Debug)]
pub struct RunReport {
    /// Per-worker aggregated tensors (sums; identical across workers).
    pub results: Vec<Vec<Vec<f32>>>,
    pub worker_stats: Vec<EngineStats>,
    pub switch_stats: SwitchStats,
    /// Transport counters summed over every endpoint: kernel-side send
    /// failures here are invisible to `worker_stats`/`switch_stats`,
    /// which only see them as protocol loss.
    pub transport_stats: PortStats,
    /// Event-loop health counters, present only for runs driven by the
    /// run-to-completion reactor ([`crate::reactor::run_allreduce_reactor`]).
    pub reactor: Option<crate::reactor::ReactorStats>,
    /// Two-level tree counters, present only for hierarchical runs
    /// ([`crate::hier::run_allreduce_hier`]).
    pub hier: Option<crate::hier::HierReport>,
    pub wall: Duration,
}

fn switch_loop<P: Port>(
    mut port: P,
    proto: &Protocol,
    burst: usize,
    stop: &AtomicBool,
    deadline: Instant,
) -> Result<(SwitchStats, PortStats)> {
    let n = proto.n_workers;
    let mut switch = ReliableSwitch::new(proto)?;
    // Debug builds run the reference-model oracle from
    // `switchml_core::oracle` in lock-step with the switch: any
    // divergence from Algorithm 3 panics the thread instead of
    // corrupting a gradient.
    #[cfg(debug_assertions)]
    let mut oracle = switchml_core::oracle::ReliableOracle::for_switch(&switch);
    // The aggregation hot path is allocation-free: datagram bursts
    // land in `rxb`'s preallocated frames, each is parsed as a
    // borrowed [`PacketView`] and aggregated straight into the slot
    // registers, and responses are encoded into `tx` then staged in
    // `txb` — all storage reused for the lifetime of the thread. The
    // whole burst is drained before the responses are flushed, so one
    // send syscall covers the burst.
    let mut rxb = BurstBuf::new(burst, SCRATCH_CAPACITY);
    let mut txb = TxBatch::new(SCRATCH_CAPACITY);
    let mut tx = Vec::with_capacity(SCRATCH_CAPACITY);
    while !stop.load(Ordering::Acquire) {
        if Instant::now() > deadline {
            return Err(Error::ProtocolViolation(
                "switch thread exceeded the wall-clock budget".into(),
            ));
        }
        if port.recv_batch(&mut rxb, Duration::from_micros(200)) == 0 {
            continue;
        }
        txb.clear();
        for (_from, frame) in rxb.iter() {
            let Ok(view) = PacketView::parse(frame) else {
                continue; // corrupted / foreign datagram
            };
            let action = switch.on_view(&view, &mut tx)?;
            #[cfg(debug_assertions)]
            if view.kind() == switchml_core::packet::PacketKind::Update {
                if let Err(v) = oracle.observe_update(
                    view.wid(),
                    view.ver(),
                    view.idx(),
                    view.off(),
                    &view,
                    switchml_core::oracle::ObservedAction::of_wire(&action),
                    &switch,
                ) {
                    panic!("switch thread violated a protocol invariant: {v}");
                }
            }
            match action {
                WireAction::Multicast => {
                    for w in 0..n {
                        txb.push(crate::port::worker_endpoint(w))
                            .extend_from_slice(&tx);
                    }
                }
                WireAction::Unicast(wid) => {
                    txb.push(crate::port::worker_endpoint(wid as usize))
                        .extend_from_slice(&tx);
                }
                WireAction::Drop => {}
            }
        }
        txb.flush(&mut port);
    }
    Ok((switch.stats(), port.stats()))
}

/// Drive one worker until its current aggregation session completes.
fn drive_worker<P: Port>(
    port: &mut P,
    worker: &mut Worker,
    burst: usize,
    deadline: Instant,
    epoch: Instant,
) -> Result<()> {
    let now_ns = || epoch.elapsed().as_nanos() as u64;
    // Reusable wire scratch: received bursts land in `rxb`'s frames,
    // outgoing packets are encoded straight into `txb` and flushed as
    // one batch — no per-packet `encode()` allocations, one send
    // syscall per loop iteration.
    let mut rxb = BurstBuf::new(burst, SCRATCH_CAPACITY);
    let mut txb = TxBatch::new(SCRATCH_CAPACITY);
    for pkt in worker.start(now_ns())? {
        pkt.encode_into(txb.push(SWITCH_ENDPOINT));
    }
    txb.flush(port);
    while !worker.is_done() {
        if Instant::now() > deadline {
            return Err(Error::ProtocolViolation(format!(
                "worker {} exceeded the wall-clock budget at {:.1}% progress",
                worker.wid(),
                worker.progress() * 100.0
            )));
        }
        let wait = worker
            .next_deadline()
            .map(|d| d.saturating_sub(now_ns()))
            .unwrap_or(1_000_000)
            .clamp(1, 5_000_000); // poll at least every 5 ms
        if port.recv_batch(&mut rxb, Duration::from_nanos(wait)) > 0 {
            for (_from, frame) in rxb.iter() {
                if let Ok(pkt) = Packet::decode(frame) {
                    for out in worker.on_result(&pkt, now_ns())? {
                        out.encode_into(txb.push(SWITCH_ENDPOINT));
                    }
                }
            }
        }
        let t = now_ns();
        if worker.next_deadline().is_some_and(|d| d <= t) {
            for pkt in worker.expired(t)? {
                pkt.encode_into(txb.push(SWITCH_ENDPOINT));
            }
        }
        txb.flush(port);
    }
    Ok(())
}

/// Per-round aggregated tensors plus the thread's engine and port
/// counters — one worker thread's contribution to a [`SessionReport`].
type WorkerOutcome = (Vec<Vec<Vec<f32>>>, EngineStats, PortStats);

fn worker_loop<P: Port>(
    mut port: P,
    wid: u16,
    proto: &Protocol,
    rounds: &[Vec<Vec<f32>>],
    cfg: &RunConfig,
    deadline: Instant,
) -> Result<WorkerOutcome> {
    let epoch = Instant::now();
    let mk_stream = |tensors: &Vec<Vec<f32>>| {
        TensorStream::from_f32(tensors, proto.mode, proto.scaling_factor, proto.k)
    };
    let mut worker = Worker::sharded(wid, proto, mk_stream(&rounds[0])?, cfg.n_cores)?;
    let mut results = Vec::with_capacity(rounds.len());
    for (r, tensors) in rounds.iter().enumerate().skip(1) {
        drive_worker(&mut port, &mut worker, cfg.burst, deadline, epoch)?;
        // Continue the session against the live switch: pool-version
        // parity carries into round r (Appendix B's continuous stream
        // across iterations).
        let (res, next) = worker.into_next_session(mk_stream(tensors)?)?;
        results.push(res);
        worker = next;
        let _ = r;
    }
    drive_worker(&mut port, &mut worker, cfg.burst, deadline, epoch)?;
    let stats = worker.stats();
    results.push(worker.into_results(1)?);
    Ok((results, stats, port.stats()))
}

/// Run a full synchronous all-reduce over a transport fabric.
///
/// `ports[0]` is the switch endpoint; `ports[w + 1]` is worker `w`.
/// `updates[w]` is worker `w`'s tensor set (all workers must agree on
/// shapes). Returns each worker's aggregated tensors (the element-wise
/// sum across workers).
pub fn run_allreduce<P: Port + 'static>(
    ports: Vec<P>,
    updates: Vec<Vec<Vec<f32>>>,
    proto: &Protocol,
    cfg: &RunConfig,
) -> Result<RunReport> {
    let n = updates.len();
    let rounds: Vec<Vec<Vec<Vec<f32>>>> = vec![updates];
    let mut multi = run_allreduce_session(ports, rounds, proto, cfg)?;
    debug_assert_eq!(multi.rounds.len(), 1);
    let results = multi.rounds.pop().expect("one round");
    debug_assert_eq!(results.len(), n);
    Ok(RunReport {
        results,
        worker_stats: multi.worker_stats,
        switch_stats: multi.switch_stats,
        transport_stats: multi.transport_stats,
        reactor: None,
        hier: None,
        wall: multi.wall,
    })
}

/// Result of a multi-round session ([`run_allreduce_session`]).
#[derive(Debug)]
pub struct SessionReport {
    /// `rounds[r][w]` = worker w's aggregated tensors for round r.
    pub rounds: Vec<Vec<Vec<Vec<f32>>>>,
    pub worker_stats: Vec<EngineStats>,
    pub switch_stats: SwitchStats,
    /// Transport counters summed over every endpoint.
    pub transport_stats: PortStats,
    pub wall: Duration,
}

/// Run several back-to-back all-reduces against one *persistent*
/// switch — one per training iteration, the way the paper's
/// integration streams tensors "across iterations" without resetting
/// switch state. Workers continue the pool-version parity between
/// rounds, and no barrier separates rounds: a fast worker may begin
/// round r+1 while a slow one finishes r, which the one-phase-lag
/// invariant makes safe.
///
/// `rounds[r][w]` is worker `w`'s tensor set for round `r`; every
/// round and worker must agree on shapes within the round.
pub fn run_allreduce_session<P: Port + 'static>(
    ports: Vec<P>,
    rounds: Vec<Vec<Vec<Vec<f32>>>>,
    proto: &Protocol,
    cfg: &RunConfig,
) -> Result<SessionReport> {
    let proto = &resolve_run_proto(proto, &ports)?;
    if ports.len() != proto.n_workers + 1 {
        return Err(Error::InvalidConfig(format!(
            "need {} ports (switch + workers), got {}",
            proto.n_workers + 1,
            ports.len()
        )));
    }
    if rounds.is_empty() {
        return Err(Error::InvalidConfig("need at least one round".into()));
    }
    for (r, round) in rounds.iter().enumerate() {
        if round.len() != proto.n_workers {
            return Err(Error::InvalidConfig(format!(
                "round {r}: one update set per worker"
            )));
        }
    }
    // Transpose into per-worker round sequences.
    let n = proto.n_workers;
    let mut per_worker: Vec<Vec<Vec<Vec<f32>>>> = (0..n).map(|_| Vec::new()).collect();
    for round in rounds {
        for (w, tensors) in round.into_iter().enumerate() {
            per_worker[w].push(tensors);
        }
    }

    let t0 = Instant::now();
    let deadline = t0 + cfg.max_wall;
    let stop = Arc::new(AtomicBool::new(false));

    let mut ports = ports;
    let worker_ports: Vec<P> = ports.drain(1..).collect();
    let switch_port = ports.pop().expect("switch port");

    std::thread::scope(|scope| {
        let switch_handle = {
            let stop = Arc::clone(&stop);
            let proto = proto.clone();
            let burst = cfg.burst;
            scope.spawn(move || switch_loop(switch_port, &proto, burst, &stop, deadline))
        };

        let worker_handles: Vec<_> = worker_ports
            .into_iter()
            .zip(&per_worker)
            .enumerate()
            .map(|(wid, (port, worker_rounds))| {
                let proto = proto.clone();
                let cfg = cfg.clone();
                scope.spawn(move || {
                    worker_loop(port, wid as u16, &proto, worker_rounds, &cfg, deadline)
                })
            })
            .collect();

        let mut per_worker_results = Vec::with_capacity(n);
        let mut worker_stats = Vec::with_capacity(n);
        let mut transport_stats = PortStats::default();
        let mut first_err = None;
        for h in worker_handles {
            match h.join().expect("worker thread panicked") {
                Ok((r, s, ps)) => {
                    per_worker_results.push(r);
                    worker_stats.push(s);
                    transport_stats.merge(ps);
                }
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        stop.store(true, Ordering::Release);
        let (switch_stats, switch_port_stats) =
            switch_handle.join().expect("switch thread panicked")?;
        transport_stats.merge(switch_port_stats);
        if let Some(e) = first_err {
            return Err(e);
        }
        // Transpose back to rounds-major.
        let n_rounds = per_worker_results[0].len();
        let mut rounds_out = Vec::with_capacity(n_rounds);
        for r in 0..n_rounds {
            rounds_out.push(
                per_worker_results
                    .iter_mut()
                    .map(|w| std::mem::take(&mut w[r]))
                    .collect(),
            );
        }
        Ok(SessionReport {
            rounds: rounds_out,
            worker_stats,
            switch_stats,
            transport_stats,
            wall: t0.elapsed(),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::channel_fabric;
    use crate::lossy::lossy_fabric;
    use crate::udp::udp_fabric;

    fn proto(n: usize) -> Protocol {
        Protocol {
            n_workers: n,
            k: 8,
            pool_size: 16,
            rto_ns: 2_000_000, // 2 ms real time
            scaling_factor: 10_000.0,
            ..Protocol::default()
        }
    }

    fn updates(n: usize, elems: usize) -> Vec<Vec<Vec<f32>>> {
        (0..n)
            .map(|w| {
                vec![(0..elems)
                    .map(|i| (w + 1) as f32 + (i % 5) as f32 * 0.1)
                    .collect()]
            })
            .collect()
    }

    fn expected(n: usize, elems: usize) -> Vec<f32> {
        (0..elems)
            .map(|i| (1..=n).map(|w| w as f32).sum::<f32>() + n as f32 * (i % 5) as f32 * 0.1)
            .collect()
    }

    fn check(report: &RunReport, n: usize, elems: usize) {
        let want = expected(n, elems);
        for r in &report.results {
            for (a, b) in r[0].iter().zip(&want) {
                assert!((a - b).abs() < 0.01, "{a} vs {b}");
            }
        }
    }

    /// A stand-in transport whose receive clock only ticks every
    /// 100µs — shaped like `UdpPort`'s `SO_RCVTIMEO` granule.
    struct CoarseClockPort;
    impl Port for CoarseClockPort {
        fn n_endpoints(&self) -> usize {
            1
        }
        fn index(&self) -> usize {
            0
        }
        fn send(&mut self, _to: usize, _data: &[u8]) {}
        fn recv_timeout(&mut self, _timeout: Duration) -> Option<(usize, Vec<u8>)> {
            None
        }
        fn timeout_granule(&self) -> Option<Duration> {
            Some(Duration::from_micros(100))
        }
    }

    #[test]
    fn rto_floor_clamps_to_timeout_granule() {
        let granule = 100_000; // 100µs in ns
        let fine = Protocol {
            rto_ns: 1_000, // 1µs: finer than the clock can honor
            rto_policy: RtoPolicy::Adaptive {
                min_ns: 500,
                max_ns: 20_000,
            },
            ..proto(2)
        };
        let clamped = clamp_rto_to_granule(&fine, &[CoarseClockPort]);
        assert_eq!(clamped.rto_ns, granule);
        assert_eq!(
            clamped.rto_policy,
            RtoPolicy::Adaptive {
                min_ns: granule,
                max_ns: granule,
            }
        );
        // The clamped config still passes validation (rto within
        // [min, max]).
        clamped.validate().unwrap();

        // Backoff cap below the raised floor is raised along with it.
        let backoff = Protocol {
            rto_ns: 1_000,
            rto_policy: RtoPolicy::ExponentialBackoff { max_ns: 4_000 },
            ..proto(2)
        };
        let clamped = clamp_rto_to_granule(&backoff, &[CoarseClockPort]);
        assert_eq!(clamped.rto_ns, granule);
        assert_eq!(
            clamped.rto_policy,
            RtoPolicy::ExponentialBackoff { max_ns: granule }
        );

        // Timers already coarser than the granule pass through
        // untouched, as does any config on a granule-free fabric.
        let coarse = proto(2); // 2 ms
        assert_eq!(
            clamp_rto_to_granule(&coarse, &[CoarseClockPort]).rto_ns,
            coarse.rto_ns
        );
        let ports = channel_fabric(3);
        assert_eq!(clamp_rto_to_granule(&fine, &ports).rto_ns, fine.rto_ns);
    }

    #[test]
    fn channel_allreduce_4_workers() {
        let n = 4;
        let elems = 1000;
        let ports = channel_fabric(n + 1);
        let report =
            run_allreduce(ports, updates(n, elems), &proto(n), &RunConfig::default()).unwrap();
        check(&report, n, elems);
        assert_eq!(report.worker_stats.len(), n);
        assert_eq!(report.switch_stats.completions as usize, elems.div_ceil(8));
    }

    #[test]
    fn channel_allreduce_with_loss_recovers() {
        let n = 3;
        let elems = 400;
        let (ports, stats) = lossy_fabric(channel_fabric(n + 1), 0.05, 99);
        let report =
            run_allreduce(ports, updates(n, elems), &proto(n), &RunConfig::default()).unwrap();
        check(&report, n, elems);
        assert!(stats.dropped() > 0, "5% loss should drop something");
        let retx: u64 = report.worker_stats.iter().map(|s| s.retx).sum();
        assert!(retx > 0, "losses must trigger retransmissions");
    }

    #[test]
    fn udp_allreduce_2_workers() {
        let n = 2;
        let elems = 512;
        let ports = udp_fabric(n + 1).unwrap();
        let report =
            run_allreduce(ports, updates(n, elems), &proto(n), &RunConfig::default()).unwrap();
        check(&report, n, elems);
    }

    #[test]
    fn sharded_workers_over_channels() {
        let n = 2;
        let elems = 2048;
        let ports = channel_fabric(n + 1);
        let cfg = RunConfig {
            n_cores: 4,
            ..RunConfig::default()
        };
        let report = run_allreduce(ports, updates(n, elems), &proto(n), &cfg).unwrap();
        check(&report, n, elems);
    }

    #[test]
    fn misconfiguration_rejected() {
        let ports = channel_fabric(3);
        assert!(run_allreduce(ports, updates(3, 8), &proto(3), &RunConfig::default()).is_err());
        let ports = channel_fabric(4);
        assert!(run_allreduce(ports, updates(2, 8), &proto(3), &RunConfig::default()).is_err());
    }

    #[test]
    fn multi_round_session_against_persistent_switch() {
        // Three back-to-back all-reduces through ONE switch whose pool
        // state persists; pool-version parity must carry across rounds
        // or the switch would treat round 2's updates as duplicates.
        let n = 3;
        let elems = 100; // odd chunk count → mixed slot parities
        let p = proto(n);
        let rounds: Vec<Vec<Vec<Vec<f32>>>> = (0..3)
            .map(|r| {
                (0..n)
                    .map(|w| vec![vec![(r * 10 + w + 1) as f32; elems]])
                    .collect()
            })
            .collect();
        let ports = channel_fabric(n + 1);
        let report = run_allreduce_session(ports, rounds, &p, &RunConfig::default()).unwrap();
        assert_eq!(report.rounds.len(), 3);
        for (r, round) in report.rounds.iter().enumerate() {
            let expect: f32 = (0..n).map(|w| (r * 10 + w + 1) as f32).sum();
            for (w, rw) in round.iter().enumerate() {
                for &x in &rw[0] {
                    assert!((x - expect).abs() < 0.01, "round {r} worker {w}: {x}");
                }
            }
        }
        // One switch served all three rounds.
        assert_eq!(
            report.switch_stats.completions as usize,
            3 * elems.div_ceil(8)
        );
    }

    #[test]
    fn multi_round_session_with_loss() {
        let n = 2;
        let p = proto(n);
        let rounds: Vec<Vec<Vec<Vec<f32>>>> = (0..4)
            .map(|r| (0..n).map(|w| vec![vec![(r + w) as f32; 64]]).collect())
            .collect();
        let (ports, _) = lossy_fabric(channel_fabric(n + 1), 0.03, 123);
        let report = run_allreduce_session(ports, rounds, &p, &RunConfig::default()).unwrap();
        for (r, round) in report.rounds.iter().enumerate() {
            let expect: f32 = (0..n).map(|w| (r + w) as f32).sum();
            assert!((round[0][0][0] - expect).abs() < 0.01);
        }
    }

    #[test]
    fn total_blackout_times_out_cleanly() {
        let n = 2;
        let (ports, _) = lossy_fabric(channel_fabric(n + 1), 1.0, 5);
        let cfg = RunConfig {
            max_wall: Duration::from_millis(300),
            ..RunConfig::default()
        };
        let err = run_allreduce(ports, updates(n, 64), &proto(n), &cfg).unwrap_err();
        assert!(matches!(err, Error::ProtocolViolation(_)));
    }
}
