//! The transport abstraction.
//!
//! A [`Port`] is one endpoint's view of the datagram fabric: fire-and-
//! forget sends to a peer index, and blocking receives with a timeout
//! (the worker's retransmission clock). Endpoint 0 is the switch;
//! endpoint `w + 1` is worker `w`.
//!
//! Beyond the one-datagram-per-call primitives, ports expose *burst*
//! operations — [`Port::send_batch`] and [`Port::recv_batch`] — the
//! software analogue of DPDK's `rte_eth_tx_burst`/`rx_burst` (§5.2 of
//! the paper pulls bursts of packets per core). The default
//! implementations loop over the per-datagram calls, so every
//! transport keeps working unchanged; [`crate::udp::UdpPort`]
//! overrides them with `sendmmsg`/`recvmmsg`, amortizing one syscall
//! over a whole burst. Burst receive delivers *at most* what is
//! already pending once the first datagram arrives — it never waits
//! to fill the burst, so batching adds no latency.

use std::time::Duration;

/// Per-port transport statistics.
///
/// `send_errors` counts datagrams the transport itself failed to hand
/// to the fabric (kernel `ENOBUFS`, `EMSGSIZE`, …). The protocol
/// treats these like any other loss, but the counter lets a bench or
/// a [`crate::runner::RunReport`] distinguish kernel-side drops from
/// in-fabric loss.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PortStats {
    /// Sends the transport failed to complete (counted as loss).
    pub send_errors: u64,
    /// Outgoing datagrams a fault injector deliberately dropped
    /// ([`crate::faulty::FaultyPort`]); 0 on clean transports.
    pub injected_send_drops: u64,
    /// Arriving datagrams a fault injector dropped before delivery.
    pub injected_recv_drops: u64,
    /// Datagrams a fault injector sent twice.
    pub injected_dups: u64,
    /// Datagrams a fault injector held back and released out of order.
    pub injected_reorders: u64,
}

impl PortStats {
    /// Fold another port's counters into this one.
    pub fn merge(&mut self, other: PortStats) {
        self.send_errors += other.send_errors;
        self.injected_send_drops += other.injected_send_drops;
        self.injected_recv_drops += other.injected_recv_drops;
        self.injected_dups += other.injected_dups;
        self.injected_reorders += other.injected_reorders;
    }

    /// Total faults a chaos layer injected through this port.
    pub fn injected_faults(&self) -> u64 {
        self.injected_send_drops
            + self.injected_recv_drops
            + self.injected_dups
            + self.injected_reorders
    }
}

/// A reusable burst-receive buffer: up to `capacity` frames, each a
/// preallocated scratch [`Vec<u8>`], plus the sender index of each
/// received frame. Steady-state loops construct one and pass it to
/// [`Port::recv_batch`] every iteration; after warmup no allocation
/// occurs.
pub struct BurstBuf {
    frames: Vec<Vec<u8>>,
    froms: Vec<usize>,
    len: usize,
}

impl BurstBuf {
    /// A burst buffer holding up to `burst` frames of `frame_cap`
    /// bytes each (`burst` is clamped to at least 1).
    pub fn new(burst: usize, frame_cap: usize) -> Self {
        let burst = burst.max(1);
        BurstBuf {
            frames: (0..burst).map(|_| Vec::with_capacity(frame_cap)).collect(),
            froms: vec![0; burst],
            len: 0,
        }
    }

    /// Maximum frames per burst.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// Frames received by the last [`Port::recv_batch`].
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn is_full(&self) -> bool {
        self.len == self.capacity()
    }

    /// Drop all received frames (keeps the storage).
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Iterate over `(sender, frame)` pairs of the received burst.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[u8])> {
        self.froms[..self.len]
            .iter()
            .copied()
            .zip(self.frames[..self.len].iter().map(|f| f.as_slice()))
    }

    /// The next free frame slot, cleared, for a transport to fill.
    /// Call [`BurstBuf::commit_next`] once it holds a datagram.
    /// Panics when full — check [`BurstBuf::is_full`] first.
    pub fn next_slot(&mut self) -> &mut Vec<u8> {
        let slot = &mut self.frames[self.len];
        slot.clear();
        slot
    }

    /// Commit the slot returned by [`BurstBuf::next_slot`] as a frame
    /// received from `from`.
    pub fn commit_next(&mut self, from: usize) {
        self.froms[self.len] = from;
        self.len += 1;
    }

    /// Raw access to every frame's storage (committed or not) for
    /// transports that fill many slots in one syscall.
    pub(crate) fn storage_mut(&mut self) -> &mut [Vec<u8>] {
        &mut self.frames
    }

    /// Set frame `i`'s length after the kernel wrote into its storage.
    ///
    /// # Safety
    /// The caller must guarantee `len` bytes of `frames[i]`'s capacity
    /// were initialized (e.g. by `recvmmsg`) and `len <= capacity`.
    pub(crate) unsafe fn set_frame_len(&mut self, i: usize, len: usize) {
        debug_assert!(len <= self.frames[i].capacity());
        self.frames[i].set_len(len);
    }

    /// Commit the filled slot at index `i >= len()` as the next
    /// received frame (swapping it into position), attributed to
    /// `from`. Used by multi-frame receives that skip frames from
    /// unknown senders while keeping the committed prefix contiguous.
    pub(crate) fn commit_at(&mut self, i: usize, from: usize) {
        debug_assert!(i >= self.len);
        if i != self.len {
            self.frames.swap(self.len, i);
        }
        self.froms[self.len] = from;
        self.len += 1;
    }
}

/// A reusable burst-send staging buffer: parallel `(dest, frame)`
/// arrays whose frame storage survives [`TxBatch::clear`], so a
/// steady-state loop encodes every outgoing packet straight into the
/// batch and flushes it with one [`Port::send_batch`] call.
pub struct TxBatch {
    dests: Vec<usize>,
    frames: Vec<Vec<u8>>,
    len: usize,
    frame_cap: usize,
}

impl TxBatch {
    /// An empty batch whose frames are allocated on demand with
    /// `frame_cap` bytes of capacity (then reused forever).
    pub fn new(frame_cap: usize) -> Self {
        TxBatch {
            dests: Vec::new(),
            frames: Vec::new(),
            len: 0,
            frame_cap,
        }
    }

    /// Frames staged since the last clear.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop all staged frames (keeps the storage).
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Stage a frame for `dest`: returns the cleared scratch buffer to
    /// encode the datagram into.
    pub fn push(&mut self, dest: usize) -> &mut Vec<u8> {
        if self.len == self.frames.len() {
            self.frames.push(Vec::with_capacity(self.frame_cap));
            self.dests.push(0);
        }
        self.dests[self.len] = dest;
        let frame = &mut self.frames[self.len];
        frame.clear();
        self.len += 1;
        frame
    }

    /// Destination endpoint per staged frame.
    pub fn dests(&self) -> &[usize] {
        &self.dests[..self.len]
    }

    /// The staged frames.
    pub fn frames(&self) -> &[Vec<u8>] {
        &self.frames[..self.len]
    }

    /// Flush the staged frames through `port` and clear the batch.
    pub fn flush<P: Port + ?Sized>(&mut self, port: &mut P) {
        if self.len > 0 {
            port.send_batch(self.dests(), self.frames());
        }
        self.clear();
    }
}

/// A datagram endpoint.
pub trait Port: Send {
    /// Number of endpoints on this fabric.
    fn n_endpoints(&self) -> usize;
    /// This endpoint's index.
    fn index(&self) -> usize;
    /// Send a datagram to endpoint `to`. Unreliable by contract: the
    /// datagram may be silently dropped (lossy wrappers, UDP).
    fn send(&mut self, to: usize, data: &[u8]);
    /// Receive the next datagram, waiting at most `timeout`.
    /// `None` means the timeout elapsed.
    fn recv_timeout(&mut self, timeout: Duration) -> Option<(usize, Vec<u8>)>;

    /// Receive the next datagram into a caller-owned scratch buffer,
    /// reusing its capacity; returns the sender index. This is the
    /// allocation-free receive path (the software analogue of DPDK's
    /// preallocated mbuf pool): steady-state loops call it with the
    /// same buffer every iteration. The default routes through
    /// [`Port::recv_timeout`]; transports with internal receive
    /// buffers override it to skip the intermediate `Vec`.
    fn recv_into(&mut self, buf: &mut Vec<u8>, timeout: Duration) -> Option<usize> {
        let (from, data) = self.recv_timeout(timeout)?;
        buf.clear();
        buf.extend_from_slice(&data);
        Some(from)
    }

    /// Send a burst: `frames[i]` goes to endpoint `dests[i]`. Same
    /// loss contract as [`Port::send`]. The default loops over
    /// [`Port::send`]; batching transports override it to amortize
    /// the per-datagram cost (one `sendmmsg` per burst).
    fn send_batch(&mut self, dests: &[usize], frames: &[Vec<u8>]) {
        debug_assert_eq!(dests.len(), frames.len());
        for (&to, frame) in dests.iter().zip(frames) {
            self.send(to, frame);
        }
    }

    /// Receive a burst into `bufs` (cleared first), waiting at most
    /// `timeout` for the *first* datagram; whatever else is already
    /// pending is drained into the remaining slots without waiting.
    /// Returns the number of frames received (0 = timeout elapsed).
    /// A `Duration::ZERO` timeout is a pure non-blocking poll: drain
    /// what is queued and return immediately, never sleeping — the
    /// contract run-to-completion reactors rely on. The default loops
    /// over [`Port::recv_into`] with a zero timeout after the first
    /// frame; batching transports override it with a single
    /// multi-frame syscall.
    fn recv_batch(&mut self, bufs: &mut BurstBuf, timeout: Duration) -> usize {
        bufs.clear();
        let mut wait = timeout;
        while !bufs.is_full() {
            let got = {
                let slot = bufs.next_slot();
                self.recv_into(slot, wait)
            };
            match got {
                Some(from) => bufs.commit_next(from),
                None => break,
            }
            wait = Duration::ZERO;
        }
        bufs.len()
    }

    /// Transport-level counters. The default reports zeros; real
    /// transports (UDP) override it.
    fn stats(&self) -> PortStats {
        PortStats::default()
    }

    /// The coarsest step of this transport's receive-timeout clock, if
    /// it has one. A retransmission timeout below this granule can
    /// never fire on time (the blocking receive rounds its wait up to
    /// the granule), so runners clamp the effective RTO floor to it.
    /// `None` means timeouts are honored at full resolution.
    fn timeout_granule(&self) -> Option<Duration> {
        None
    }
}

/// Default idle-nap cap for non-blocking event loops: 100 µs keeps a
/// quiet loop responsive (well under any sane RTO) while yielding the
/// core — essential on hosts with fewer hardware threads than OS
/// threads.
pub const IDLE_NAP_NS: u64 = 100_000;

/// Yield-then-nap backoff for `Duration::ZERO` poll loops.
///
/// Every run-to-completion loop in this crate (reactor threads, switch
/// shards, hierarchy leaf/spine loops) polls its port non-blockingly
/// and must decide what to do on a miss. The shared policy: the first
/// idle iteration merely yields the core (traffic may already be in
/// flight from a sibling thread), and every subsequent idle iteration
/// naps — bounded by the caller's next-deadline hint and the
/// [`IDLE_NAP_NS`] cap — so a quiet loop burns no CPU yet wakes in
/// time for its earliest timer.
#[derive(Debug, Default)]
pub struct IdleBackoff {
    streak: u32,
    naps: u64,
}

impl IdleBackoff {
    pub fn new() -> Self {
        IdleBackoff::default()
    }

    /// The loop made progress: reset the streak.
    pub fn progress(&mut self) {
        self.streak = 0;
    }

    /// The loop found nothing to do. `hint_ns` is the time until the
    /// caller's next deadline (e.g. the earliest retransmission
    /// timer), bounding the nap so no timer fires late.
    pub fn idle(&mut self, hint_ns: Option<u64>) {
        self.streak += 1;
        if self.streak == 1 {
            std::thread::yield_now();
        } else {
            let nap = hint_ns.unwrap_or(IDLE_NAP_NS).clamp(1, IDLE_NAP_NS);
            std::thread::sleep(Duration::from_nanos(nap));
            self.naps += 1;
        }
    }

    /// Times the loop napped instead of spinning (for stats).
    pub fn naps(&self) -> u64 {
        self.naps
    }
}

/// Conventional endpoint index of the switch.
pub const SWITCH_ENDPOINT: usize = 0;

/// Endpoint index of worker `wid`.
pub fn worker_endpoint(wid: usize) -> usize {
    wid + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::channel_fabric;

    #[test]
    fn default_batch_impls_roundtrip() {
        let mut ports = channel_fabric(2);
        let mut rx = ports.pop().unwrap();
        let mut tx = ports.pop().unwrap();
        let mut batch = TxBatch::new(16);
        for i in 0..5u8 {
            batch.push(1).extend_from_slice(&[i, i, i]);
        }
        assert_eq!(batch.len(), 5);
        batch.flush(&mut tx);
        assert!(batch.is_empty());

        let mut bufs = BurstBuf::new(8, 16);
        let n = rx.recv_batch(&mut bufs, Duration::from_millis(200));
        assert_eq!(n, 5);
        for (i, (from, frame)) in bufs.iter().enumerate() {
            assert_eq!(from, 0);
            assert_eq!(frame, &[i as u8; 3]);
        }
    }

    #[test]
    fn recv_batch_respects_capacity() {
        let mut ports = channel_fabric(2);
        let mut rx = ports.pop().unwrap();
        let mut tx = ports.pop().unwrap();
        for i in 0..10u8 {
            tx.send(1, &[i]);
        }
        let mut bufs = BurstBuf::new(4, 16);
        assert_eq!(rx.recv_batch(&mut bufs, Duration::from_millis(200)), 4);
        assert_eq!(rx.recv_batch(&mut bufs, Duration::from_millis(200)), 4);
        assert_eq!(rx.recv_batch(&mut bufs, Duration::from_millis(200)), 2);
        assert_eq!(rx.recv_batch(&mut bufs, Duration::from_millis(20)), 0);
        assert!(bufs.is_empty());
    }

    #[test]
    fn tx_batch_reuses_storage() {
        let mut batch = TxBatch::new(8);
        batch.push(3).extend_from_slice(b"abc");
        batch.push(1).extend_from_slice(b"defg");
        assert_eq!(batch.dests(), &[3, 1]);
        assert_eq!(batch.frames()[1], b"defg");
        batch.clear();
        // Refilled frames reuse the same backing storage.
        batch.push(2).extend_from_slice(b"xy");
        assert_eq!(batch.dests(), &[2]);
        assert_eq!(batch.frames()[0], b"xy");
    }
}
