//! The transport abstraction.
//!
//! A [`Port`] is one endpoint's view of the datagram fabric: fire-and-
//! forget sends to a peer index, and blocking receives with a timeout
//! (the worker's retransmission clock). Endpoint 0 is the switch;
//! endpoint `w + 1` is worker `w`.

use std::time::Duration;

/// A datagram endpoint.
pub trait Port: Send {
    /// Number of endpoints on this fabric.
    fn n_endpoints(&self) -> usize;
    /// This endpoint's index.
    fn index(&self) -> usize;
    /// Send a datagram to endpoint `to`. Unreliable by contract: the
    /// datagram may be silently dropped (lossy wrappers, UDP).
    fn send(&mut self, to: usize, data: &[u8]);
    /// Receive the next datagram, waiting at most `timeout`.
    /// `None` means the timeout elapsed.
    fn recv_timeout(&mut self, timeout: Duration) -> Option<(usize, Vec<u8>)>;

    /// Receive the next datagram into a caller-owned scratch buffer,
    /// reusing its capacity; returns the sender index. This is the
    /// allocation-free receive path (the software analogue of DPDK's
    /// preallocated mbuf pool): steady-state loops call it with the
    /// same buffer every iteration. The default routes through
    /// [`Port::recv_timeout`]; transports with internal receive
    /// buffers override it to skip the intermediate `Vec`.
    fn recv_into(&mut self, buf: &mut Vec<u8>, timeout: Duration) -> Option<usize> {
        let (from, data) = self.recv_timeout(timeout)?;
        buf.clear();
        buf.extend_from_slice(&data);
        Some(from)
    }
}

/// Conventional endpoint index of the switch.
pub const SWITCH_ENDPOINT: usize = 0;

/// Endpoint index of worker `wid`.
pub fn worker_endpoint(wid: usize) -> usize {
    wid + 1
}
