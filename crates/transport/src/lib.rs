//! # switchml-transport
//!
//! Real (threaded) transports for the SwitchML protocol — the same
//! sans-IO state machines `switchml-netsim` simulates, driven by OS
//! threads with wall-clock retransmission timers:
//!
//! * [`channel`] — in-memory crossbeam-channel fabric (fast, hermetic);
//! * [`udp`] — UDP sockets on loopback (real datagrams, real kernel),
//!   with a batched `sendmmsg`/`recvmmsg` fast path on Linux;
//! * [`faulty`] — deterministic fault injection (loss, duplication,
//!   bounded reordering, recv-side drop) for either;
//! * [`lossy`] — loss-only convenience layer over [`faulty`];
//! * [`runner`] — one switch thread + n worker threads running a full
//!   synchronous all-reduce over burst I/O ([`port::BurstBuf`] /
//!   [`port::TxBatch`], `RunConfig::burst`);
//! * [`reactor`] — run-to-completion event loop: a fixed pool of OS
//!   threads each owning many worker engines, polling non-blocking
//!   bursts and a hashed [`wheel::TimerWheel`] for RTOs, so worker
//!   count is decoupled from thread count.
//!
//! ```no_run
//! use switchml_transport::{channel::channel_fabric, runner::{run_allreduce, RunConfig}};
//! use switchml_core::config::Protocol;
//!
//! let proto = Protocol { n_workers: 2, ..Protocol::default() };
//! let ports = channel_fabric(3); // switch + 2 workers
//! let updates = vec![vec![vec![1.0_f32; 64]], vec![vec![2.0_f32; 64]]];
//! let report = run_allreduce(ports, updates, &proto, &RunConfig::default()).unwrap();
//! assert!((report.results[0][0][0] - 3.0).abs() < 1e-3);
//! ```

pub mod channel;
pub mod chaos;
pub mod faulty;
pub mod hier;
pub mod lossy;
pub mod port;
pub mod reactor;
pub mod runner;
pub mod shard;
pub mod udp;
pub mod wheel;

pub use hier::{
    hier_fabric_size, hier_worker_endpoint, leaf_endpoint, run_allreduce_hier, HierConfig,
    HierReport, SPINE_ENDPOINT,
};
pub use port::{worker_endpoint, BurstBuf, Port, PortStats, TxBatch, SWITCH_ENDPOINT};
pub use reactor::{run_allreduce_reactor, ReactorStats};
pub use runner::{
    resolve_run_proto, run_allreduce, run_allreduce_session, RunConfig, RunReport, SessionReport,
};
pub use shard::{run_allreduce_sharded, sharded_channel_fabric, sharded_fabric_size};
pub use wheel::TimerWheel;
