//! Hashed timer wheel for retransmission timeouts.
//!
//! The threaded runner gives every (worker, core) engine its own OS
//! thread and sleeps it in `recv_batch(next_deadline - now)` — the
//! timeout lives in the blocking call. A run-to-completion reactor
//! cannot block per engine, so RTO deadlines move into an explicit
//! structure: a single-level hashed wheel (Varghese & Lauck) with
//! per-timer generation counters, the classic kernel-TCP design.
//!
//! Semantics the reactor relies on:
//!
//! * **Never early.** A deadline is rounded *up* to tick granularity,
//!   so `fire` happens at the first `advance(now)` with
//!   `now ≥ deadline` — Jacobson's RTO estimate is preserved modulo
//!   one tick of added (never subtracted) latency, exactly like a
//!   kernel's jiffies-granular TCP timer.
//! * **O(1) schedule/cancel.** Cancel just bumps the timer's
//!   generation; the stale bucket entry is dropped lazily when its
//!   tick is swept. Rescheduling (the common case: every accepted
//!   result re-arms the engine's timer) is cancel + schedule.
//! * **Cascade counting.** A deadline more than `n_buckets` ticks out
//!   wraps around the wheel; when its bucket is swept early the entry
//!   is re-inserted ("cascaded") rather than fired. Cascades are
//!   counted and surfaced through `ReactorStats` — a high rate means
//!   the wheel is mis-sized for the RTO distribution.

use switchml_core::config::TimeNs;

#[derive(Debug, Clone, Copy)]
struct Entry {
    id: usize,
    gen: u64,
    deadline_tick: u64,
}

/// A single-level hashed timer wheel over a fixed set of timer ids
/// `0..n_timers` (one per engine in the reactor).
#[derive(Debug)]
pub struct TimerWheel {
    tick_ns: TimeNs,
    buckets: Vec<Vec<Entry>>,
    /// Last tick whose bucket has been swept.
    cursor_tick: u64,
    /// Current generation per timer id; bucket entries with an older
    /// generation are dead.
    gens: Vec<u64>,
    /// Armed deadline per timer id (None = disarmed), for O(n) but
    /// branch-cheap `next_deadline` over a small timer population.
    deadlines: Vec<Option<TimeNs>>,
    cascades: u64,
}

impl TimerWheel {
    /// A wheel for timer ids `0..n_timers`, with the given tick
    /// granularity and bucket count. `tick_ns` must be nonzero.
    pub fn new(n_timers: usize, tick_ns: TimeNs, n_buckets: usize) -> Self {
        assert!(tick_ns > 0, "tick granularity must be nonzero");
        assert!(n_buckets > 0, "wheel needs at least one bucket");
        TimerWheel {
            tick_ns,
            buckets: vec![Vec::new(); n_buckets],
            cursor_tick: 0,
            gens: vec![0; n_timers],
            deadlines: vec![None; n_timers],
            cascades: 0,
        }
    }

    fn tick_of(&self, deadline_ns: TimeNs) -> u64 {
        // Round up: a timer must never fire before its deadline. Also
        // floor at cursor+1 so a deadline in a tick already swept (or
        // exactly at the cursor) fires on the next sweep instead of
        // being orphaned in a bucket the cursor has passed.
        (deadline_ns.div_ceil(self.tick_ns)).max(self.cursor_tick + 1)
    }

    /// Arm (or re-arm) timer `id` to fire at `deadline_ns`. Any
    /// previously armed deadline for `id` is implicitly cancelled.
    pub fn schedule(&mut self, id: usize, deadline_ns: TimeNs) {
        self.gens[id] += 1;
        self.deadlines[id] = Some(deadline_ns);
        let deadline_tick = self.tick_of(deadline_ns);
        let b = (deadline_tick % self.buckets.len() as u64) as usize;
        self.buckets[b].push(Entry {
            id,
            gen: self.gens[id],
            deadline_tick,
        });
    }

    /// Disarm timer `id`. O(1): the bucket entry dies by generation.
    pub fn cancel(&mut self, id: usize) {
        self.gens[id] += 1;
        self.deadlines[id] = None;
    }

    /// Is timer `id` currently armed?
    pub fn is_armed(&self, id: usize) -> bool {
        self.deadlines[id].is_some()
    }

    /// Earliest armed deadline, if any — the reactor's idle-sleep
    /// bound, playing the role the blocking `recv_timeout` played in
    /// the threaded runner.
    pub fn next_deadline(&self) -> Option<TimeNs> {
        self.deadlines.iter().flatten().min().copied()
    }

    /// Sweep every tick up to `now_ns`, calling `fire(id)` for each
    /// timer whose deadline has passed. Fired timers are disarmed;
    /// `fire` may re-`schedule` them (the reactor does, with the
    /// engine's backed-off RTO). Returns the number fired.
    pub fn advance(&mut self, now_ns: TimeNs, mut fire: impl FnMut(usize)) -> usize {
        let now_tick = now_ns / self.tick_ns;
        if now_tick <= self.cursor_tick {
            return 0;
        }
        let n_buckets = self.buckets.len() as u64;
        // After one full revolution every bucket has been swept once;
        // sweeping a bucket twice in one advance is pure waste.
        let first = if now_tick - self.cursor_tick >= n_buckets {
            now_tick - n_buckets + 1
        } else {
            self.cursor_tick + 1
        };
        let mut fired = 0;
        let mut carry: Vec<Entry> = Vec::new();
        for tick in first..=now_tick {
            let b = (tick % n_buckets) as usize;
            // Drain in place; live-but-future entries go back in.
            carry.clear();
            carry.append(&mut self.buckets[b]);
            for e in carry.drain(..) {
                if e.gen != self.gens[e.id] {
                    continue; // cancelled or rescheduled
                }
                if e.deadline_tick > now_tick {
                    // Wrapped around the wheel: not due yet.
                    self.cascades += 1;
                    self.buckets[b].push(e);
                    continue;
                }
                // Disarm before firing so `fire` can re-schedule.
                self.gens[e.id] += 1;
                self.deadlines[e.id] = None;
                fired += 1;
                fire(e.id);
            }
        }
        self.cursor_tick = now_tick;
        fired
    }

    /// Entries re-inserted because their deadline lay a full wheel
    /// revolution (or more) ahead of the sweep that found them.
    pub fn cascades(&self) -> u64 {
        self.cascades
    }

    /// Tick granularity, nanoseconds.
    pub fn tick_ns(&self) -> TimeNs {
        self.tick_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use switchml_core::config::RtoPolicy;
    use switchml_core::packet::PoolVersion;
    use switchml_core::worker::engine::{EngineConfig, ResultOutcome, SlotEngine};

    fn fired_ids(w: &mut TimerWheel, now: TimeNs) -> Vec<usize> {
        let mut v = Vec::new();
        w.advance(now, |id| v.push(id));
        v
    }

    #[test]
    fn fires_at_deadline_never_early() {
        let mut w = TimerWheel::new(4, 100, 256);
        w.schedule(0, 350);
        // 350ns rounds up to tick 4 (= 400ns): nothing at 300.
        assert_eq!(fired_ids(&mut w, 300), vec![]);
        assert!(w.is_armed(0));
        assert_eq!(fired_ids(&mut w, 400), vec![0]);
        assert!(!w.is_armed(0));
        // One-shot: nothing left.
        assert_eq!(fired_ids(&mut w, 10_000), vec![]);
    }

    #[test]
    fn rounding_to_tick_granularity() {
        let mut w = TimerWheel::new(2, 100, 16);
        w.schedule(0, 101); // tick 2 → 200ns
        w.schedule(1, 200); // exact multiple stays at tick 2
        assert_eq!(fired_ids(&mut w, 199), vec![]);
        let mut at_200 = fired_ids(&mut w, 200);
        at_200.sort_unstable();
        assert_eq!(at_200, vec![0, 1]);
    }

    #[test]
    fn deadline_in_the_past_fires_on_next_sweep() {
        let mut w = TimerWheel::new(1, 100, 16);
        assert_eq!(fired_ids(&mut w, 1_000), vec![]); // cursor at tick 10
        w.schedule(0, 500); // already past: floored to tick 11
        assert_eq!(w.next_deadline(), Some(500));
        assert_eq!(fired_ids(&mut w, 1_100), vec![0]);
    }

    #[test]
    fn cancel_suppresses_fire() {
        let mut w = TimerWheel::new(2, 100, 16);
        w.schedule(0, 300);
        w.schedule(1, 300);
        w.cancel(0);
        assert!(!w.is_armed(0));
        assert_eq!(w.next_deadline(), Some(300));
        assert_eq!(fired_ids(&mut w, 1_000), vec![1]);
    }

    #[test]
    fn reschedule_moves_the_deadline() {
        let mut w = TimerWheel::new(1, 100, 16);
        w.schedule(0, 300);
        w.schedule(0, 900); // supersedes: the tick-3 entry is stale
        assert_eq!(fired_ids(&mut w, 500), vec![]);
        assert_eq!(w.next_deadline(), Some(900));
        assert_eq!(fired_ids(&mut w, 900), vec![0]);
        assert_eq!(w.cascades(), 0);
    }

    #[test]
    fn wrapped_deadline_cascades_then_fires() {
        // 8 buckets × 100ns tick = one revolution per 800ns. A timer
        // 2.5 revolutions out must cascade (be re-inserted), not fire,
        // when its bucket is swept early.
        let mut w = TimerWheel::new(1, 100, 8);
        w.schedule(0, 2_000); // tick 20, bucket 4
        assert_eq!(fired_ids(&mut w, 800), vec![]); // sweeps bucket 4 at tick 4
        assert!(w.cascades() >= 1);
        assert!(w.is_armed(0));
        assert_eq!(fired_ids(&mut w, 1_600), vec![]); // tick 12: cascade again
        assert_eq!(fired_ids(&mut w, 2_000), vec![0]);
    }

    /// A timer whose entry has already been cascade-reinserted must
    /// still die to `cancel` — the re-inserted entry carries the old
    /// generation and may not fire, and the id must stay reusable.
    #[test]
    fn cancel_after_cascade_reinsert_never_fires() {
        let mut w = TimerWheel::new(1, 100, 8);
        w.schedule(0, 2_000); // tick 20, bucket 4 — 2.5 revolutions out
        assert_eq!(fired_ids(&mut w, 800), vec![]); // bucket 4 swept at tick 4
        assert!(w.cascades() >= 1, "entry was not cascade-reinserted");
        // Cancel while the entry sits re-inserted in its bucket.
        w.cancel(0);
        assert!(!w.is_armed(0));
        assert_eq!(w.next_deadline(), None);
        // Sweeping far past the original deadline must not resurrect it.
        assert_eq!(fired_ids(&mut w, 4_000), vec![]);
        // The id stays usable: a fresh schedule fires normally, once.
        w.schedule(0, 4_500);
        assert_eq!(fired_ids(&mut w, 4_500), vec![0]);
        assert_eq!(fired_ids(&mut w, 10_000), vec![]);
    }

    /// A deadline exactly one revolution ahead hashes into the bucket
    /// the cursor just swept — the wrap boundary. Round-up-never-early
    /// must hold across it: tick-by-tick sweeps over the intervening
    /// revolution fire nothing, and the entry fires on the first sweep
    /// of its bucket (no cascade — a cascade would mean the wheel
    /// visited it a lap early).
    #[test]
    fn exactly_one_revolution_ahead_fires_on_time_not_a_lap_early() {
        // 8 buckets × 100ns tick: one revolution per 800ns.
        let mut w = TimerWheel::new(1, 100, 8);
        assert_eq!(fired_ids(&mut w, 300), vec![]); // cursor at tick 3
        w.schedule(0, 300 + 800); // tick 11 = bucket 3, cursor's bucket
        for now in (400..1_100).step_by(100) {
            assert_eq!(fired_ids(&mut w, now), vec![], "fired early at {now}ns");
            assert!(w.is_armed(0));
        }
        assert_eq!(fired_ids(&mut w, 1_100), vec![0]);
        assert_eq!(w.cascades(), 0);
        assert_eq!(w.next_deadline(), None);
    }

    #[test]
    fn advance_is_bounded_by_one_revolution() {
        // A huge time jump must not sweep each bucket more than once,
        // and everything due must still fire exactly once.
        let mut w = TimerWheel::new(8, 100, 8);
        for id in 0..8 {
            w.schedule(id, 100 * (id as u64 + 1));
        }
        let mut fired = fired_ids(&mut w, 1_000_000_000);
        fired.sort_unstable();
        assert_eq!(fired, (0..8).collect::<Vec<_>>());
        assert_eq!(w.next_deadline(), None);
    }

    #[test]
    fn next_deadline_tracks_minimum() {
        let mut w = TimerWheel::new(3, 100, 16);
        assert_eq!(w.next_deadline(), None);
        w.schedule(0, 900);
        w.schedule(1, 400);
        w.schedule(2, 700);
        assert_eq!(w.next_deadline(), Some(400));
        w.cancel(1);
        assert_eq!(w.next_deadline(), Some(700));
        fired_ids(&mut w, 700);
        assert_eq!(w.next_deadline(), Some(900));
    }

    /// Karn's rule survives the move from blocking timeouts to the
    /// wheel: a result that lands *after* a wheel-fired retransmission
    /// must not become an RTT sample.
    #[test]
    fn karn_rule_no_rtt_sample_after_wheel_retransmission() {
        let rto = 1_000_000; // 1ms
        let mut eng = SlotEngine::new(EngineConfig {
            wid: 0,
            k: 4,
            slot_base: 0,
            n_slots: 1,
            chunk_base: 0,
            n_chunks: 2,
            rto: Some(rto),
            rto_policy: RtoPolicy::Adaptive {
                min_ns: 100_000,
                max_ns: 8_000_000,
            },
        })
        .unwrap();
        let mut w = TimerWheel::new(1, 50_000, 256);

        // t=0: first window goes out; arm the wheel from the engine's
        // own deadline, exactly as the reactor does.
        let descs = eng.start(0);
        assert_eq!(descs.len(), 1);
        w.schedule(0, eng.next_deadline().unwrap());

        // The result is lost. Sweep past the RTO: the wheel fires, the
        // engine retransmits (tainting the slot), and the timer is
        // re-armed at the backed-off deadline.
        let now = rto + 50_000;
        let mut retx = Vec::new();
        w.advance(now, |_id| retx.extend(eng.expired(now)));
        assert_eq!(retx.len(), 1);
        assert!(retx[0].retransmission);
        w.schedule(0, eng.next_deadline().unwrap());

        // The (re)transmission's result finally arrives. Karn's rule:
        // ambiguous attribution, so no RTT sample.
        let later = now + 300_000;
        match eng.on_result(0, PoolVersion::V0, 0, later).unwrap() {
            ResultOutcome::Accepted { next, .. } => assert!(next.is_some()),
            other => panic!("expected acceptance, got {other:?}"),
        }
        let st = eng.stats();
        assert_eq!(st.rtt_samples, 0, "Karn violated: tainted RTT sampled");
        assert!(st.karn_discards >= 1);
        assert_eq!(st.retx, 1);

        // The follow-up chunk's clean round trip *does* sample.
        w.schedule(0, eng.next_deadline().unwrap());
        let clean = later + 200_000;
        match eng.on_result(0, PoolVersion::V1, 4, clean).unwrap() {
            ResultOutcome::Accepted { next, .. } => assert!(next.is_none()),
            other => panic!("expected acceptance, got {other:?}"),
        }
        assert_eq!(eng.stats().rtt_samples, 1);
        // Engine done; the reactor would cancel its wheel slot.
        w.cancel(0);
        assert_eq!(w.next_deadline(), None);
    }
}
