//! In-memory transport: crossbeam channels between threads.
//!
//! The fastest way to run the full protocol "for real" (true
//! parallelism, true timeouts) without touching the network stack —
//! the moral equivalent of the paper's DPDK loopback rig for
//! correctness work.

use crate::port::Port;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

/// One endpoint of an in-memory fabric.
pub struct ChannelPort {
    index: usize,
    rx: Receiver<(usize, Vec<u8>)>,
    txs: Vec<Sender<(usize, Vec<u8>)>>,
}

type Endpoint = (Sender<(usize, Vec<u8>)>, Receiver<(usize, Vec<u8>)>);

/// Build a fully-connected in-memory fabric of `n` endpoints.
pub fn channel_fabric(n: usize) -> Vec<ChannelPort> {
    let pairs: Vec<Endpoint> = (0..n).map(|_| unbounded()).collect();
    let txs: Vec<Sender<(usize, Vec<u8>)>> = pairs.iter().map(|(t, _)| t.clone()).collect();
    pairs
        .into_iter()
        .enumerate()
        .map(|(index, (_, rx))| ChannelPort {
            index,
            rx,
            txs: txs.clone(),
        })
        .collect()
}

impl Port for ChannelPort {
    fn n_endpoints(&self) -> usize {
        self.txs.len()
    }

    fn index(&self) -> usize {
        self.index
    }

    fn send(&mut self, to: usize, data: &[u8]) {
        // A closed peer (already finished) is indistinguishable from a
        // lossy link; drop silently, as a NIC would.
        let _ = self.txs[to].send((self.index, data.to_vec()));
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Option<(usize, Vec<u8>)> {
        match self.rx.recv_timeout(timeout) {
            Ok(msg) => Some(msg),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_flow_between_endpoints() {
        let mut ports = channel_fabric(3);
        let mut p2 = ports.pop().unwrap();
        let mut p1 = ports.pop().unwrap();
        let mut p0 = ports.pop().unwrap();
        p0.send(2, b"hello");
        p1.send(2, b"world");
        let (from_a, a) = p2.recv_timeout(Duration::from_millis(100)).unwrap();
        let (from_b, b) = p2.recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(
            [(from_a, a), (from_b, b)],
            [(0, b"hello".to_vec()), (1, b"world".to_vec())]
        );
    }

    #[test]
    fn timeout_returns_none() {
        let mut ports = channel_fabric(2);
        let t0 = std::time::Instant::now();
        assert!(ports[0].recv_timeout(Duration::from_millis(20)).is_none());
        assert!(t0.elapsed() >= Duration::from_millis(19));
    }

    #[test]
    fn metadata() {
        let ports = channel_fabric(4);
        assert_eq!(ports[2].index(), 2);
        assert_eq!(ports[2].n_endpoints(), 4);
    }
}
