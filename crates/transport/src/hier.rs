//! Two-level hierarchical aggregation over the real transports (§6).
//!
//! The flat runners funnel every worker's update stream into one
//! switch endpoint. The paper's rack-scale argument (§6) is that a
//! **leaf** switch per rack aggregates its rack's workers locally and
//! forwards a *single* partial-aggregate stream to a **spine** switch,
//! which reduces across racks — cross-rack traffic drops from
//! `n_workers` streams to `racks` streams, and per-socket fan-in drops
//! from `n_workers` to `max(workers_per_rack, racks)`. On a real UDP
//! data plane that fan-in bound is the whole ballgame: a flat star at
//! large `n` overruns the switch socket's receive buffer (incast),
//! and every dropped burst costs an RTO.
//!
//! ## Topology and endpoint layout
//!
//! ```text
//!                       spine (endpoint 0)
//!                      /                  \
//!         leaf rack 0 (1)            leaf rack 1 (2)       ... 1 + r
//!          /    |    \                /    |    \
//!        w0    w1    w2  ...        w0    w1    w2  ...
//!   (1+racks + r·wpr + lw)
//! ```
//!
//! Workers are the same reactor-multiplexed virtual workers as
//! [`crate::reactor`] — hundreds of engines on a handful of OS
//! threads — each speaking the unmodified worker protocol to its
//! rack's leaf. The spine is the unmodified sharded switch loop
//! ([`crate::shard::shard_switch_loop`]) with `n_workers = racks`:
//! from the spine's point of view each *leaf* is just a worker with
//! `wid = rack`.
//!
//! ## The leaf: switch below, worker above
//!
//! A leaf owns two coupled state machines:
//!
//! * a rack-local [`ReliableSwitch`] (`n_workers = workers_per_rack`)
//!   that aggregates its rack exactly like the flat switch loop, and
//! * an up-hop [`SlotEngine`] (`wid = rack`) toward the spine, reusing
//!   the worker side's retransmission state machine and the hashed
//!   [`TimerWheel`] — the leaf→spine hop is its **own RTO domain**
//!   (`HierConfig::up_rto_ns`), so rack-local timers and cross-"rack"
//!   timers back off independently and Jacobson samples on the up hop
//!   measure leaf→spine, never the rack.
//!
//! When the rack completes a phase, the leaf forwards the completed
//! partial up (re-arming that slot's RTO at this true send instant via
//! [`SlotEngine::rearm_slot`]), and when the spine's global result
//! comes back it is multicast down the rack, re-stamped with the
//! rack's epoch. The up hop advances in lock-step with the rack: a
//! spine result for a phase the rack has not (re-)completed is dropped
//! (`up_ready` gate), because advancing past a half-aggregated rack
//! cell would leave residue that corrupts the slot two phases later.
//!
//! ## Rack-granularity failure recovery
//!
//! A leaf crash loses *rack* state only. Recovery re-drives only that
//! rack: the replacement leaf bumps the rack epoch (the packet
//! generation byte, scoped per level — the spine's domain stays at
//! generation 0 and is never touched), waits for each of its workers
//! to publish a [`SlotEngine::slot_snapshots`] lower bound, resumes
//! its up-hop engine at the per-slot **maximum** across those
//! snapshots ([`SlotEngine::resume_at`]), and rebuilds rack state from
//! the workers' retransmissions. Laggard workers one phase behind the
//! resumed engine are served from the leaf's final-result cache, or —
//! when the cache died with the old leaf — by *probing* the spine's
//! shadow copy: the probe is a zero-payload retransmission that is
//! guaranteed to take the switch's duplicate-after-completion path
//! (the laggard's phase is complete at the spine with this rack's
//! contributor bit still set), so the zeros are never aggregated.
//! Quiet racks never see any of this; their traffic never stops.

use crate::port::{BurstBuf, IdleBackoff, Port, PortStats, TxBatch};
use crate::reactor::{ReactorStats, WHEEL_BUCKETS, WHEEL_TICK_NS};
use crate::runner::{resolve_run_proto, RunConfig, RunReport, SCRATCH_CAPACITY};
use crate::shard::shard_switch_loop;
use crate::wheel::TimerWheel;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use switchml_core::config::{NumericMode, Protocol, TimeNs};
use switchml_core::error::{Error, Result};
use switchml_core::packet::{
    encode_result_into, encode_update_into, ElemOffset, PacketKind, PacketView, PoolVersion,
    ResultMeta, SlotIndex, WireElems, WorkerId,
};
use switchml_core::quant::fixed::{dequantize_chunk, quantize_chunk};
use switchml_core::switch::reliable::ReliableSwitch;
use switchml_core::switch::{SwitchStats, WireAction};
use switchml_core::worker::engine::{
    EngineConfig, EngineStats, ResultOutcome, SlotEngine, SlotSnapshot,
};

/// The spine aggregation domain is permanently job generation 0: rack
/// epochs fence worker↔leaf traffic only (per-level scoping), so a
/// leaf reboot never perturbs the spine or the other racks.
const SPINE_EPOCH: u8 = 0;

/// The spine switch's endpoint in a hierarchical fabric.
pub const SPINE_ENDPOINT: usize = 0;

/// Endpoint of rack `rack`'s leaf switch.
pub fn leaf_endpoint(rack: usize) -> usize {
    1 + rack
}

/// Endpoint of local worker `lw` in rack `rack`.
pub fn hier_worker_endpoint(racks: usize, wpr: usize, rack: usize, lw: usize) -> usize {
    1 + racks + rack * wpr + lw
}

/// Fabric size for a two-level tree: spine + leaves + workers.
pub fn hier_fabric_size(racks: usize, wpr: usize) -> usize {
    1 + racks + racks * wpr
}

/// Hierarchical run parameters.
#[derive(Debug, Clone)]
pub struct HierConfig {
    pub racks: usize,
    pub workers_per_rack: usize,
    /// Reactor threads multiplexing the virtual workers.
    pub n_threads: usize,
    /// RTO for the leaf→spine hop — its own domain, independent of the
    /// worker-hop RTO. `None` inherits the protocol RTO. Clamped to
    /// the fabric's timeout granule like every other timer.
    pub up_rto_ns: Option<TimeNs>,
    /// Scripted leaf crash: (rack, wall-clock offset from run start).
    /// The leaf drops *all* soft state at that instant and recovers as
    /// a cold replacement (rack epoch bump + worker-snapshot resume).
    pub kill_leaf: Option<(usize, Duration)>,
}

impl HierConfig {
    pub fn new(racks: usize, workers_per_rack: usize) -> Self {
        HierConfig {
            racks,
            workers_per_rack,
            n_threads: 2,
            up_rto_ns: None,
            kill_leaf: None,
        }
    }
}

/// Per-level counters of a hierarchical run, surfaced through
/// [`RunReport::hier`].
#[derive(Debug, Clone, Default)]
pub struct HierReport {
    pub racks: usize,
    pub workers_per_rack: usize,
    /// Rack-local aggregation counters, one per leaf (merged across
    /// leaf generations if the leaf was killed and replaced).
    pub leaf_switch_stats: Vec<SwitchStats>,
    /// Up-hop (leaf→spine) engine counters, one per leaf: `retx` here
    /// is cross-rack retransmission, `rtt_samples` are leaf→spine
    /// RTTs — the hop-scoped RTO domain made visible.
    pub leaf_up_stats: Vec<EngineStats>,
    /// Final rack epoch per leaf (0 = never rebooted).
    pub rack_epochs: Vec<u8>,
    /// Total scripted leaf reboots executed.
    pub leaf_reboots: u64,
}

/// Cross-thread rendezvous between one leaf and its rack's workers.
/// Quiescent on the data path: workers only touch it when the leaf
/// bumps `snap_gen` (i.e. after a crash).
struct RackShared {
    /// Current rack epoch (generation byte on the worker↔leaf hop).
    epoch: AtomicU8,
    /// Snapshot-request generation. The leaf stores `epoch` *before*
    /// bumping this (release ordering), so a worker that observes a
    /// new generation is guaranteed to see the new epoch — everything
    /// it publishes is therefore a frozen lower bound: any result that
    /// could advance it past the published state carries the dead
    /// epoch and is fenced.
    snap_gen: AtomicU64,
    /// One published entry per local worker. A `done` entry is
    /// terminal (the engine's state is frozen), so it satisfies any
    /// later generation too.
    snaps: Mutex<Vec<Option<PublishedSnapshot>>>,
}

/// What one worker publishes on a snapshot request:
/// `(generation, engine_done, per-slot snapshots)`.
type PublishedSnapshot = (u64, bool, Vec<SlotSnapshot>);

/// A final aggregate the leaf has already multicast down, kept so
/// laggard retransmissions are served locally instead of re-crossing
/// the spine hop. Indexed `[pool version][slot]`; `off` disambiguates
/// which phase the cached value belongs to.
struct CachedFinal {
    off: ElemOffset,
    values: Vec<i32>,
}

/// Per-slot maximum over the rack's published snapshots — the state
/// the true (dead) up-hop engine must have reached. MAX, not MIN: a
/// worker that advanced past phase p proves the leaf accepted p's
/// final, so resuming lower would re-drive a phase the spine has
/// already retired. On an equal chunk, a retired (inactive) snapshot
/// wins: some worker saw the slot's last final, so the slot is done.
fn merged_states(
    snaps: &[Option<(u64, bool, Vec<SlotSnapshot>)>],
    n_slots: usize,
) -> Vec<(PoolVersion, u64, bool)> {
    (0..n_slots)
        .map(|i| {
            let mut best: Option<(PoolVersion, u64, bool)> = None;
            for entry in snaps.iter().flatten() {
                let sn = &entry.2[i];
                best = Some(match best {
                    None => (sn.ver, sn.chunk, sn.active),
                    Some(b) if sn.chunk > b.1 => (sn.ver, sn.chunk, sn.active),
                    Some(b) if sn.chunk == b.1 && !sn.active => (b.0, b.1, false),
                    Some(b) => b,
                });
            }
            best.expect("at least one worker per rack")
        })
        .collect()
}

/// Up-hop parameters shared by every leaf.
#[derive(Clone, Copy)]
struct UpHop {
    total_chunks: u64,
    rto: TimeNs,
}

struct LeafOutcome {
    switch_stats: SwitchStats,
    up_stats: EngineStats,
    port_stats: PortStats,
    epoch: u8,
    reboots: u64,
}

/// One leaf switch: rack-local aggregation below, worker protocol
/// above, run-to-completion over a non-blocking burst poll (the same
/// `Duration::ZERO` contract as the shard and reactor loops).
#[allow(clippy::too_many_arguments)]
fn leaf_loop<P: Port>(
    mut port: P,
    rack: usize,
    racks: usize,
    rack_proto: &Protocol,
    up: UpHop,
    burst: usize,
    shared: &RackShared,
    kill_at: Option<Duration>,
    stop: &AtomicBool,
    epoch0: Instant,
    deadline: Instant,
) -> Result<LeafOutcome> {
    let wpr = rack_proto.n_workers;
    let k = rack_proto.k;
    let n_slots = rack_proto.pool_size;
    let wep = |lw: usize| hier_worker_endpoint(racks, wpr, rack, lw);
    let now_ns = || epoch0.elapsed().as_nanos() as u64;
    let ecfg = EngineConfig {
        wid: rack as WorkerId,
        k,
        slot_base: 0,
        n_slots,
        chunk_base: 0,
        n_chunks: up.total_chunks,
        rto: Some(up.rto),
        rto_policy: rack_proto.rto_policy,
    };

    let mut switch = ReliableSwitch::new(rack_proto)?;
    let mut engine = SlotEngine::new(ecfg)?;
    // The initial window is *not* sent: on the up hop a chunk goes out
    // only when the rack completes it. The engine still arms the full
    // window's slots so `slot_state` tracks what the rack owes.
    let _ = engine.start(now_ns());
    #[cfg(debug_assertions)]
    let mut oracle = switchml_core::oracle::ReliableOracle::for_switch(&switch);
    let mut up_ready = vec![false; n_slots];
    let mut final_cache: [Vec<Option<CachedFinal>>; 2] = [
        (0..n_slots).map(|_| None).collect(),
        (0..n_slots).map(|_| None).collect(),
    ];
    // Laggards waiting on a spine shadow probe, keyed by
    // (pool version, slot, element offset).
    let mut pending: HashMap<(u8, SlotIndex, ElemOffset), Vec<WorkerId>> = HashMap::new();
    let mut wheel = TimerWheel::new(1, WHEEL_TICK_NS, WHEEL_BUCKETS);
    if let Some(dl) = engine.next_deadline() {
        wheel.schedule(0, dl);
    }

    let mut acc_switch_stats = SwitchStats::default();
    let mut rack_epoch: u8 = 0;
    let mut reboots = 0u64;
    let mut killed = false;

    let mut rxb = BurstBuf::new(burst, SCRATCH_CAPACITY);
    let mut txb = TxBatch::new(SCRATCH_CAPACITY);
    let mut tx = Vec::with_capacity(SCRATCH_CAPACITY);
    let mut qbuf = vec![0i32; k];
    let zeros = vec![0i32; k];
    let mut idle = IdleBackoff::new();

    while !stop.load(Ordering::Acquire) {
        if Instant::now() > deadline {
            return Err(Error::ProtocolViolation(format!(
                "leaf rack {rack} exceeded the wall-clock budget ({}/{} up chunks)",
                engine.completed_chunks(),
                up.total_chunks
            )));
        }

        // Scripted crash: lose every byte of soft state, then recover
        // as a cold replacement leaf.
        if let Some(at) = kill_at {
            if !killed && epoch0.elapsed() >= at {
                killed = true;
                reboots += 1;
                acc_switch_stats.merge(switch.stats());
                // Fence the dead generation first, then ask the rack
                // for snapshots; release ordering on `snap_gen` makes
                // the new epoch visible to anyone who observes the new
                // generation.
                rack_epoch = rack_epoch.wrapping_add(1);
                shared.epoch.store(rack_epoch, Ordering::Release);
                let gen = shared.snap_gen.load(Ordering::Relaxed) + 1;
                shared.snap_gen.store(gen, Ordering::Release);
                let states = loop {
                    if Instant::now() > deadline || stop.load(Ordering::Acquire) {
                        return Err(Error::ProtocolViolation(format!(
                            "leaf rack {rack} interrupted mid-recovery"
                        )));
                    }
                    {
                        let snaps = shared.snaps.lock().expect("rack snapshot lock");
                        if snaps
                            .iter()
                            .all(|s| matches!(s, Some((g, done, _)) if *g == gen || *done))
                        {
                            break merged_states(&snaps, n_slots);
                        }
                    }
                    std::thread::sleep(Duration::from_micros(100));
                };
                engine = SlotEngine::resume_at(ecfg, &states, now_ns())?;
                switch = ReliableSwitch::new(rack_proto)?;
                switch.set_epoch(rack_epoch);
                #[cfg(debug_assertions)]
                {
                    oracle = switchml_core::oracle::ReliableOracle::for_switch(&switch);
                }
                up_ready = vec![false; n_slots];
                final_cache = [
                    (0..n_slots).map(|_| None).collect(),
                    (0..n_slots).map(|_| None).collect(),
                ];
                pending.clear();
                wheel = TimerWheel::new(1, WHEEL_TICK_NS, WHEEL_BUCKETS);
                if let Some(dl) = engine.next_deadline() {
                    wheel.schedule(0, dl);
                }
            }
        }

        let mut progress = false;
        let mut rearm_wheel = false;
        if port.recv_batch(&mut rxb, Duration::ZERO) > 0 {
            progress = true;
            for (_from, frame) in rxb.iter() {
                let Ok(view) = PacketView::parse(frame) else {
                    continue; // corrupted / foreign datagram
                };
                match view.kind() {
                    PacketKind::Update => {
                        let (wid, ver, idx, off) = (view.wid(), view.ver(), view.idx(), view.off());
                        if view.epoch() != rack_epoch {
                            // Dead-generation traffic: the switch's
                            // fence counts and absorbs it. The oracle
                            // models the post-fence switch and must
                            // not see these.
                            let act = switch.on_view(&view, &mut tx)?;
                            debug_assert!(matches!(act, WireAction::Drop));
                            continue;
                        }
                        if wid as usize >= wpr || (idx as usize) >= n_slots || view.k() != k {
                            return Err(Error::ProtocolViolation(format!(
                                "rack {rack}: malformed update (wid {wid} slot {idx} k {})",
                                view.k()
                            )));
                        }
                        let ss = engine.slot_state(idx).expect("slot validated above");
                        let cur_off = ss.chunk * k as u64;
                        if ss.active && ver == ss.ver && off == cur_off {
                            // Current phase → rack-local aggregation.
                            let action = switch.on_view(&view, &mut tx)?;
                            #[cfg(debug_assertions)]
                            if let Err(v) = oracle.observe_update(
                                wid,
                                ver,
                                idx,
                                off,
                                &view,
                                switchml_core::oracle::ObservedAction::of_wire(&action),
                                &switch,
                            ) {
                                panic!(
                                    "rack {rack} leaf switch violated a protocol invariant: {v}"
                                );
                            }
                            match action {
                                WireAction::Multicast => {
                                    // Rack phase complete. This is the
                                    // up hop's true send instant: the
                                    // slot's RTO clock restarts here so
                                    // backoff and Jacobson samples are
                                    // scoped to leaf→spine.
                                    final_cache[ver.index()][idx as usize] = None;
                                    up_ready[idx as usize] = true;
                                    engine.rearm_slot(idx, now_ns())?;
                                    rearm_wheel = true;
                                    let cell = switch.cell(ver, idx as usize);
                                    encode_update_into(
                                        rack as WorkerId,
                                        ver,
                                        idx,
                                        off,
                                        SPINE_EPOCH,
                                        false,
                                        cell.value,
                                        txb.push(SPINE_ENDPOINT),
                                    );
                                }
                                WireAction::Unicast(dup) => {
                                    // Duplicate after rack completion.
                                    // The switch's answer is only the
                                    // rack *partial* — never serve it
                                    // down. Serve the cached global
                                    // final, or nudge the spine again.
                                    match &final_cache[ver.index()][idx as usize] {
                                        Some(c) if c.off == off => {
                                            encode_result_into(
                                                ResultMeta {
                                                    wid: dup,
                                                    ver,
                                                    idx,
                                                    off,
                                                    job: 0,
                                                    epoch: rack_epoch,
                                                    retransmission: true,
                                                    f16: false,
                                                },
                                                &c.values,
                                                txb.push(wep(dup as usize)),
                                            );
                                        }
                                        _ => {
                                            let cell = switch.cell(ver, idx as usize);
                                            encode_update_into(
                                                rack as WorkerId,
                                                ver,
                                                idx,
                                                off,
                                                SPINE_EPOCH,
                                                true,
                                                cell.value,
                                                txb.push(SPINE_ENDPOINT),
                                            );
                                        }
                                    }
                                }
                                WireAction::Drop => {}
                            }
                        } else if ss.active && off >= cur_off {
                            return Err(Error::ProtocolViolation(format!(
                                "rack {rack}: worker {wid} is ahead of the up-hop engine \
                                 (slot {idx} off {off}, engine at off {cur_off})"
                            )));
                        } else {
                            // Laggard — self-clocking bounds it to
                            // exactly one phase behind.
                            match &final_cache[ver.index()][idx as usize] {
                                Some(c) if c.off == off => {
                                    encode_result_into(
                                        ResultMeta {
                                            wid,
                                            ver,
                                            idx,
                                            off,
                                            job: 0,
                                            epoch: rack_epoch,
                                            retransmission: true,
                                            f16: false,
                                        },
                                        &c.values,
                                        txb.push(wep(wid as usize)),
                                    );
                                }
                                _ => {
                                    // Cold cache (leaf reboot): probe
                                    // the spine's shadow copy. Safe
                                    // with a zero payload: a laggard's
                                    // phase is complete at the spine
                                    // with our contributor bit still
                                    // set, so the probe rides the
                                    // duplicate path and the zeros are
                                    // never aggregated.
                                    let wait =
                                        pending.entry((ver.index() as u8, idx, off)).or_default();
                                    if !wait.contains(&wid) {
                                        wait.push(wid);
                                    }
                                    encode_update_into(
                                        rack as WorkerId,
                                        ver,
                                        idx,
                                        off,
                                        SPINE_EPOCH,
                                        true,
                                        &zeros,
                                        txb.push(SPINE_ENDPOINT),
                                    );
                                }
                            }
                        }
                    }
                    PacketKind::Result => {
                        let (ver, idx, off) = (view.ver(), view.idx(), view.off());
                        if (idx as usize) >= n_slots || view.k() != k {
                            continue; // foreign datagram
                        }
                        let t = now_ns();
                        let ss = engine.slot_state(idx).expect("slot validated above");
                        let is_current = ss.active && ver == ss.ver && off == ss.chunk * k as u64;
                        if is_current && !up_ready[idx as usize] {
                            // Early final, possible only right after a
                            // reboot: the replacement rack switch has
                            // not re-completed this phase. Advancing
                            // would abandon a half-aggregated cell
                            // whose residue corrupts the slot two
                            // phases later; the rack will re-complete
                            // and the spine answers the re-send from
                            // its shadow.
                            continue;
                        }
                        match engine.on_result(idx, ver, off, t)? {
                            ResultOutcome::Accepted { off, .. } => {
                                // `next` is deliberately ignored: the
                                // next up-hop send happens when the
                                // rack completes that chunk, not here.
                                up_ready[idx as usize] = false;
                                rearm_wheel = true;
                                view.overwrite_into(&mut qbuf[..k]);
                                let entry = &mut final_cache[ver.index()][idx as usize];
                                match entry {
                                    Some(c) => {
                                        c.off = off;
                                        c.values.clear();
                                        c.values.extend_from_slice(&qbuf[..k]);
                                    }
                                    None => {
                                        *entry = Some(CachedFinal {
                                            off,
                                            values: qbuf[..k].to_vec(),
                                        });
                                    }
                                }
                                encode_result_into(
                                    ResultMeta {
                                        wid: 0,
                                        ver,
                                        idx,
                                        off,
                                        job: 0,
                                        epoch: rack_epoch,
                                        retransmission: false,
                                        f16: false,
                                    },
                                    &qbuf[..k],
                                    &mut tx,
                                );
                                for lw in 0..wpr {
                                    txb.push(wep(lw)).extend_from_slice(&tx);
                                }
                            }
                            ResultOutcome::Stale => {
                                // Past phases only reach here as probe
                                // answers; serve the waiting laggards.
                                if let Some(waiters) =
                                    pending.remove(&(ver.index() as u8, idx, off))
                                {
                                    view.overwrite_into(&mut qbuf[..k]);
                                    final_cache[ver.index()][idx as usize] = Some(CachedFinal {
                                        off,
                                        values: qbuf[..k].to_vec(),
                                    });
                                    encode_result_into(
                                        ResultMeta {
                                            wid: 0,
                                            ver,
                                            idx,
                                            off,
                                            job: 0,
                                            epoch: rack_epoch,
                                            retransmission: true,
                                            f16: false,
                                        },
                                        &qbuf[..k],
                                        &mut tx,
                                    );
                                    for w in waiters {
                                        txb.push(wep(w as usize)).extend_from_slice(&tx);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }

        // Timer phase: the up hop's own RTO domain. Only slots whose
        // rack phase is complete retransmit — the others have nothing
        // the spine should see yet (their backoff still advances in
        // the engine; `rearm_slot` resets it at the true send).
        let t = now_ns();
        if wheel.advance(t, |_| {}) > 0 {
            for d in engine.expired(t) {
                if !up_ready[d.slot as usize] {
                    continue;
                }
                let cell = switch.cell(d.ver, d.slot as usize);
                encode_update_into(
                    rack as WorkerId,
                    d.ver,
                    d.slot,
                    d.off,
                    SPINE_EPOCH,
                    true,
                    cell.value,
                    txb.push(SPINE_ENDPOINT),
                );
            }
            rearm_wheel = true;
            progress = true;
        }
        if rearm_wheel {
            match engine.next_deadline() {
                Some(dl) => wheel.schedule(0, dl),
                None => wheel.cancel(0),
            }
        }
        txb.flush(&mut port);

        if progress {
            idle.progress();
        } else {
            let hint = wheel.next_deadline().map(|d| d.saturating_sub(t));
            idle.idle(hint);
        }
    }

    acc_switch_stats.merge(switch.stats());
    Ok(LeafOutcome {
        switch_stats: acc_switch_stats,
        up_stats: engine.stats(),
        port_stats: port.stats(),
        epoch: rack_epoch,
        reboots,
    })
}

/// Quantize + encode one worker update, stamped with the rack's
/// current epoch (the [`crate::shard`] variant hardcodes generation 0).
#[allow(clippy::too_many_arguments)]
fn stage_update_epoch(
    txb: &mut TxBatch,
    leaf_ep: usize,
    wid: WorkerId,
    k: usize,
    data: &[f32],
    f: f64,
    qbuf: &mut [i32],
    d: switchml_core::worker::engine::SendDescriptor,
    epoch: u8,
) {
    let off = d.off as usize;
    let n = k.min(data.len() - off);
    quantize_chunk(&data[off..off + n], f, &mut qbuf[..n]);
    qbuf[n..k].fill(0);
    encode_update_into(
        wid,
        d.ver,
        d.slot,
        d.off,
        epoch,
        d.retransmission,
        &qbuf[..k],
        txb.push(leaf_ep),
    );
}

/// One virtual worker: the same engine-as-plain-state shape as
/// [`crate::reactor`]'s `EngineCtx`, plus the rack pieces (epoch
/// filter, snapshot publication).
struct VwCtx<P: Port> {
    port: P,
    engine: SlotEngine,
    leaf_ep: usize,
    rack: usize,
    lw: usize,
    /// Global worker index (for result placement at join).
    w: usize,
    data: Arc<Vec<f32>>,
    local: Vec<f32>,
    qbuf: Vec<i32>,
    rxb: BurstBuf,
    txb: TxBatch,
    done: bool,
    pending_rearm: bool,
    /// Last snapshot generation this worker published.
    pub_gen: u64,
}

impl<P: Port> VwCtx<P> {
    /// Publish this engine's per-slot lower bound for the leaf's
    /// crash-recovery resume. `done` entries are terminal.
    fn publish_snapshot(&self, shared: &RackShared, gen: u64) {
        let mut snaps = shared.snaps.lock().expect("rack snapshot lock");
        snaps[self.lw] = Some((gen, self.engine.is_done(), self.engine.slot_snapshots()));
    }

    /// Drain one received burst: accept current-epoch results,
    /// dequantize, stage follow-up updates stamped with the rack's
    /// current epoch.
    fn process_rx(&mut self, k: usize, f: f64, now: TimeNs, epoch: u8) -> Result<()> {
        let VwCtx {
            port,
            engine,
            leaf_ep,
            lw,
            data,
            local,
            qbuf,
            rxb,
            txb,
            ..
        } = self;
        for (_from, frame) in rxb.iter() {
            let Ok(view) = PacketView::parse(frame) else {
                continue; // corrupted / foreign datagram
            };
            // The epoch filter is the worker half of rack-scoped
            // fencing: results multicast by a dead leaf generation
            // must not advance this engine past the snapshot it will
            // publish for the replacement.
            if view.kind() != PacketKind::Result
                || !engine.owns_slot(view.idx())
                || view.k() != k
                || view.epoch() != epoch
            {
                continue;
            }
            match engine.on_result(view.idx(), view.ver(), view.off(), now)? {
                ResultOutcome::Accepted { off, next } => {
                    let off = off as usize;
                    let n = k.min(data.len() - off);
                    view.overwrite_into(&mut qbuf[..k]);
                    dequantize_chunk(&qbuf[..n], f, &mut local[off..off + n]);
                    if let Some(d) = next {
                        stage_update_epoch(
                            txb,
                            *leaf_ep,
                            *lw as WorkerId,
                            k,
                            data,
                            f,
                            qbuf,
                            d,
                            epoch,
                        );
                    }
                }
                ResultOutcome::Stale => {}
            }
        }
        txb.flush(port);
        Ok(())
    }
}

/// One reactor thread multiplexing virtual workers across racks.
#[allow(clippy::type_complexity)]
fn hier_reactor_loop<P: Port>(
    mut ctxs: Vec<VwCtx<P>>,
    k: usize,
    f: f64,
    shared: &[Arc<RackShared>],
    epoch0: Instant,
    deadline: Instant,
) -> Result<(Vec<(usize, Vec<f32>, EngineStats)>, PortStats, ReactorStats)> {
    let now_ns = || epoch0.elapsed().as_nanos() as u64;
    let mut wheel = TimerWheel::new(ctxs.len(), WHEEL_TICK_NS, WHEEL_BUCKETS);
    let mut stats = ReactorStats {
        threads: 1,
        engines: ctxs.len() as u64,
        ..ReactorStats::default()
    };
    let mut pending = 0usize;

    for (i, ctx) in ctxs.iter_mut().enumerate() {
        let t = now_ns();
        let epoch = shared[ctx.rack].epoch.load(Ordering::Acquire);
        for d in ctx.engine.start(t) {
            stage_update_epoch(
                &mut ctx.txb,
                ctx.leaf_ep,
                ctx.lw as WorkerId,
                k,
                &ctx.data,
                f,
                &mut ctx.qbuf,
                d,
                epoch,
            );
        }
        ctx.txb.flush(&mut ctx.port);
        if ctx.engine.is_done() {
            ctx.done = true; // zero-chunk engine
            ctx.publish_snapshot(&shared[ctx.rack], ctx.pub_gen);
        } else {
            pending += 1;
            if let Some(dl) = ctx.engine.next_deadline() {
                wheel.schedule(i, dl);
            }
        }
    }

    let mut idle = IdleBackoff::new();
    while pending > 0 {
        if Instant::now() > deadline {
            let stuck: Vec<String> = ctxs
                .iter()
                .filter(|c| !c.done)
                .map(|c| {
                    format!(
                        "r{}w{} {}/{}",
                        c.rack,
                        c.lw,
                        c.engine.completed_chunks(),
                        c.engine.config().n_chunks
                    )
                })
                .collect();
            return Err(Error::ProtocolViolation(format!(
                "hier reactor thread exceeded the wall-clock budget; unfinished engines: {}",
                stuck.join(", ")
            )));
        }
        let mut progress = false;

        for (i, ctx) in ctxs.iter_mut().enumerate() {
            let sh = &shared[ctx.rack];
            // Snapshot requests are checked *before* any packet work:
            // once published, the engine can only advance on results
            // stamped with the new epoch.
            let gen = sh.snap_gen.load(Ordering::Acquire);
            if gen != ctx.pub_gen {
                ctx.pub_gen = gen;
                ctx.publish_snapshot(sh, gen);
            }
            if ctx.done {
                continue;
            }
            stats.polls += 1;
            if ctx.port.recv_batch(&mut ctx.rxb, Duration::ZERO) > 0 {
                stats.rx_batches += 1;
                progress = true;
                let epoch = sh.epoch.load(Ordering::Acquire);
                ctx.process_rx(k, f, now_ns(), epoch)?;
                if ctx.engine.is_done() {
                    ctx.done = true;
                    pending -= 1;
                    wheel.cancel(i);
                    // Terminal publish: this thread may exit before
                    // the leaf ever asks.
                    ctx.publish_snapshot(sh, ctx.pub_gen);
                } else if let Some(dl) = ctx.engine.next_deadline() {
                    wheel.schedule(i, dl);
                }
            }
        }

        let t = now_ns();
        let fired = wheel.advance(t, |i| {
            let ctx = &mut ctxs[i];
            if ctx.done {
                return;
            }
            let epoch = shared[ctx.rack].epoch.load(Ordering::Acquire);
            for d in ctx.engine.expired(t) {
                stage_update_epoch(
                    &mut ctx.txb,
                    ctx.leaf_ep,
                    ctx.lw as WorkerId,
                    k,
                    &ctx.data,
                    f,
                    &mut ctx.qbuf,
                    d,
                    epoch,
                );
            }
            ctx.txb.flush(&mut ctx.port);
            ctx.pending_rearm = true;
        });
        for (i, ctx) in ctxs.iter_mut().enumerate() {
            if ctx.pending_rearm {
                ctx.pending_rearm = false;
                if let Some(dl) = ctx.engine.next_deadline() {
                    wheel.schedule(i, dl);
                }
            }
        }
        if fired > 0 {
            stats.timer_fires += fired as u64;
            progress = true;
        }

        if progress {
            idle.progress();
        } else {
            let hint = wheel.next_deadline().map(|d| d.saturating_sub(now_ns()));
            idle.idle(hint);
        }
    }
    stats.cascades = wheel.cascades();
    stats.idle_sleeps = idle.naps();

    let mut port_stats = PortStats::default();
    let mut out = Vec::with_capacity(ctxs.len());
    for ctx in ctxs {
        port_stats.merge(ctx.port.stats());
        out.push((ctx.w, ctx.local, ctx.engine.stats()));
    }
    Ok((out, port_stats, stats))
}

/// Run one all-reduce over a two-level aggregation tree: one spine,
/// `racks` leaves, and `racks × workers_per_rack` reactor-multiplexed
/// virtual workers — bit-identical to the flat runners and the
/// sequential reference on the same inputs (integer aggregation is
/// order-independent, quantization deterministic).
///
/// `ports` uses the hierarchical endpoint layout
/// ([`hier_fabric_size`]); `updates` is indexed by global worker
/// `w = rack × workers_per_rack + lw`. Only [`NumericMode::Fixed32`]
/// is supported, as in the other scale runners.
pub fn run_allreduce_hier<P: Port + 'static>(
    ports: Vec<P>,
    updates: Vec<Vec<Vec<f32>>>,
    proto: &Protocol,
    cfg: &RunConfig,
    hier: &HierConfig,
) -> Result<RunReport> {
    let proto = &resolve_run_proto(proto, &ports)?;
    let racks = hier.racks;
    let wpr = hier.workers_per_rack;
    let n = racks * wpr;
    if proto.mode != NumericMode::Fixed32 {
        return Err(Error::InvalidConfig(
            "hierarchical runner supports Fixed32 only".into(),
        ));
    }
    if racks == 0 || wpr == 0 {
        return Err(Error::InvalidConfig(
            "racks and workers_per_rack must be > 0".into(),
        ));
    }
    if proto.n_workers != n {
        return Err(Error::InvalidConfig(format!(
            "n_workers ({}) must equal racks × workers_per_rack ({racks}×{wpr})",
            proto.n_workers
        )));
    }
    if hier.n_threads == 0 {
        return Err(Error::InvalidConfig("n_threads must be > 0".into()));
    }
    if updates.len() != n {
        return Err(Error::InvalidConfig(format!(
            "need {n} update sets, got {}",
            updates.len()
        )));
    }
    if ports.len() != hier_fabric_size(racks, wpr) {
        return Err(Error::InvalidConfig(format!(
            "need {} ports (spine + {racks} leaves + {n} workers), got {}",
            hier_fabric_size(racks, wpr),
            ports.len()
        )));
    }
    if let Some((r, _)) = hier.kill_leaf {
        if r >= racks {
            return Err(Error::InvalidConfig(format!(
                "kill_leaf rack {r} out of range (racks = {racks})"
            )));
        }
    }
    let shapes: Vec<usize> = updates[0].iter().map(|t| t.len()).collect();
    for (w, tensors) in updates.iter().enumerate() {
        let s: Vec<usize> = tensors.iter().map(|t| t.len()).collect();
        if s != shapes {
            return Err(Error::InvalidConfig(format!(
                "worker {w}'s tensor shapes disagree with worker 0's"
            )));
        }
    }
    let n_threads = hier.n_threads.min(n);

    // Per-level protocols: the rack hop and the spine hop each run the
    // standard single-switch protocol at their own fan-in. Both
    // inherit the (already granule-clamped) RTO policy; the up hop's
    // initial RTO is its own knob.
    let rack_proto = Protocol {
        n_workers: wpr,
        ..proto.clone()
    };
    rack_proto.validate()?;
    let spine_proto = Protocol {
        n_workers: racks,
        ..proto.clone()
    };
    spine_proto.validate()?;
    let granule = ports
        .iter()
        .filter_map(|p| p.timeout_granule())
        .map(|d| d.as_nanos() as TimeNs)
        .max()
        .unwrap_or(0);
    let up_rto = hier.up_rto_ns.unwrap_or(proto.rto_ns).max(granule).max(1);

    let flat: Vec<Arc<Vec<f32>>> = updates
        .into_iter()
        .map(|tensors| Arc::new(tensors.into_iter().flatten().collect::<Vec<f32>>()))
        .collect();
    let total: usize = shapes.iter().sum();
    let total_chunks = (total as u64).div_ceil(proto.k as u64);
    let k = proto.k;
    let f = proto.scaling_factor;
    let s = proto.pool_size;
    let up = UpHop {
        total_chunks,
        rto: up_rto,
    };

    let t0 = Instant::now();
    let epoch0 = t0;
    let deadline = t0 + cfg.max_wall;
    let stop = Arc::new(AtomicBool::new(false));
    let shared: Vec<Arc<RackShared>> = (0..racks)
        .map(|_| {
            Arc::new(RackShared {
                epoch: AtomicU8::new(0),
                snap_gen: AtomicU64::new(0),
                snaps: Mutex::new((0..wpr).map(|_| None).collect()),
            })
        })
        .collect();

    // Peel the fabric apart: [spine | leaves | workers].
    let mut ports = ports;
    let worker_ports = ports.split_off(1 + racks);
    let leaf_ports = ports.split_off(1);
    let spine_port = ports.pop().expect("spine port");

    // Deal the virtual workers round-robin into per-thread batches, as
    // the flat reactor does: one slow thread delays every rack a
    // little instead of one rack a lot.
    let mut batches: Vec<Vec<VwCtx<P>>> = (0..n_threads).map(|_| Vec::new()).collect();
    for (w, port) in worker_ports.into_iter().enumerate() {
        let rack = w / wpr;
        let lw = w % wpr;
        let ecfg = EngineConfig {
            wid: lw as WorkerId,
            k,
            slot_base: 0,
            n_slots: s,
            chunk_base: 0,
            n_chunks: total_chunks,
            rto: Some(proto.rto_ns),
            rto_policy: proto.rto_policy,
        };
        let ctx = VwCtx {
            port,
            engine: SlotEngine::new(ecfg)?,
            leaf_ep: leaf_endpoint(rack),
            rack,
            lw,
            w,
            data: Arc::clone(&flat[w]),
            local: vec![0.0f32; total],
            qbuf: vec![0i32; k],
            rxb: BurstBuf::new(cfg.burst, SCRATCH_CAPACITY),
            txb: TxBatch::new(SCRATCH_CAPACITY),
            done: false,
            pending_rearm: false,
            pub_gen: 0,
        };
        batches[w % n_threads].push(ctx);
    }

    std::thread::scope(|scope| {
        let spine_handle = {
            let stop = Arc::clone(&stop);
            let proto = spine_proto.clone();
            let burst = cfg.burst;
            // The spine *is* the sharded switch loop with one shard:
            // `worker_core_endpoint(w, 0, 1) = 1 + w` lines up exactly
            // with `leaf_endpoint(w)`, so each leaf is worker `rack`
            // to it.
            scope.spawn(move || shard_switch_loop(spine_port, 0, 1, burst, &proto, &stop, deadline))
        };
        let leaf_handles: Vec<_> = leaf_ports
            .into_iter()
            .enumerate()
            .map(|(r, port)| {
                let stop = Arc::clone(&stop);
                let rack_proto = rack_proto.clone();
                let shared = Arc::clone(&shared[r]);
                let burst = cfg.burst;
                let kill_at = hier.kill_leaf.and_then(|(kr, at)| (kr == r).then_some(at));
                scope.spawn(move || {
                    leaf_loop(
                        port,
                        r,
                        racks,
                        &rack_proto,
                        up,
                        burst,
                        &shared,
                        kill_at,
                        &stop,
                        epoch0,
                        deadline,
                    )
                })
            })
            .collect();
        let reactor_handles: Vec<_> = batches
            .into_iter()
            .map(|ctxs| {
                let shared = shared.clone();
                scope.spawn(move || hier_reactor_loop(ctxs, k, f, &shared, epoch0, deadline))
            })
            .collect();

        let mut flat_results: Vec<Vec<f32>> = (0..n).map(|_| Vec::new()).collect();
        let mut worker_stats = vec![EngineStats::default(); n];
        let mut transport_stats = PortStats::default();
        let mut reactor_stats = ReactorStats::default();
        let mut first_err = None;
        for h in reactor_handles {
            match h.join().expect("hier reactor thread panicked") {
                Ok((engines, ps, rs)) => {
                    transport_stats.merge(ps);
                    reactor_stats.merge(rs);
                    for (w, local, st) in engines {
                        flat_results[w] = local;
                        worker_stats[w] = st;
                    }
                }
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        stop.store(true, Ordering::Release);

        let (spine_stats, spine_ps) = spine_handle.join().expect("spine thread panicked")?;
        transport_stats.merge(spine_ps);
        let mut leaf_switch_stats = Vec::with_capacity(racks);
        let mut leaf_up_stats = Vec::with_capacity(racks);
        let mut rack_epochs = Vec::with_capacity(racks);
        let mut leaf_reboots = 0u64;
        for h in leaf_handles {
            let o = h.join().expect("leaf thread panicked")?;
            transport_stats.merge(o.port_stats);
            leaf_switch_stats.push(o.switch_stats);
            leaf_up_stats.push(o.up_stats);
            rack_epochs.push(o.epoch);
            leaf_reboots += o.reboots;
        }
        if let Some(e) = first_err {
            return Err(e);
        }

        let results = flat_results
            .into_iter()
            .map(|flat_result| {
                let mut tensors = Vec::with_capacity(shapes.len());
                let mut off = 0usize;
                for &len in &shapes {
                    tensors.push(flat_result[off..off + len].to_vec());
                    off += len;
                }
                tensors
            })
            .collect();
        Ok(RunReport {
            results,
            worker_stats,
            switch_stats: spine_stats,
            transport_stats,
            reactor: Some(reactor_stats),
            hier: Some(HierReport {
                racks,
                workers_per_rack: wpr,
                leaf_switch_stats,
                leaf_up_stats,
                rack_epochs,
                leaf_reboots,
            }),
            wall: t0.elapsed(),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::channel_fabric;
    use crate::faulty::{faulty_fabric, FaultyConfig};
    use crate::lossy::lossy_fabric;
    use crate::reactor::run_allreduce_reactor;
    use crate::runner::run_allreduce;
    use crate::shard::{sharded_channel_fabric, sharded_fabric_size};
    use crate::udp::udp_fabric;
    use switchml_core::agg::allreduce;
    use switchml_core::config::RtoPolicy;

    fn proto(n: usize) -> Protocol {
        Protocol {
            n_workers: n,
            k: 8,
            pool_size: 16,
            rto_ns: 2_000_000, // 2 ms real time
            scaling_factor: 10_000.0,
            ..Protocol::default()
        }
    }

    fn updates(n: usize, elems: usize) -> Vec<Vec<Vec<f32>>> {
        (0..n)
            .map(|w| {
                vec![(0..elems)
                    .map(|i| (w + 1) as f32 + (i % 5) as f32 * 0.1)
                    .collect()]
            })
            .collect()
    }

    fn hier_channel(racks: usize, wpr: usize) -> Vec<crate::channel::ChannelPort> {
        channel_fabric(hier_fabric_size(racks, wpr))
    }

    /// Four-way differential at 2 racks × 4 workers on channel: the
    /// hierarchy == the flat star (threaded) == the flat reactor ==
    /// the sequential reference, bit for bit, on a ragged tensor.
    #[test]
    fn hier_2x4_matches_flat_and_reference() {
        let (racks, wpr) = (2, 4);
        let n = racks * wpr;
        let elems = 333; // ragged final chunk
        let p = proto(n);
        let cfg = RunConfig::default();
        let hc = HierConfig::new(racks, wpr);
        let hier =
            run_allreduce_hier(hier_channel(racks, wpr), updates(n, elems), &p, &cfg, &hc).unwrap();
        let star = run_allreduce(channel_fabric(n + 1), updates(n, elems), &p, &cfg).unwrap();
        let reactor =
            run_allreduce_reactor(sharded_channel_fabric(n, 1), updates(n, elems), &p, &cfg, 2)
                .unwrap();
        let reference = allreduce(&updates(n, elems), &p).unwrap();
        for w in 0..n {
            assert_eq!(hier.results[w], star.results[w], "worker {w} vs star");
            assert_eq!(hier.results[w], reactor.results[w], "worker {w} vs reactor");
            assert_eq!(hier.results[w], reference, "worker {w} vs reference");
        }
        let hr = hier.hier.expect("hier stats present");
        assert_eq!(hr.racks, racks);
        assert_eq!(hr.leaf_switch_stats.len(), racks);
        assert_eq!(hr.rack_epochs, vec![0; racks], "no reboots");
        // The spine saw rack-granular traffic: one update per rack
        // per chunk (lossless channel, no retransmissions), not one
        // per worker — the cross-rack traffic reduction of §6.
        assert_eq!(
            hier.switch_stats.updates,
            racks as u64 * hier.results[0][0].len().div_ceil(8) as u64
        );
    }

    /// Same differential at 4 racks × 8 workers.
    #[test]
    fn hier_4x8_matches_flat_and_reference() {
        let (racks, wpr) = (4, 8);
        let n = racks * wpr;
        let elems = 257;
        let p = proto(n);
        let cfg = RunConfig::default();
        let hc = HierConfig {
            n_threads: 4,
            ..HierConfig::new(racks, wpr)
        };
        let hier =
            run_allreduce_hier(hier_channel(racks, wpr), updates(n, elems), &p, &cfg, &hc).unwrap();
        let reactor =
            run_allreduce_reactor(sharded_channel_fabric(n, 1), updates(n, elems), &p, &cfg, 4)
                .unwrap();
        let reference = allreduce(&updates(n, elems), &p).unwrap();
        for w in 0..n {
            assert_eq!(hier.results[w], reactor.results[w], "worker {w} vs flat");
            assert_eq!(hier.results[w], reference, "worker {w} vs reference");
        }
    }

    /// Real kernel datagrams through the whole tree: worker→leaf GSO
    /// trains, leaf→spine re-aggregation, bit-identical to the flat
    /// star on the same UDP transport and to the reference.
    #[test]
    fn hier_udp_2x4_matches_flat_and_reference() {
        let (racks, wpr) = (2, 4);
        let n = racks * wpr;
        let elems = 256;
        let p = proto(n);
        let cfg = RunConfig::default();
        let hc = HierConfig::new(racks, wpr);
        let ports = udp_fabric(hier_fabric_size(racks, wpr)).unwrap();
        let hier = run_allreduce_hier(ports, updates(n, elems), &p, &cfg, &hc).unwrap();
        let flat_ports = udp_fabric(sharded_fabric_size(n, 1)).unwrap();
        let flat = run_allreduce_reactor(flat_ports, updates(n, elems), &p, &cfg, 2).unwrap();
        let reference = allreduce(&updates(n, elems), &p).unwrap();
        for w in 0..n {
            assert_eq!(hier.results[w], flat.results[w], "worker {w} vs flat");
            assert_eq!(hier.results[w], reference, "worker {w} vs reference");
        }
    }

    /// 5% loss on *every* link (both hops) with adaptive RTO on both
    /// hops: worker-hop and up-hop retransmissions both fire, both
    /// Jacobson estimators take samples, and the answer is exact.
    #[test]
    fn hier_4x8_loss_adaptive_rto_both_hops() {
        let (racks, wpr) = (4, 8);
        let n = racks * wpr;
        let elems = 400;
        let p = Protocol {
            rto_policy: RtoPolicy::Adaptive {
                min_ns: 200_000,
                max_ns: 50_000_000,
            },
            ..proto(n)
        };
        let (ports, loss_stats) = lossy_fabric(hier_channel(racks, wpr), 0.05, 77);
        let cfg = RunConfig::default();
        let hc = HierConfig {
            n_threads: 4,
            ..HierConfig::new(racks, wpr)
        };
        let report = run_allreduce_hier(ports, updates(n, elems), &p, &cfg, &hc).unwrap();
        let reference = allreduce(&updates(n, elems), &p).unwrap();
        for w in 0..n {
            assert_eq!(report.results[w], reference, "worker {w}");
        }
        assert!(loss_stats.dropped() > 0, "5% loss should drop something");
        let worker_retx: u64 = report.worker_stats.iter().map(|s| s.retx).sum();
        assert!(worker_retx > 0, "worker-hop losses must retransmit");
        let hr = report.hier.unwrap();
        let up_samples: u64 = hr.leaf_up_stats.iter().map(|s| s.rtt_samples).sum();
        assert!(up_samples > 0, "up-hop adaptive estimator must sample");
    }

    /// Loss over real UDP with GRO engaged (burst ≥ 8), recovered on
    /// both hops, still bit-identical.
    #[test]
    fn hier_udp_loss_is_bit_identical() {
        let (racks, wpr) = (2, 4);
        let n = racks * wpr;
        let elems = 320;
        let p = Protocol {
            rto_policy: RtoPolicy::Adaptive {
                min_ns: 200_000,
                max_ns: 50_000_000,
            },
            ..proto(n)
        };
        let base = udp_fabric(hier_fabric_size(racks, wpr)).unwrap();
        let (ports, loss_stats) = faulty_fabric(base, FaultyConfig::batch_loss_only(0.05), 77);
        let cfg = RunConfig::default();
        let hc = HierConfig::new(racks, wpr);
        let report = run_allreduce_hier(ports, updates(n, elems), &p, &cfg, &hc).unwrap();
        let reference = allreduce(&updates(n, elems), &p).unwrap();
        for w in 0..n {
            assert_eq!(report.results[w], reference, "worker {w}");
        }
        assert!(loss_stats.dropped() > 0, "5% loss should drop something");
    }

    /// Rack-granularity failure recovery: kill leaf 1 mid-stream. The
    /// replacement bumps the rack epoch, resumes from worker
    /// snapshots, re-drives only its own rack (rack 0's epoch stays
    /// 0), and the final tensors are still bit-identical everywhere.
    #[test]
    fn hier_leaf_kill_recovers_bit_identical() {
        let (racks, wpr) = (2, 4);
        let n = racks * wpr;
        let elems = 16_384; // long enough that the kill lands mid-run
        let p = Protocol { k: 32, ..proto(n) };
        let cfg = RunConfig::default();
        let hc = HierConfig {
            kill_leaf: Some((1, Duration::from_millis(1))),
            ..HierConfig::new(racks, wpr)
        };
        let report =
            run_allreduce_hier(hier_channel(racks, wpr), updates(n, elems), &p, &cfg, &hc).unwrap();
        let reference = allreduce(&updates(n, elems), &p).unwrap();
        for w in 0..n {
            assert_eq!(report.results[w], reference, "worker {w}");
        }
        let hr = report.hier.unwrap();
        assert_eq!(hr.leaf_reboots, 1, "the scripted kill must have fired");
        assert_eq!(hr.rack_epochs[1], 1, "killed rack fenced to epoch 1");
        assert_eq!(hr.rack_epochs[0], 0, "quiet rack never re-driven");
    }

    /// The §6 scale story: 128 virtual workers (8 racks × 16) on 4
    /// reactor threads — a flat thread-per-worker topology cannot even
    /// spawn this on a small host — bit-identical to the reference.
    #[test]
    fn hier_128_workers_across_8_racks() {
        let (racks, wpr) = (8, 16);
        let n = racks * wpr;
        let elems = 96;
        let p = proto(n);
        let cfg = RunConfig::default();
        let hc = HierConfig {
            n_threads: 4,
            ..HierConfig::new(racks, wpr)
        };
        let report =
            run_allreduce_hier(hier_channel(racks, wpr), updates(n, elems), &p, &cfg, &hc).unwrap();
        let reference = allreduce(&updates(n, elems), &p).unwrap();
        for w in 0..n {
            assert_eq!(report.results[w], reference, "worker {w}");
        }
        let rs = report.reactor.unwrap();
        assert_eq!(rs.engines, n as u64);
        assert!(rs.engines_per_thread() >= 32.0);
    }

    #[test]
    fn hier_misconfiguration_rejected() {
        let cfg = RunConfig::default();
        let hc = HierConfig::new(2, 4);
        // n_workers mismatch.
        assert!(
            run_allreduce_hier(hier_channel(2, 4), updates(8, 16), &proto(7), &cfg, &hc).is_err()
        );
        // Wrong port count.
        assert!(
            run_allreduce_hier(channel_fabric(5), updates(8, 16), &proto(8), &cfg, &hc).is_err()
        );
        // Non-Fixed32 mode.
        let p16 = Protocol {
            mode: NumericMode::Float16,
            ..proto(8)
        };
        assert!(run_allreduce_hier(hier_channel(2, 4), updates(8, 16), &p16, &cfg, &hc).is_err());
        // Zero reactor threads.
        let hc0 = HierConfig {
            n_threads: 0,
            ..HierConfig::new(2, 4)
        };
        assert!(
            run_allreduce_hier(hier_channel(2, 4), updates(8, 16), &proto(8), &cfg, &hc0).is_err()
        );
        // Kill target out of range.
        let hck = HierConfig {
            kill_leaf: Some((2, Duration::ZERO)),
            ..HierConfig::new(2, 4)
        };
        assert!(
            run_allreduce_hier(hier_channel(2, 4), updates(8, 16), &proto(8), &cfg, &hck).is_err()
        );
    }
}
