//! The nine-model benchmark zoo (§5.1–5.2).
//!
//! For communication modeling what matters is the *gradient tensor
//! inventory*: how many tensors a model update comprises and their
//! sizes ("most existing frameworks emit a gradient tensor per layer
//! and reduce each layer's tensors independently … e.g., 152 for
//! ResNet50 in Caffe2", Appendix B). VGG and AlexNet layer shapes are
//! exact; the ResNet family is generated from its bottleneck-block
//! structure; GoogLeNet/Inception inventories are block-level
//! approximations that match the published parameter totals to within
//! a few percent (documented per model).
//!
//! Single-GPU P100 throughputs are calibration constants: Table 1's
//! ideal column fixes inception3 (1132/8), resnet50 (1838/8) and
//! vgg16 (1180/8); the rest are representative published TF-benchmark
//! figures for a P100 — absolute values only scale the
//! compute-to-communication ratio, which is the quantity the paper's
//! Figure 3 sweeps across models.

use serde::Serialize;

/// One gradient tensor (one layer's weights or biases).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TensorSpec {
    /// Number of f32 parameters.
    pub elems: usize,
}

/// A benchmark DNN.
#[derive(Debug, Clone, Serialize)]
pub struct ModelSpec {
    pub name: &'static str,
    /// Gradient tensors in *backward* (output-to-input) emission order.
    pub tensors: Vec<TensorSpec>,
    /// Single-GPU (P100) training throughput, images/s.
    pub single_gpu_ips: f64,
    /// Default per-worker mini-batch size (§5.1: 128, Table 1: 64,
    /// AlexNet: 512).
    pub batch_size: usize,
}

impl ModelSpec {
    /// Total parameters (= gradient elements per model update).
    pub fn total_params(&self) -> usize {
        self.tensors.iter().map(|t| t.elems).sum()
    }

    /// Model update size in bytes (f32).
    pub fn update_bytes(&self) -> usize {
        4 * self.total_params()
    }
}

fn conv(cin: usize, cout: usize, k: usize) -> [TensorSpec; 2] {
    [
        TensorSpec {
            elems: cin * cout * k * k,
        },
        TensorSpec { elems: cout },
    ]
}

fn fc(cin: usize, cout: usize) -> [TensorSpec; 2] {
    [TensorSpec { elems: cin * cout }, TensorSpec { elems: cout }]
}

fn push(v: &mut Vec<TensorSpec>, t: impl IntoIterator<Item = TensorSpec>) {
    v.extend(t);
}

/// AlexNet (exact layer shapes; 61.1 M parameters).
pub fn alexnet() -> ModelSpec {
    let mut t = Vec::new();
    // Backward order: classifier first.
    push(&mut t, fc(4096, 1000));
    push(&mut t, fc(4096, 4096));
    push(&mut t, fc(9216, 4096));
    push(&mut t, conv(192, 128 * 2, 3)); // conv5 (grouped, flattened)
    push(&mut t, conv(192, 192 * 2, 3)); // conv4
    push(&mut t, conv(256, 384, 3)); // conv3
    push(&mut t, conv(48, 128 * 2, 5)); // conv2
    push(&mut t, conv(3, 96, 11)); // conv1
    ModelSpec {
        name: "alexnet",
        tensors: t,
        single_gpu_ips: 2200.0,
        batch_size: 512,
    }
}

fn vgg(convs: &[(usize, usize)], name: &'static str, ips: f64) -> ModelSpec {
    let mut t = Vec::new();
    push(&mut t, fc(4096, 1000));
    push(&mut t, fc(4096, 4096));
    push(&mut t, fc(25088, 4096));
    for &(cin, cout) in convs.iter().rev() {
        push(&mut t, conv(cin, cout, 3));
    }
    ModelSpec {
        name,
        tensors: t,
        single_gpu_ips: ips,
        batch_size: 128,
    }
}

/// VGG-11 (exact; 132.9 M parameters).
pub fn vgg11() -> ModelSpec {
    vgg(
        &[
            (3, 64),
            (64, 128),
            (128, 256),
            (256, 256),
            (256, 512),
            (512, 512),
            (512, 512),
            (512, 512),
        ],
        "vgg11",
        160.0,
    )
}

/// VGG-16 (exact; 138.4 M parameters).
pub fn vgg16() -> ModelSpec {
    vgg(
        &[
            (3, 64),
            (64, 64),
            (64, 128),
            (128, 128),
            (128, 256),
            (256, 256),
            (256, 256),
            (256, 512),
            (512, 512),
            (512, 512),
            (512, 512),
            (512, 512),
            (512, 512),
        ],
        "vgg16",
        147.5, // Table 1: ideal 1180 / 8
    )
}

/// VGG-19 (exact; 143.7 M parameters).
pub fn vgg19() -> ModelSpec {
    vgg(
        &[
            (3, 64),
            (64, 64),
            (64, 128),
            (128, 128),
            (128, 256),
            (256, 256),
            (256, 256),
            (256, 256),
            (256, 512),
            (512, 512),
            (512, 512),
            (512, 512),
            (512, 512),
            (512, 512),
            (512, 512),
            (512, 512),
        ],
        "vgg19",
        125.0,
    )
}

/// ResNet bottleneck-family generator (exact block structure;
/// batch-norm scale/shift tensors included, which is why ResNet-50
/// lands at the paper's "152 tensors in Caffe2" order of magnitude).
fn resnet(blocks: [usize; 4], name: &'static str, ips: f64) -> ModelSpec {
    let mut t = Vec::new();
    push(&mut t, fc(2048, 1000));
    let widths = [256, 512, 1024, 2048];
    for (stage, &nblocks) in blocks.iter().enumerate().rev() {
        let out = widths[stage];
        let mid = out / 4;
        for b in (0..nblocks).rev() {
            let cin = if b == 0 {
                if stage == 0 {
                    64
                } else {
                    widths[stage - 1]
                }
            } else {
                out
            };
            // 1x1 reduce, 3x3, 1x1 expand, each followed by BN (γ, β).
            push(&mut t, conv(mid, out, 1));
            t.push(TensorSpec { elems: out }); // BN γ (shift in conv() bias)
            push(&mut t, conv(mid, mid, 3));
            t.push(TensorSpec { elems: mid });
            push(&mut t, conv(cin, mid, 1));
            t.push(TensorSpec { elems: mid });
            if b == 0 {
                // Projection shortcut.
                push(&mut t, conv(cin, out, 1));
                t.push(TensorSpec { elems: out });
            }
        }
    }
    push(&mut t, conv(3, 64, 7));
    t.push(TensorSpec { elems: 64 });
    ModelSpec {
        name,
        tensors: t,
        single_gpu_ips: ips,
        batch_size: 128,
    }
}

/// ResNet-50 (≈25.6 M parameters).
pub fn resnet50() -> ModelSpec {
    resnet([3, 4, 6, 3], "resnet50", 229.75) // Table 1: 1838 / 8
}

/// ResNet-101 (≈44.6 M parameters).
pub fn resnet101() -> ModelSpec {
    resnet([3, 4, 23, 3], "resnet101", 138.0)
}

/// Inception-family approximation: a list of (tensor count, elems)
/// block groups matching the published totals within a few percent.
fn inception_like(name: &'static str, groups: &[(usize, usize)], ips: f64) -> ModelSpec {
    let mut t = Vec::new();
    for &(count, elems) in groups {
        for _ in 0..count {
            t.push(TensorSpec { elems });
        }
    }
    ModelSpec {
        name,
        tensors: t,
        single_gpu_ips: ips,
        batch_size: 128,
    }
}

/// GoogLeNet (≈6.8 M parameters; block-level approximation).
pub fn googlenet() -> ModelSpec {
    inception_like(
        "googlenet",
        &[
            (2, 512_000), // classifier
            (16, 180_000),
            (24, 80_000),
            (16, 40_000),
            (2, 60_000),
        ],
        440.0,
    )
}

/// Inception-v3 (≈23.9 M parameters; block-level approximation).
pub fn inception3() -> ModelSpec {
    inception_like(
        "inception3",
        &[
            (2, 1_024_000), // classifier
            (24, 450_000),
            (40, 180_000),
            (24, 120_000),
            (8, 90_000),
        ],
        141.5, // Table 1: 1132 / 8
    )
}

/// Inception-v4 (≈42.7 M parameters; block-level approximation).
pub fn inception4() -> ModelSpec {
    inception_like(
        "inception4",
        &[
            (2, 1_536_000),
            (32, 600_000),
            (48, 280_000),
            (32, 150_000),
            (12, 100_000),
        ],
        70.0,
    )
}

/// The full benchmark suite, in the paper's Figure 3 order.
pub fn all_models() -> Vec<ModelSpec> {
    vec![
        alexnet(),
        googlenet(),
        inception3(),
        inception4(),
        resnet50(),
        resnet101(),
        vgg11(),
        vgg16(),
        vgg19(),
    ]
}

/// Look up a model by name.
pub fn by_name(name: &str) -> Option<ModelSpec> {
    all_models().into_iter().find(|m| m.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mparams(m: &ModelSpec) -> f64 {
        m.total_params() as f64 / 1e6
    }

    #[test]
    fn exact_models_match_published_totals() {
        assert!(
            (mparams(&alexnet()) - 61.1).abs() < 1.5,
            "{}",
            mparams(&alexnet())
        );
        assert!(
            (mparams(&vgg11()) - 132.9).abs() < 1.0,
            "{}",
            mparams(&vgg11())
        );
        assert!(
            (mparams(&vgg16()) - 138.4).abs() < 1.0,
            "{}",
            mparams(&vgg16())
        );
        assert!(
            (mparams(&vgg19()) - 143.7).abs() < 1.0,
            "{}",
            mparams(&vgg19())
        );
    }

    #[test]
    fn resnet_family_close_to_published() {
        assert!(
            (mparams(&resnet50()) - 25.6).abs() < 2.0,
            "{}",
            mparams(&resnet50())
        );
        assert!(
            (mparams(&resnet101()) - 44.6).abs() < 3.0,
            "{}",
            mparams(&resnet101())
        );
    }

    #[test]
    fn inception_family_close_to_published() {
        assert!(
            (mparams(&googlenet()) - 6.8).abs() < 1.0,
            "{}",
            mparams(&googlenet())
        );
        assert!(
            (mparams(&inception3()) - 23.9).abs() < 2.0,
            "{}",
            mparams(&inception3())
        );
        assert!(
            (mparams(&inception4()) - 42.7).abs() < 3.0,
            "{}",
            mparams(&inception4())
        );
    }

    #[test]
    fn resnet50_tensor_count_is_caffe2_scale() {
        // Appendix B: "152 for ResNet50 in Caffe2".
        let n = resnet50().tensors.len();
        assert!((120..=200).contains(&n), "{n} tensors");
    }

    #[test]
    fn zoo_has_nine_models_in_figure3_order() {
        let names: Vec<&str> = all_models().iter().map(|m| m.name).collect();
        assert_eq!(
            names,
            vec![
                "alexnet",
                "googlenet",
                "inception3",
                "inception4",
                "resnet50",
                "resnet101",
                "vgg11",
                "vgg16",
                "vgg19"
            ]
        );
    }

    #[test]
    fn by_name_roundtrips() {
        assert_eq!(by_name("vgg16").unwrap().name, "vgg16");
        assert!(by_name("lenet").is_none());
    }

    #[test]
    fn table1_ideal_throughputs() {
        // Ideal = 8 × single-GPU (Table 1 caption).
        assert!((8.0 * inception3().single_gpu_ips - 1132.0).abs() < 1.0);
        assert!((8.0 * resnet50().single_gpu_ips - 1838.0).abs() < 1.0);
        assert!((8.0 * vgg16().single_gpu_ips - 1180.0).abs() < 1.0);
    }

    #[test]
    fn tensors_nonempty_and_positive() {
        for m in all_models() {
            assert!(!m.tensors.is_empty());
            assert!(m.tensors.iter().all(|t| t.elems > 0), "{}", m.name);
            assert!(m.single_gpu_ips > 0.0);
        }
    }
}
