//! # switchml-dnn
//!
//! The DNN-training substrate of the SwitchML reproduction:
//!
//! * [`zoo`] — the paper's nine-CNN benchmark suite as gradient tensor
//!   inventories + single-GPU throughput calibration;
//! * [`trainer`] — the synchronous data-parallel iteration model that
//!   turns a measured all-reduce profile into training throughput
//!   (Table 1, Figure 3);
//! * [`data`] / [`real_train`] — real (CPU-scale) distributed training
//!   whose gradient all-reduce runs through the actual SwitchML
//!   protocol, for the quantization accuracy study (Figure 10,
//!   Appendix C).

pub mod data;
pub mod real_train;
pub mod trainer;
pub mod zoo;

pub use real_train::{train, Aggregation, TrainConfig, TrainResult};
pub use trainer::{ideal_throughput, training_throughput, ReducerProfile, ThroughputReport};
pub use zoo::{all_models, by_name, ModelSpec, TensorSpec};
