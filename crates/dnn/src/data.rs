//! Synthetic datasets for the real (CPU-scale) training experiments.
//!
//! The paper validates quantization on ImageNet/CIFAR10 (Appendix C);
//! those are gated behind data and GPU access, so the Figure 10
//! reproduction trains real models on seeded Gaussian-blob
//! classification instead — small enough to run in tests, real enough
//! that gradient magnitudes, convergence, and divergence behave like
//! actual SGD.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A labeled classification dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Row-major features: `n_samples × dim`.
    pub x: Vec<f32>,
    pub y: Vec<usize>,
    pub dim: usize,
    pub classes: usize,
}

impl Dataset {
    pub fn len(&self) -> usize {
        self.y.len()
    }

    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    pub fn sample(&self, i: usize) -> &[f32] {
        &self.x[i * self.dim..(i + 1) * self.dim]
    }

    /// Split off the last `test_frac` of samples as a held-out set
    /// (labels are interleaved, so both halves stay balanced).
    pub fn train_test_split(&self, test_frac: f64) -> (Dataset, Dataset) {
        assert!((0.0..1.0).contains(&test_frac));
        let cut = ((1.0 - test_frac) * self.len() as f64) as usize;
        let train = Dataset {
            x: self.x[..cut * self.dim].to_vec(),
            y: self.y[..cut].to_vec(),
            dim: self.dim,
            classes: self.classes,
        };
        let test = Dataset {
            x: self.x[cut * self.dim..].to_vec(),
            y: self.y[cut..].to_vec(),
            dim: self.dim,
            classes: self.classes,
        };
        (train, test)
    }

    /// Split into `n` contiguous, near-equal shards (data parallelism).
    pub fn shards(&self, n: usize) -> Vec<Dataset> {
        assert!(n > 0);
        (0..n)
            .map(|j| {
                let lo = j * self.len() / n;
                let hi = (j + 1) * self.len() / n;
                Dataset {
                    x: self.x[lo * self.dim..hi * self.dim].to_vec(),
                    y: self.y[lo..hi].to_vec(),
                    dim: self.dim,
                    classes: self.classes,
                }
            })
            .collect()
    }
}

/// Box–Muller standard normal.
fn normal(rng: &mut SmallRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Seeded Gaussian blobs: `classes` cluster centers on a sphere of
/// radius `separation`, points scattered with unit variance.
pub fn gaussian_blobs(
    n_samples: usize,
    dim: usize,
    classes: usize,
    separation: f32,
    seed: u64,
) -> Dataset {
    assert!(dim >= 2 && classes >= 2);
    let mut rng = SmallRng::seed_from_u64(seed);
    // Random unit centers, scaled.
    let centers: Vec<Vec<f32>> = (0..classes)
        .map(|_| {
            let mut c: Vec<f32> = (0..dim).map(|_| normal(&mut rng)).collect();
            let norm = c.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-6);
            c.iter_mut().for_each(|v| *v *= separation / norm);
            c
        })
        .collect();
    let mut x = Vec::with_capacity(n_samples * dim);
    let mut y = Vec::with_capacity(n_samples);
    for i in 0..n_samples {
        let label = i % classes; // balanced, interleaved so shards are balanced too
        for c in &centers[label] {
            x.push(c + normal(&mut rng));
        }
        y.push(label);
    }
    Dataset { x, y, dim, classes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_balanced() {
        let a = gaussian_blobs(100, 4, 5, 3.0, 42);
        let b = gaussian_blobs(100, 4, 5, 3.0, 42);
        assert_eq!(a.x, b.x);
        assert_eq!(a.y, b.y);
        for c in 0..5 {
            assert_eq!(a.y.iter().filter(|&&l| l == c).count(), 20);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = gaussian_blobs(50, 4, 2, 3.0, 1);
        let b = gaussian_blobs(50, 4, 2, 3.0, 2);
        assert_ne!(a.x, b.x);
    }

    #[test]
    fn shards_cover_everything() {
        let d = gaussian_blobs(103, 3, 2, 3.0, 7);
        let shards = d.shards(4);
        assert_eq!(shards.iter().map(Dataset::len).sum::<usize>(), 103);
        let rebuilt: Vec<usize> = shards.iter().flat_map(|s| s.y.clone()).collect();
        assert_eq!(rebuilt, d.y);
    }

    #[test]
    fn separated_blobs_are_separable() {
        // Nearest-center classification should be nearly perfect at
        // high separation.
        let d = gaussian_blobs(200, 8, 3, 10.0, 9);
        // Recompute centers from the data itself (class means).
        let mut centers = vec![vec![0.0f32; 8]; 3];
        let mut counts = [0usize; 3];
        for i in 0..d.len() {
            let c = d.y[i];
            counts[c] += 1;
            for (ck, &sk) in centers[c].iter_mut().zip(d.sample(i)) {
                *ck += sk;
            }
        }
        for c in 0..3 {
            centers[c].iter_mut().for_each(|v| *v /= counts[c] as f32);
        }
        let mut correct = 0;
        for i in 0..d.len() {
            let s = d.sample(i);
            let best = (0..3)
                .min_by(|&a, &b| {
                    let da: f32 = s
                        .iter()
                        .zip(&centers[a])
                        .map(|(x, c)| (x - c).powi(2))
                        .sum();
                    let db: f32 = s
                        .iter()
                        .zip(&centers[b])
                        .map(|(x, c)| (x - c).powi(2))
                        .sum();
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            if best == d.y[i] {
                correct += 1;
            }
        }
        assert!(correct as f64 / d.len() as f64 > 0.95);
    }
}
