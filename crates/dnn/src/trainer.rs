//! Data-parallel training-throughput model (§5.2).
//!
//! One synchronous-SGD iteration on each worker is: forward pass,
//! backward pass (which emits gradient tensors output-layer-first,
//! "partially overlapping communication with computation", Appendix
//! B), and an all-reduce of every tensor that must complete before the
//! next iteration. The compute phase is modeled from the model's
//! measured single-GPU throughput; the communication phase is driven
//! by a [`ReducerProfile`] — a (latency, sustained-ATE/s) pair
//! *measured* by running the corresponding protocol on the netsim
//! substrate (see `switchml-bench`), not assumed.
//!
//! Tensors are reduced "independently but sequentially" (Appendix B)
//! in backward emission order; the iteration ends when the last
//! reduction completes.

use crate::zoo::ModelSpec;
use serde::Serialize;

/// Fraction of an iteration's compute spent in the forward pass (the
/// backward pass is roughly 2× forward for CNN training).
pub const FORWARD_FRACTION: f64 = 1.0 / 3.0;

/// Calibrated communication performance of one all-reduce strategy.
#[derive(Debug, Clone, Serialize)]
pub struct ReducerProfile {
    pub name: String,
    /// Sustained aggregation rate, elements per second, as measured at
    /// one worker (Figure 4's ATE/s).
    pub ate_per_sec: f64,
    /// Fixed per-tensor startup cost (pipeline fill, collective setup).
    pub latency_ns: f64,
}

impl ReducerProfile {
    pub fn new(name: impl Into<String>, ate_per_sec: f64, latency_ns: f64) -> Self {
        assert!(ate_per_sec > 0.0);
        ReducerProfile {
            name: name.into(),
            ate_per_sec,
            latency_ns: latency_ns.max(0.0),
        }
    }

    /// Time to all-reduce one tensor, seconds.
    pub fn tensor_time_s(&self, elems: usize) -> f64 {
        self.latency_ns / 1e9 + elems as f64 / self.ate_per_sec
    }
}

/// A training-throughput estimate for one (model, cluster, reducer)
/// combination.
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputReport {
    pub model: String,
    pub reducer: String,
    pub n_workers: usize,
    pub batch_per_worker: usize,
    /// Aggregate images/s across the cluster.
    pub images_per_sec: f64,
    /// Seconds per iteration.
    pub iter_time_s: f64,
    /// Pure compute seconds per iteration.
    pub compute_time_s: f64,
    /// Total communication work (serialized, no overlap), seconds.
    pub comm_time_s: f64,
    /// Fraction of the iteration the network is the bottleneck for.
    pub comm_stall_fraction: f64,
}

/// Estimate synchronous data-parallel training throughput.
///
/// Gradient tensor `i` (backward order) becomes available when the
/// backward pass has covered its layer (approximated by cumulative
/// parameter fraction); reductions run sequentially in that order.
pub fn training_throughput(
    model: &ModelSpec,
    n_workers: usize,
    batch_per_worker: usize,
    reducer: &ReducerProfile,
) -> ThroughputReport {
    assert!(n_workers > 0 && batch_per_worker > 0);
    let compute_s = batch_per_worker as f64 / model.single_gpu_ips;
    let fwd_s = compute_s * FORWARD_FRACTION;
    let bwd_s = compute_s - fwd_s;
    let total_params = model.total_params() as f64;

    let mut cum_params = 0.0f64;
    let mut reduce_free_at = 0.0f64; // when the reducer is next idle
    let mut comm_work = 0.0f64;
    for t in &model.tensors {
        cum_params += t.elems as f64;
        let ready = fwd_s + bwd_s * (cum_params / total_params);
        let dt = reducer.tensor_time_s(t.elems);
        comm_work += dt;
        reduce_free_at = reduce_free_at.max(ready) + dt;
    }
    let iter_s = reduce_free_at.max(compute_s);
    let images = (n_workers * batch_per_worker) as f64 / iter_s;
    ThroughputReport {
        model: model.name.to_string(),
        reducer: reducer.name.clone(),
        n_workers,
        batch_per_worker,
        images_per_sec: images,
        iter_time_s: iter_s,
        compute_time_s: compute_s,
        comm_time_s: comm_work,
        comm_stall_fraction: ((iter_s - compute_s) / iter_s).max(0.0),
    }
}

/// The "Ideal" column of Table 1: perfect linear scaling.
pub fn ideal_throughput(model: &ModelSpec, n_workers: usize) -> f64 {
    n_workers as f64 * model.single_gpu_ips
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    fn fast() -> ReducerProfile {
        ReducerProfile::new("fast", 1e12, 0.0)
    }

    #[test]
    fn infinite_network_reaches_ideal() {
        let m = zoo::resnet50();
        let r = training_throughput(&m, 8, 64, &fast());
        let ideal = ideal_throughput(&m, 8);
        assert!((r.images_per_sec - ideal).abs() / ideal < 0.01);
        assert!(r.comm_stall_fraction < 0.01);
    }

    #[test]
    fn slow_network_bounds_throughput() {
        let m = zoo::vgg16();
        // 10 M elem/s: vgg16's 138 M params take ~13.8 s per iteration.
        let slow = ReducerProfile::new("slow", 1e7, 0.0);
        let r = training_throughput(&m, 8, 64, &slow);
        assert!(r.iter_time_s > 13.0);
        assert!(r.comm_stall_fraction > 0.9);
    }

    #[test]
    fn network_bound_models_gain_more_from_faster_reducer() {
        // The Figure 3 shape: VGG (huge update, modest compute) speeds
        // up far more than Inception (small update, heavy compute).
        let slow = ReducerProfile::new("gloo", 50e6, 20_000.0);
        let fast = ReducerProfile::new("switchml", 220e6, 20_000.0);
        let vgg = zoo::vgg16();
        let inc = zoo::inception3();
        let vgg_speedup = training_throughput(&vgg, 8, 64, &fast).images_per_sec
            / training_throughput(&vgg, 8, 64, &slow).images_per_sec;
        let inc_speedup = training_throughput(&inc, 8, 64, &fast).images_per_sec
            / training_throughput(&inc, 8, 64, &slow).images_per_sec;
        assert!(vgg_speedup > inc_speedup, "{vgg_speedup} vs {inc_speedup}");
        assert!(vgg_speedup > 1.5);
        assert!(inc_speedup >= 1.0);
    }

    #[test]
    fn per_tensor_latency_matters_for_many_tensor_models() {
        let m = zoo::resnet50(); // ~160 tensors
        let lat0 = ReducerProfile::new("l0", 220e6, 0.0);
        let lat1 = ReducerProfile::new("l1", 220e6, 1_000_000.0); // 1 ms per tensor
        let a = training_throughput(&m, 8, 64, &lat0);
        let b = training_throughput(&m, 8, 64, &lat1);
        assert!(b.images_per_sec < a.images_per_sec);
        // ~160 ms of extra per-iteration latency is substantial.
        assert!(b.iter_time_s - a.iter_time_s > 0.1);
    }

    #[test]
    fn throughput_scales_with_workers_when_compute_bound() {
        let m = zoo::inception4();
        let r4 = training_throughput(&m, 4, 64, &fast());
        let r16 = training_throughput(&m, 16, 64, &fast());
        assert!((r16.images_per_sec / r4.images_per_sec - 4.0).abs() < 0.01);
    }

    #[test]
    fn tensor_time_composition() {
        let r = ReducerProfile::new("x", 1e9, 500.0);
        let t = r.tensor_time_s(1_000_000);
        assert!((t - (0.0000005 + 0.001)).abs() < 1e-9);
    }
}
