//! Real distributed training with quantized in-network aggregation —
//! the Figure 10 / Appendix C experiment, at CPU scale.
//!
//! Trains actual models (softmax regression and a one-hidden-layer
//! MLP, gradients written by hand) with data-parallel synchronous SGD
//! where the gradient all-reduce runs through the *actual SwitchML
//! protocol* (`switchml_core::agg::allreduce` drives the real switch
//! and worker state machines), under a selectable numeric mode:
//! exact float, scaled 32-bit fixed point, or 16-bit float.
//!
//! The paper's finding to reproduce: over a wide band of scaling
//! factors training matches unquantized accuracy; far too small an
//! `f` quantizes gradients to zero (no learning); far too large an
//! `f` overflows the 32-bit aggregation (divergence / broken
//! updates).

use crate::data::Dataset;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use switchml_core::agg::allreduce;
use switchml_core::config::{NumericMode, Protocol};

/// How gradients are aggregated across workers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Aggregation {
    /// Exact float sum (the "no quantization" baseline).
    Exact,
    /// SwitchML fixed-point path with scaling factor `f`.
    Fixed32 { f: f64 },
    /// SwitchML f16-on-the-wire path with scaling factor `f`.
    Float16 { f: f64 },
    /// signSGD with majority vote [6, 7]: workers send only gradient
    /// signs; the switch tallies votes; the update is ±lr per
    /// component. No scaling factor, Byzantine-tolerant.
    SignSgd,
}

/// Training configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    pub n_workers: usize,
    pub epochs: usize,
    pub batch_per_worker: usize,
    pub lr: f32,
    pub seed: u64,
    pub agg: Aggregation,
    /// Hidden width; 0 = plain softmax regression.
    pub hidden: usize,
    /// The first `byzantine` workers negate and amplify (×−10) their
    /// gradients before aggregation. Majority-vote signSGD tolerates a
    /// minority of these \[7\] — votes carry no magnitude — while
    /// mean-based aggregation is dragged backward.
    pub byzantine: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            n_workers: 4,
            epochs: 5,
            batch_per_worker: 16,
            lr: 0.05,
            seed: 7,
            agg: Aggregation::Exact,
            hidden: 0,
            byzantine: 0,
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainResult {
    /// Accuracy on the held-out set after each epoch.
    pub accuracy_per_epoch: Vec<f64>,
    /// Final held-out accuracy.
    pub final_accuracy: f64,
    /// Loss became non-finite or accuracy collapsed.
    pub diverged: bool,
    /// Largest |gradient| observed (the empirical `B` of Appendix C).
    pub max_grad_abs: f64,
}

/// A tiny feed-forward classifier with hand-written gradients.
#[derive(Debug, Clone)]
struct Net {
    dim: usize,
    classes: usize,
    hidden: usize,
    /// hidden == 0: [w (dim×classes), b (classes)]
    /// hidden  > 0: [w1 (dim×hidden), b1, w2 (hidden×classes), b2]
    params: Vec<Vec<f32>>,
}

impl Net {
    fn new(dim: usize, classes: usize, hidden: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut init = |n: usize, fan_in: usize| -> Vec<f32> {
            let scale = (1.0 / fan_in as f32).sqrt();
            (0..n).map(|_| rng.gen_range(-scale..scale)).collect()
        };
        let params = if hidden == 0 {
            vec![init(dim * classes, dim), vec![0.0; classes]]
        } else {
            vec![
                init(dim * hidden, dim),
                vec![0.0; hidden],
                init(hidden * classes, hidden),
                vec![0.0; classes],
            ]
        };
        Net {
            dim,
            classes,
            hidden,
            params,
        }
    }

    fn forward_logits(&self, x: &[f32], scratch_h: &mut Vec<f32>) -> Vec<f32> {
        if self.hidden == 0 {
            let w = &self.params[0];
            let b = &self.params[1];
            (0..self.classes)
                .map(|c| {
                    b[c] + x
                        .iter()
                        .enumerate()
                        .map(|(d, &xd)| xd * w[d * self.classes + c])
                        .sum::<f32>()
                })
                .collect()
        } else {
            let (w1, b1, w2, b2) = (
                &self.params[0],
                &self.params[1],
                &self.params[2],
                &self.params[3],
            );
            scratch_h.clear();
            for h in 0..self.hidden {
                let z = b1[h]
                    + x.iter()
                        .enumerate()
                        .map(|(d, &xd)| xd * w1[d * self.hidden + h])
                        .sum::<f32>();
                scratch_h.push(z.max(0.0)); // ReLU
            }
            (0..self.classes)
                .map(|c| {
                    b2[c]
                        + scratch_h
                            .iter()
                            .enumerate()
                            .map(|(h, &hh)| hh * w2[h * self.classes + c])
                            .sum::<f32>()
                })
                .collect()
        }
    }

    /// Mean cross-entropy gradient over a batch of sample indices.
    /// Returns per-parameter-tensor gradients shaped like `params`.
    fn gradients(&self, data: &Dataset, batch: &[usize]) -> (Vec<Vec<f32>>, f32) {
        let mut grads: Vec<Vec<f32>> = self.params.iter().map(|p| vec![0.0; p.len()]).collect();
        let mut loss = 0.0f32;
        let mut scratch_h = Vec::new();
        let inv = 1.0 / batch.len() as f32;
        for &i in batch {
            let x = data.sample(i);
            let y = data.y[i];
            let logits = self.forward_logits(x, &mut scratch_h);
            // Softmax.
            let maxl = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = logits.iter().map(|&l| (l - maxl).exp()).collect();
            let sum: f32 = exps.iter().sum();
            let probs: Vec<f32> = exps.iter().map(|&e| e / sum).collect();
            loss -= (probs[y].max(1e-12)).ln() * inv;
            // dL/dlogit
            let dl: Vec<f32> = (0..self.classes)
                .map(|c| (probs[c] - if c == y { 1.0 } else { 0.0 }) * inv)
                .collect();
            if self.hidden == 0 {
                for d in 0..self.dim {
                    for c in 0..self.classes {
                        grads[0][d * self.classes + c] += x[d] * dl[c];
                    }
                }
                for c in 0..self.classes {
                    grads[1][c] += dl[c];
                }
            } else {
                let w2 = &self.params[2];
                for h in 0..self.hidden {
                    for c in 0..self.classes {
                        grads[2][h * self.classes + c] += scratch_h[h] * dl[c];
                    }
                }
                for c in 0..self.classes {
                    grads[3][c] += dl[c];
                }
                // Back through ReLU.
                let dh: Vec<f32> = (0..self.hidden)
                    .map(|h| {
                        if scratch_h[h] > 0.0 {
                            (0..self.classes)
                                .map(|c| dl[c] * w2[h * self.classes + c])
                                .sum()
                        } else {
                            0.0
                        }
                    })
                    .collect();
                for d in 0..self.dim {
                    for h in 0..self.hidden {
                        grads[0][d * self.hidden + h] += x[d] * dh[h];
                    }
                }
                for h in 0..self.hidden {
                    grads[1][h] += dh[h];
                }
            }
        }
        (grads, loss)
    }

    fn accuracy(&self, data: &Dataset) -> f64 {
        let mut scratch = Vec::new();
        let mut correct = 0usize;
        for i in 0..data.len() {
            let logits = self.forward_logits(data.sample(i), &mut scratch);
            let pred = logits
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(c, _)| c)
                .unwrap_or(0);
            if pred == data.y[i] {
                correct += 1;
            }
        }
        correct as f64 / data.len().max(1) as f64
    }
}

/// Aggregate per-worker gradient sets into the mean gradient, through
/// the selected numeric path.
fn aggregate(per_worker: &[Vec<Vec<f32>>], agg: Aggregation, n_workers: usize) -> Vec<Vec<f32>> {
    match agg {
        Aggregation::Exact => {
            let mut sum = per_worker[0].clone();
            for w in &per_worker[1..] {
                for (t, tensor) in w.iter().enumerate() {
                    for (i, &g) in tensor.iter().enumerate() {
                        sum[t][i] += g;
                    }
                }
            }
            for t in &mut sum {
                for g in t.iter_mut() {
                    *g /= n_workers as f32;
                }
            }
            sum
        }
        Aggregation::SignSgd => {
            use switchml_core::quant::signsgd::{majority_decode, sign_encode};
            // Workers transmit signs (as ±1 floats with f = 1, i.e.
            // exact ±1 integers on the wire); the switch tallies.
            let sign_sets: Vec<Vec<Vec<f32>>> = per_worker
                .iter()
                .map(|tensors| {
                    tensors
                        .iter()
                        .map(|t| {
                            let mut s = Vec::new();
                            sign_encode(t, &mut s);
                            s.into_iter().map(|x| x as f32).collect()
                        })
                        .collect()
                })
                .collect();
            let proto = Protocol {
                n_workers,
                k: 16,
                pool_size: 8,
                scaling_factor: 1.0,
                ..Protocol::default()
            };
            let tallies = allreduce(&sign_sets, &proto).expect("sign all-reduce failed");
            tallies
                .into_iter()
                .map(|t| {
                    let tally: Vec<i32> = t.iter().map(|&x| x.round() as i32).collect();
                    let mut m = Vec::new();
                    majority_decode(&tally, &mut m);
                    m
                })
                .collect()
        }
        Aggregation::Fixed32 { f } | Aggregation::Float16 { f } => {
            let mode = if matches!(agg, Aggregation::Fixed32 { .. }) {
                NumericMode::Fixed32
            } else {
                NumericMode::Float16
            };
            let total: usize = per_worker[0].iter().map(Vec::len).sum();
            let proto = Protocol {
                n_workers,
                k: 16,
                pool_size: (total / 16).clamp(1, 64),
                rto_ns: 1_000_000,
                mode,
                scaling_factor: f,
                ..Protocol::default()
            };
            // Drive the real protocol (switch + workers, in process).
            let mut sum = allreduce(per_worker, &proto).expect("in-process all-reduce failed");
            for t in &mut sum {
                for g in t.iter_mut() {
                    *g /= n_workers as f32;
                }
            }
            sum
        }
    }
}

/// Train on `train`, evaluating on `test` each epoch.
pub fn train(train_set: &Dataset, test_set: &Dataset, cfg: &TrainConfig) -> TrainResult {
    assert_eq!(train_set.dim, test_set.dim);
    let shards = train_set.shards(cfg.n_workers);
    let mut net = Net::new(train_set.dim, train_set.classes, cfg.hidden, cfg.seed);
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5eed);
    let mut acc_curve = Vec::with_capacity(cfg.epochs);
    let mut max_grad: f64 = 0.0;
    let mut diverged = false;

    let iters_per_epoch = (shards[0].len() / cfg.batch_per_worker).max(1);
    'epochs: for _epoch in 0..cfg.epochs {
        for _ in 0..iters_per_epoch {
            // Each worker samples a mini-batch from its own shard.
            let per_worker: Vec<Vec<Vec<f32>>> = shards
                .iter()
                .enumerate()
                .map(|(widx, shard)| {
                    let batch: Vec<usize> = (0..cfg.batch_per_worker)
                        .map(|_| rng.gen_range(0..shard.len()))
                        .collect();
                    let (mut grads, loss) = net.gradients(shard, &batch);
                    if !loss.is_finite() {
                        return vec![];
                    }
                    if widx < cfg.byzantine {
                        // Adversary: negate and amplify. Amplification
                        // is what makes the attack effective against
                        // magnitude (mean) aggregation; sign-based
                        // voting is immune to it by construction.
                        for t in &mut grads {
                            for g in t.iter_mut() {
                                *g *= -10.0;
                            }
                        }
                    }
                    for t in &grads {
                        for &g in t {
                            let a = g.abs() as f64;
                            if a.is_finite() && a > max_grad {
                                max_grad = a;
                            }
                        }
                    }
                    grads
                })
                .collect();
            if per_worker.iter().any(|g| g.is_empty()) {
                diverged = true;
                break 'epochs;
            }
            let mean = aggregate(&per_worker, cfg.agg, cfg.n_workers);
            let mut finite = true;
            for (t, tensor) in mean.iter().enumerate() {
                for (i, &g) in tensor.iter().enumerate() {
                    if !g.is_finite() {
                        finite = false;
                        break;
                    }
                    net.params[t][i] -= cfg.lr * g;
                }
            }
            if !finite || net.params.iter().any(|t| t.iter().any(|p| !p.is_finite())) {
                diverged = true;
                break 'epochs;
            }
        }
        acc_curve.push(net.accuracy(test_set));
    }

    let final_accuracy = acc_curve.last().copied().unwrap_or(0.0);
    // Accuracy at or below chance after training also counts as broken.
    let chance = 1.0 / train_set.classes as f64;
    if !diverged && final_accuracy <= chance + 0.05 {
        diverged = true;
    }
    TrainResult {
        accuracy_per_epoch: acc_curve,
        final_accuracy,
        diverged,
        max_grad_abs: max_grad,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::gaussian_blobs;

    fn sets() -> (Dataset, Dataset) {
        gaussian_blobs(550, 6, 3, 4.0, 11).train_test_split(0.25)
    }

    #[test]
    fn exact_softmax_learns() {
        let (tr, te) = sets();
        let r = train(&tr, &te, &TrainConfig::default());
        assert!(!r.diverged);
        assert!(r.final_accuracy > 0.85, "{}", r.final_accuracy);
        assert!(r.max_grad_abs > 0.0);
    }

    #[test]
    fn quantized_matches_exact_at_good_scale() {
        let (tr, te) = sets();
        let exact = train(&tr, &te, &TrainConfig::default());
        let quant = train(
            &tr,
            &te,
            &TrainConfig {
                agg: Aggregation::Fixed32 { f: 1e6 },
                ..TrainConfig::default()
            },
        );
        assert!(!quant.diverged);
        assert!(
            (exact.final_accuracy - quant.final_accuracy).abs() < 0.05,
            "exact {} vs quant {}",
            exact.final_accuracy,
            quant.final_accuracy
        );
    }

    #[test]
    fn tiny_scale_factor_kills_learning() {
        // f so small every gradient rounds to zero: the model never
        // moves, so every epoch evaluates to the untrained network's
        // accuracy. (A lucky random init can beat the chance-level
        // `diverged` heuristic, so assert no-movement directly.)
        let (tr, te) = sets();
        let r = train(
            &tr,
            &te,
            &TrainConfig {
                agg: Aggregation::Fixed32 { f: 1e-3 },
                ..TrainConfig::default()
            },
        );
        assert!(
            r.accuracy_per_epoch.windows(2).all(|w| w[0] == w[1]),
            "zeroed gradients must freeze the model: {:?}",
            r.accuracy_per_epoch
        );
        let exact = train(&tr, &te, &TrainConfig::default());
        assert!(
            exact.final_accuracy > r.final_accuracy + 0.1,
            "exact training should beat the frozen model: {} vs {}",
            exact.final_accuracy,
            r.final_accuracy
        );
    }

    #[test]
    fn huge_scale_factor_overflows() {
        // f beyond the Theorem 2 bound: saturated aggregates break
        // training (the divergence the right side of Fig. 10 shows).
        let (tr, te) = sets();
        let r = train(
            &tr,
            &te,
            &TrainConfig {
                agg: Aggregation::Fixed32 { f: 1e12 },
                lr: 0.5,
                ..TrainConfig::default()
            },
        );
        // Either diverged outright or visibly worse than exact.
        let exact = train(&tr, &te, &TrainConfig::default());
        assert!(
            r.diverged || r.final_accuracy < exact.final_accuracy - 0.1,
            "quant {} vs exact {}",
            r.final_accuracy,
            exact.final_accuracy
        );
    }

    #[test]
    fn f16_mode_trains() {
        let (tr, te) = sets();
        let r = train(
            &tr,
            &te,
            &TrainConfig {
                agg: Aggregation::Float16 { f: 100.0 },
                ..TrainConfig::default()
            },
        );
        assert!(!r.diverged);
        assert!(r.final_accuracy > 0.8, "{}", r.final_accuracy);
    }

    #[test]
    fn mlp_learns_too() {
        let (tr, te) = sets();
        let r = train(
            &tr,
            &te,
            &TrainConfig {
                hidden: 16,
                epochs: 8,
                agg: Aggregation::Fixed32 { f: 1e6 },
                ..TrainConfig::default()
            },
        );
        assert!(!r.diverged);
        assert!(r.final_accuracy > 0.85, "{}", r.final_accuracy);
    }

    #[test]
    fn signsgd_learns() {
        let (tr, te) = sets();
        let r = train(
            &tr,
            &te,
            &TrainConfig {
                agg: Aggregation::SignSgd,
                lr: 0.02,
                epochs: 12,
                ..TrainConfig::default()
            },
        );
        assert!(!r.diverged);
        assert!(r.final_accuracy > 0.85, "{}", r.final_accuracy);
    }

    #[test]
    fn signsgd_majority_tolerates_byzantine_minority() {
        // 5 workers, 2 adversaries negating their gradients: the
        // majority vote still points the right way [7]; the same
        // adversaries poison a mean-based aggregation badly.
        let (tr, te) = sets();
        let base = TrainConfig {
            n_workers: 5,
            byzantine: 2,
            lr: 0.02,
            epochs: 12,
            ..TrainConfig::default()
        };
        let vote = train(
            &tr,
            &te,
            &TrainConfig {
                agg: Aggregation::SignSgd,
                ..base.clone()
            },
        );
        assert!(!vote.diverged);
        assert!(
            vote.final_accuracy > 0.8,
            "vote acc {}",
            vote.final_accuracy
        );

        let mean = train(
            &tr,
            &te,
            &TrainConfig {
                agg: Aggregation::Fixed32 { f: 1e6 },
                lr: 0.05,
                ..base
            },
        );
        assert!(
            vote.final_accuracy > mean.final_accuracy + 0.05,
            "vote {} should beat poisoned mean {}",
            vote.final_accuracy,
            mean.final_accuracy
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (tr, te) = sets();
        let cfg = TrainConfig {
            agg: Aggregation::Fixed32 { f: 1e6 },
            ..TrainConfig::default()
        };
        let a = train(&tr, &te, &cfg);
        let b = train(&tr, &te, &cfg);
        assert_eq!(a.accuracy_per_epoch, b.accuracy_per_epoch);
    }
}
