//! # switchml
//!
//! A full reproduction of **SwitchML** — *Scaling Distributed Machine
//! Learning with In-Network Aggregation* (NSDI 2021) — in Rust: the
//! in-switch aggregation protocol, the end-host worker, quantized
//! gradient exchange, a deterministic network simulator standing in
//! for the Tofino testbed, the paper's baselines (ring and
//! halving-doubling all-reduce, parameter servers), a DNN training
//! substrate, and a harness regenerating every table and figure of the
//! paper's evaluation.
//!
//! This facade crate re-exports the workspace members:
//!
//! | crate | contents |
//! |---|---|
//! | [`core`] | protocol state machines, wire format, quantization |
//! | [`netsim`] | discrete-event network simulator |
//! | [`baselines`] | SwitchML-over-netsim + baseline collectives |
//! | [`dnn`] | model zoo, trainer model, real small-scale training |
//! | [`transport`] | threaded channel/UDP transports |
//! | [`ctrl`] | control plane: job lifecycle, failure detection, live reconfiguration |
//!
//! ## Quick start
//!
//! ```
//! use switchml::core::agg::allreduce_mean;
//! use switchml::core::config::Protocol;
//!
//! let updates = vec![
//!     vec![vec![2.0_f32, 4.0]],
//!     vec![vec![4.0_f32, 8.0]],
//! ];
//! let proto = Protocol { n_workers: 2, ..Protocol::default() };
//! let mean = allreduce_mean(&updates, &proto).unwrap();
//! assert!((mean[0][0] - 3.0).abs() < 1e-3);
//! ```

pub use switchml_baselines as baselines;
pub use switchml_core as core;
pub use switchml_ctrl as ctrl;
pub use switchml_dnn as dnn;
pub use switchml_netsim as netsim;
pub use switchml_transport as transport;
