//! Train the paper's CNN benchmark suite on a simulated rack.
//!
//! The intro's motivating workload: synchronous data-parallel DNN
//! training where gradient synchronization competes with computation.
//! This example measures each communication strategy's sustained
//! aggregation rate on the simulated network, then estimates training
//! throughput for every model in the zoo — Figure 3 at your terminal.
//!
//! Run with: `cargo run --release --example train_cluster [n_workers]`

use switchml::baselines::{run_ring, run_switchml, RingScenario, SwitchMLScenario};
use switchml::dnn::{ideal_throughput, training_throughput, zoo, ReducerProfile};

fn measure(name: &str, run: impl Fn(usize) -> (f64, f64)) -> ReducerProfile {
    // Two-point fit: one large and one small run pin (rate, latency).
    let (t_big, e_big) = run(500_000);
    let (t_small, e_small) = run(25_000);
    let rate = (e_big - e_small) / ((t_big - t_small) / 1e9);
    let latency = (t_small - e_small / rate * 1e9).max(0.0);
    ReducerProfile::new(name, rate, latency)
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);

    println!("calibrating reducers on the simulated 10 Gbps rack ({n} workers)...");
    let switchml = measure("SwitchML", |elems| {
        let out = run_switchml(&SwitchMLScenario::new(n, elems)).expect("switchml run");
        assert!(out.verified);
        (out.mean_tat_ns, elems as f64)
    });
    let nccl = measure("NCCL", |elems| {
        let out = run_ring(&RingScenario::nccl(n, elems)).expect("nccl run");
        assert!(out.verified);
        (out.mean_tat_ns, elems as f64)
    });
    let gloo = measure("Gloo", |elems| {
        let out = run_ring(&RingScenario::gloo(n, elems)).expect("gloo run");
        assert!(out.verified);
        (out.mean_tat_ns, elems as f64)
    });
    for p in [&switchml, &nccl, &gloo] {
        println!(
            "  {:<9} {:>7.1} M elem/s  (+{:.0} us/tensor)",
            p.name,
            p.ate_per_sec / 1e6,
            p.latency_ns / 1e3
        );
    }

    println!(
        "\n{:<11} {:>7} {:>9} {:>9} {:>9} {:>9}",
        "model", "Mparam", "ideal", "SwitchML", "NCCL", "speedup"
    );
    for model in zoo::all_models() {
        let batch = model.batch_size;
        let t_s = training_throughput(&model, n, batch, &switchml).images_per_sec;
        let t_n = training_throughput(&model, n, batch, &nccl).images_per_sec;
        println!(
            "{:<11} {:>7.1} {:>9.0} {:>9.0} {:>9.0} {:>8.2}x",
            model.name,
            model.total_params() as f64 / 1e6,
            ideal_throughput(&model, n),
            t_s,
            t_n,
            t_s / t_n
        );
    }
    println!("\n(throughputs in images/s; speedup = SwitchML vs NCCL, the paper's Figure 3)");
}
