//! Multi-rack hierarchical aggregation (§6 "Scaling beyond a rack").
//!
//! Composes SwitchML switches into a two-level tree: rack switches
//! aggregate their workers' updates into partial aggregates and
//! forward them to a root switch, which completes the reduction and
//! multicasts back down. Compares against running all workers through
//! one big flat rack (same worker count) and shows loss recovery
//! working across layers — the paper's sketched extension, built out.
//!
//! Run with: `cargo run --release --example multirack`

use switchml::baselines::{run_switchml, run_switchml_hierarchy, HierScenario, SwitchMLScenario};

fn main() {
    let elems = 1_000_000;
    let racks = 4;
    let per_rack = 4;
    let n = racks * per_rack;

    // Flat single-switch rack with all 16 workers.
    let flat = run_switchml(&SwitchMLScenario::new(n, elems)).expect("flat run");
    assert!(flat.verified);

    // 4 racks × 4 workers, rack uplinks at the same 10 Gbps.
    let hier = run_switchml_hierarchy(&HierScenario::new(racks, per_rack, elems))
        .expect("hierarchical run");
    assert!(hier.verified);

    println!("aggregating {elems} elements across {n} workers (10 Gbps):");
    println!(
        "  flat rack (1 switch)        : TAT {:>9.2} ms",
        flat.max_tat.0 as f64 / 1e6
    );
    println!(
        "  2-level tree (4+1 switches) : TAT {:>9.2} ms",
        hier.max_tat.0 as f64 / 1e6
    );
    println!(
        "  (hierarchy adds one aggregation hop; bandwidth cost per uplink is d:1-reduced,\n   \
         so both sustain the worker line rate — §6's bandwidth-optimality claim)"
    );

    // Now with loss on every link, including the rack uplinks: worker
    // retransmissions propagate partial aggregates up the tree.
    let mut lossy = HierScenario::new(racks, per_rack, elems);
    lossy.worker_link = lossy.worker_link.with_loss(0.001);
    lossy.uplink = lossy.uplink.with_loss(0.001);
    let out = run_switchml_hierarchy(&lossy).expect("lossy hierarchical run");
    assert!(out.verified, "cross-layer recovery must preserve the sum");
    println!(
        "\nwith 0.1% loss on every link: TAT {:.2} ms ({} worker retransmissions), sums verified",
        out.max_tat.0 as f64 / 1e6,
        out.total_retx
    );
}
