//! Quantized distributed training end to end (Appendix C, Figure 10).
//!
//! Trains a real classifier with data-parallel SGD whose gradient
//! all-reduce runs through the actual SwitchML protocol, sweeping the
//! scaling factor `f` across twelve decades. Shows the three regimes
//! the paper's Figure 10 exhibits — underflow, plateau, overflow — and
//! checks the plateau against Theorem 2's overflow-free bound.
//!
//! Run with: `cargo run --release --example quantized_training`

use switchml::core::quant::scaling::{aggregation_error_bound, max_safe_factor};
use switchml::dnn::data::gaussian_blobs;
use switchml::dnn::real_train::{train, Aggregation, TrainConfig};

fn main() {
    let (train_set, test_set) = gaussian_blobs(1200, 8, 4, 4.0, 2024).train_test_split(0.25);
    let cfg = TrainConfig {
        n_workers: 4,
        epochs: 10,
        batch_per_worker: 16,
        lr: 0.1,
        seed: 3,
        agg: Aggregation::Exact,
        hidden: 16, // one-hidden-layer MLP
        byzantine: 0,
    };

    let exact = train(&train_set, &test_set, &cfg);
    println!(
        "exact (float) baseline: {:.1}% accuracy, max |gradient| B = {:.3}",
        exact.final_accuracy * 100.0,
        exact.max_grad_abs
    );
    let f_max = max_safe_factor(cfg.n_workers, exact.max_grad_abs);
    println!(
        "Theorem 2 overflow-free bound: f <= {:.2e}  (aggregation error <= n/f, Theorem 1)\n",
        f_max
    );

    println!(
        "{:>10}  {:>9}  {:>12}  regime",
        "f", "accuracy", "err bound"
    );
    for exp in [-3i32, -1, 1, 2, 4, 6, 7, 8, 9, 10, 12] {
        let f = 10f64.powi(exp);
        let r = train(
            &train_set,
            &test_set,
            &TrainConfig {
                agg: Aggregation::Fixed32 { f },
                ..cfg.clone()
            },
        );
        let regime = if f < 1.0 / exact.max_grad_abs {
            "underflow (gradients round to 0)"
        } else if f > f_max {
            "overflow (32-bit aggregate saturates)"
        } else {
            "plateau"
        };
        println!(
            "{:>10.0e}  {:>8.1}%  {:>12.2e}  {}",
            f,
            r.final_accuracy * 100.0,
            aggregation_error_bound(cfg.n_workers, f),
            regime
        );
    }
    println!("\n(the plateau spans every decade inside the Theorem 2 bound — the paper's Fig. 10)");
}
