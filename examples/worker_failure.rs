//! Losing a worker mid-iteration, and losing a switch.
//!
//! The paper's dataplane assumes a fixed worker set; this example
//! shows the control plane (`switchml-ctrl`) handling the two events a
//! deployment actually sees:
//!
//! 1. A worker crashes mid-tensor. The controller notices the missing
//!    heartbeats, probes with exponential backoff, declares the worker
//!    dead, quiesces the survivors, rescales `f` for n−1 (Theorem 2),
//!    and resumes from the aggregated frontier. The survivors'
//!    aggregates match a fresh (n−1)-worker run bit for bit.
//! 2. A switch is drained: every admitted job is quiesced, evicted,
//!    and re-admitted on a standby switch with no lost slot state.
//!
//! Both run first on the deterministic simulator, then the crash is
//! repeated over real threads and channels with wall-clock timers.
//!
//! Run with: `cargo run --release --example worker_failure`

use std::time::Duration;

use switchml::core::config::Protocol;
use switchml::core::quant::scaling::max_safe_factor;
use switchml::ctrl::netsim::{run_ctrl, scenario_tensor, CtrlScenario};
use switchml::ctrl::runner::{run_controlled, CtrlRunConfig};
use switchml::transport::channel::channel_fabric;

fn main() {
    // ---- 1. deterministic simulation: kill one of 8 workers --------
    let sc = CtrlScenario {
        n_workers: 8,
        elems: 512,
        fail_worker: Some((3, 25)), // dies 25 us in, before streaming
        ..CtrlScenario::default()
    };
    println!(
        "simulated rack: {} workers; worker 3 dies 25 us into the run\n",
        sc.n_workers
    );
    let out = run_ctrl(&sc);
    assert!(out.finished, "events: {:?}", out.events);
    for e in &out.events {
        println!("  controller: {e}");
    }
    println!(
        "  job finished at epoch {} with {} workers, f = {:.3e}",
        out.final_epoch[0], out.final_n[0], out.final_f[0]
    );
    assert_eq!(out.final_n[0], 7);
    assert_eq!(
        out.final_f[0],
        sc.requested_f.min(max_safe_factor(7, sc.bound))
    );

    // Survivors must agree with a fresh 7-worker run *exactly*.
    let fresh = run_ctrl(&CtrlScenario {
        n_workers: 7,
        fail_worker: None,
        tensor_skip: Some(3), // same tensors as the survivors
        ..sc.clone()
    });
    let survivor = out.results[0][0].as_ref().unwrap();
    assert_eq!(survivor, fresh.results[0][0].as_ref().unwrap());
    println!("  survivors' aggregate == fresh 7-worker run: bitwise equal\n");

    // ---- 2. deterministic simulation: drain a switch ---------------
    let sc2 = CtrlScenario {
        n_jobs: 2,
        n_workers: 4,
        n_switches: 2,
        elems: 512,
        fail_over: Some((100, 0, 1)), // drain switch 0 at 100 us
        ..CtrlScenario::default()
    };
    println!("two jobs on switch 0; switch 0 drained onto standby at 100 us\n");
    let out2 = run_ctrl(&sc2);
    assert!(out2.finished, "events: {:?}", out2.events);
    for e in &out2.events {
        println!("  controller: {e}");
    }
    for job in 0..2 {
        assert_eq!(out2.final_n[job], 4, "no worker lost in the failover");
    }
    println!("  both jobs completed on the standby with all workers\n");

    // ---- 3. real threads: the same crash under wall-clock timers ---
    let n = 4;
    println!("threaded run: {n} workers over channels; worker 1 crashes at 8 ms\n");
    let proto = Protocol {
        n_workers: n,
        k: 8,
        pool_size: 16,
        rto_ns: 2_000_000,
        scaling_factor: 1e9, // deliberately high; the controller clamps
        ..Protocol::default()
    };
    let updates: Vec<Vec<Vec<f32>>> = (0..n)
        .map(|w| vec![scenario_tensor(w, 16384, 16.0)])
        .collect();
    let cfg = CtrlRunConfig {
        kill: Some((1, Duration::from_millis(8))),
        heartbeat: Duration::from_millis(2),
        failure_timeout: Duration::from_millis(10),
        ..CtrlRunConfig::default()
    };
    let report =
        run_controlled(channel_fabric(n + 2), updates, &proto, &cfg).expect("controlled run");
    for e in &report.events {
        println!("  controller: {e}");
    }
    println!(
        "  finished in {:?} at epoch {} with {} workers, f = {:.3e}",
        report.wall, report.final_epoch, report.final_n, report.final_f
    );
    assert_eq!(report.final_n, n - 1);
    assert!(report.results[1].is_none(), "the dead worker holds nothing");
    let a = report.results[0].as_ref().unwrap();
    assert_eq!(a, report.results[2].as_ref().unwrap());
    assert_eq!(a, report.results[3].as_ref().unwrap());
    println!("  survivors agree exactly; the crash cost one reconfiguration");
}
