//! SwitchML under packet loss.
//!
//! Sweeps a uniform per-link loss probability over the simulated rack
//! and reports how the tensor aggregation time inflates, how many
//! retransmissions the workers issue, and the send-rate timeline at
//! one worker (the paper's §5.5 loss study, Figures 5 and 6). Then
//! runs the same protocol over real threads with a fault-injecting
//! transport to show end-to-end recovery outside the simulator.
//!
//! Run with: `cargo run --release --example lossy_network`

use switchml::baselines::{run_switchml_traced, SwitchMLScenario};
use switchml::core::config::Protocol;
use switchml::netsim::prelude::*;
use switchml::transport::channel::channel_fabric;
use switchml::transport::lossy::lossy_fabric;
use switchml::transport::runner::{run_allreduce, RunConfig};

fn sparkline(series: &[u64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let chunk = series.len().div_ceil(40).max(1);
    let buckets: Vec<f64> = series
        .chunks(chunk)
        .map(|c| c.iter().sum::<u64>() as f64 / c.len() as f64)
        .collect();
    let max = buckets.iter().cloned().fold(1.0_f64, f64::max);
    buckets
        .iter()
        .map(|&v| BARS[((v / max) * 7.0).round() as usize])
        .collect()
}

fn main() {
    let elems = 2_000_000;
    println!("simulated rack: 8 workers, 10 Gbps, {elems} elements, 1 ms RTO\n");
    println!(
        "{:>7} {:>9} {:>10} {:>8}  timeline (packets sent per ms at worker 0)",
        "loss", "TAT_ms", "retx", "inflate"
    );
    let mut base = 0.0f64;
    for p in [0.0, 0.0001, 0.001, 0.01] {
        let mut sc = SwitchMLScenario::new(8, elems);
        sc.link = sc.link.with_loss(p);
        let mut trace = RateTrace::new(NodeId(1), Nanos::from_millis(1));
        let out = run_switchml_traced(&sc, &mut trace).expect("run failed");
        assert!(out.verified, "aggregation result corrupted by loss!");
        let tat_ms = out.max_tat.0 as f64 / 1e6;
        if p == 0.0 {
            base = tat_ms;
        }
        println!(
            "{:>6.2}% {:>9.2} {:>10} {:>7.2}x  {}",
            p * 100.0,
            tat_ms,
            out.total_retx,
            tat_ms / base,
            sparkline(&trace.counts)
        );
    }

    println!("\nthreaded run with 5% injected loss (real timers):");
    let proto = Protocol {
        n_workers: 4,
        pool_size: 32,
        rto_ns: 2_000_000,
        ..Protocol::default()
    };
    let updates: Vec<_> = (0..4).map(|w| vec![vec![(w + 1) as f32; 4096]]).collect();
    let (ports, loss_stats) = lossy_fabric(channel_fabric(5), 0.05, 7);
    let report =
        run_allreduce(ports, updates, &proto, &RunConfig::default()).expect("threaded run");
    let retx: u64 = report.worker_stats.iter().map(|s| s.retx).sum();
    println!(
        "  completed in {:?}: {} datagrams dropped, {} retransmissions, sum[0] = {}",
        report.wall,
        loss_stats.dropped(),
        retx,
        report.results[0][0][0]
    );
    assert_eq!(report.results[0][0][0], 10.0); // 1+2+3+4
}
