//! Quickstart: aggregate gradients across workers with SwitchML.
//!
//! Three ways to run the same protocol, smallest first:
//!  1. the one-call in-process API,
//!  2. the same with explicit loss injection (the protocol recovers),
//!  3. real threads talking over an in-memory fabric.
//!
//! Run with: `cargo run --release --example quickstart`

use switchml::core::agg::{allreduce_mean, run_inprocess, HarnessConfig, Hop};
use switchml::core::config::Protocol;
use switchml::transport::channel::channel_fabric;
use switchml::transport::runner::{run_allreduce, RunConfig};

fn main() {
    // Two workers, each with one small gradient tensor.
    let updates = vec![
        vec![vec![0.1_f32, 0.2, 0.3, 0.4]],
        vec![vec![1.0_f32, 2.0, 3.0, 4.0]],
    ];
    let proto = Protocol {
        n_workers: 2,
        ..Protocol::default()
    };

    // 1. One call: run the full switch + worker protocol in process.
    let mean = allreduce_mean(&updates, &proto).expect("all-reduce failed");
    println!("mean update     : {:?}", mean[0]);

    // 2. Same, but drop the very first packet on the wire. The
    //    worker's retransmission timer recovers transparently.
    let mut dropped = false;
    let outcome = run_inprocess(&updates, &proto, &HarnessConfig::default(), |_, hop| {
        if !dropped && hop == Hop::Up {
            dropped = true;
            return true;
        }
        false
    })
    .expect("lossy all-reduce failed");
    println!(
        "with 1 loss     : {:?} (retransmissions: {})",
        outcome.results[0][0],
        outcome.worker_stats.iter().map(|s| s.retx).sum::<u64>()
    );

    // 3. Real threads: a switch thread and two worker threads over an
    //    in-memory datagram fabric, wall-clock timers and all.
    let ports = channel_fabric(proto.n_workers + 1);
    let report = run_allreduce(ports, updates, &proto, &RunConfig::default())
        .expect("threaded all-reduce failed");
    println!(
        "threaded (sum)  : {:?} in {:?}",
        report.results[0][0], report.wall
    );
    println!(
        "switch counters : {} updates, {} completions",
        report.switch_stats.updates, report.switch_stats.completions
    );
}
